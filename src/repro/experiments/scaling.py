"""Scaling study: many principals per redirector.

The paper argues the per-window LP is cheap because "the complexity of
this strategy only depends on the number of principals involved in the
agreements; this latter number is expected to be small."  This module
measures what happens when it is not small: communities of up to dozens of
principals sharing several servers through one redirector, reporting

- wall-clock LP cost per scheduling window,
- guarantee satisfaction (fraction of principals at >= their effective
  mandatory level),
- aggregate throughput against capacity (work conservation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario
from repro.experiments.parallel import parallel_map

__all__ = ["ScalingPoint", "random_community", "run_scaling_point", "run_scaling_sweep"]


@dataclass
class ScalingPoint:
    n_principals: int
    lp_ms_mean: float
    lp_ms_p95: float
    guarantee_satisfaction: float     # fraction of principals meeting floors
    throughput: float                 # aggregate req/s
    capacity: float
    solves: int
    cache_hits: int
    extra: Dict[str, float] = field(default_factory=dict)


def random_community(n: int, seed: int = 0, servers: int = 4) -> AgreementGraph:
    """A community of ``n`` principals: ``servers`` of them own capacity and
    grant overlapping [lb, ub] slices to consumer principals."""
    rng = np.random.default_rng(seed)
    g = AgreementGraph()
    owner_names = [f"srv{i}" for i in range(servers)]
    consumer_names = [f"org{i}" for i in range(n - servers)]
    for name in owner_names:
        g.add_principal(name, capacity=float(rng.choice([200.0, 320.0, 400.0])))
    for name in consumer_names:
        g.add_principal(name)
    for owner in owner_names:
        # Each owner guarantees slices to a random subset of consumers.
        k = max(1, len(consumer_names) // 2)
        grantees = rng.choice(consumer_names, size=k, replace=False)
        budget = 0.9
        for grantee in grantees:
            if budget < 0.06:
                break
            lb = round(float(rng.uniform(0.05, min(0.3, budget))), 3)
            if lb <= 0.0 or budget - lb < 0:
                break
            ub = round(float(min(1.0, lb + rng.uniform(0.0, 0.4))), 3)
            g.add_agreement(Agreement(owner, str(grantee), lb, ub))
            budget -= lb
    return g


def run_scaling_point(
    n: int, seed: int = 0, duration: float = 12.0, servers: int = 4
) -> ScalingPoint:
    """Simulate one community size; see module docstring for the metrics."""
    g = random_community(n, seed=seed, servers=servers)
    access = compute_access_levels(g)
    sc = Scenario(g, seed=seed)
    server_objs = {
        name: sc.server(f"S_{name}", name, g.principal(name).capacity)
        for name in g.names
        if g.principal(name).capacity > 0
    }
    red = sc.l7("R", server_objs)
    red.allocator.cache_tolerance = 0.0   # measure the honest solve cost

    # Time every LP solve.
    lp_times: List[float] = []
    inner = red.allocator.compute

    # Wall-clock here times the *solver*, not simulated behaviour: the
    # measured milliseconds never feed back into the event stream.
    def timed(local, now=None):
        t0 = time.perf_counter()  # simlint: disable=SIM001
        out = inner(local, now=now)
        lp_times.append((time.perf_counter() - t0) * 1000.0)  # simlint: disable=SIM001
        return out

    red.allocator.compute = timed  # type: ignore[assignment]

    rng = np.random.default_rng(seed + 1)
    demands = {}
    for name in g.names:
        if g.principal(name).capacity > 0:
            continue
        rate = float(rng.choice([30.0, 80.0, 200.0]))
        demands[name] = rate
        sc.client(f"C_{name}", name, red, rate=rate)
    sc.run(duration)

    satisfied = 0
    considered = 0
    total = 0.0
    settle = duration / 3.0
    for name, offered in demands.items():
        measured = sc.meter.mean_rate(name, settle, duration)
        total += measured
        floor = min(offered, access.mandatory(name))
        if floor <= 1e-9:
            continue
        considered += 1
        if measured >= 0.85 * floor:
            satisfied += 1
    capacity = float(sum(g.principal(p).capacity for p in g.names))
    times = np.asarray(lp_times) if lp_times else np.zeros(1)
    return ScalingPoint(
        n_principals=n,
        lp_ms_mean=float(times.mean()),
        lp_ms_p95=float(np.percentile(times, 95)),
        guarantee_satisfaction=satisfied / considered if considered else 1.0,
        throughput=total,
        capacity=capacity,
        solves=red.allocator.lp_solves,
        cache_hits=red.allocator.cache_hits,
    )


def _scaling_task(task) -> ScalingPoint:
    n, seed, duration = task
    return run_scaling_point(n, seed=seed, duration=duration)


def run_scaling_sweep(
    sizes=(6, 10, 18, 30), seed: int = 0, duration: float = 12.0, jobs=1
) -> List[ScalingPoint]:
    """One :class:`ScalingPoint` per community size.

    Points are independent simulations; ``jobs`` fans them out across
    processes (results identical for any job count).
    """
    return parallel_map(
        _scaling_task, [(n, seed, duration) for n in sizes], jobs=jobs
    )
