"""Deterministic parallel execution of experiment batches.

Simulations are single-threaded and independent across scenarios, so
sweeps, scaling studies and figure reruns parallelise trivially across
processes.  The contract this module enforces is *determinism under
parallelism*: results are a pure function of each task's own arguments
(scenario name, seed, knob value), never of the worker count or the order
workers finish in.  Running with ``jobs=1`` and ``jobs=8`` must produce
bit-identical outputs.

Two pieces make that hold:

- :func:`scenario_seed` derives a per-scenario seed from a base seed and
  the scenario's *name* with :func:`zlib.crc32` — stable across processes
  and interpreter runs (unlike salted ``hash()``), so a scenario's random
  stream does not depend on which worker picks it up.
- :func:`parallel_map` preserves input order (``Pool.map``) and falls back
  to a plain serial loop when one job is requested or only one item exists.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "scenario_seed",
    "default_jobs",
    "parallel_map",
    "figure_kwargs",
    "run_figures_parallel",
]


def scenario_seed(base: int, name: str) -> int:
    """Deterministic per-scenario seed partition.

    ``crc32`` (not ``hash``) so the value is identical in every process and
    interpreter invocation; masked to 31 bits to stay a valid numpy seed.
    """
    return (int(base) ^ zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF


def default_jobs() -> int:
    """Worker count when the caller does not specify one.

    Resolution order:

    1. ``REPRO_JOBS`` environment override (must be a positive integer) —
       the explicit knob for CI runners and batch schedulers.
    2. ``os.sched_getaffinity(0)`` — the CPUs this process may actually
       run on.  ``os.cpu_count()`` reports the *machine's* cores and so
       oversubscribes inside containers with cgroup limits and under
       ``taskset``/slurm CPU masks.
    3. ``os.cpu_count()`` where affinity is unsupported (macOS, Windows).
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer, got {env!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Order-preserving map over ``items``, optionally across processes.

    ``fn`` must be a module-level (picklable) callable and each item must
    carry everything the task needs — including its seed — so the result is
    independent of ``jobs``.  ``jobs=None`` uses :func:`default_jobs`;
    ``jobs=1`` runs serially in-process (no pool, easier debugging).
    """
    tasks = list(items)
    n = default_jobs() if jobs is None else max(1, int(jobs))
    n = min(n, len(tasks))
    if n <= 1:
        return [fn(t) for t in tasks]
    # fork is cheapest and inherits the imported modules; fall back to
    # spawn where fork is unavailable (the tasks are self-contained either
    # way, so the start method cannot change results).
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    with mp.get_context(method).Pool(processes=n) as pool:
        return pool.map(fn, tasks, chunksize=1)


# -- figure batches ----------------------------------------------------------


def figure_kwargs(
    name: str,
    scale: float,
    seed: int,
    lp_cache: bool = True,
    partition_seeds: bool = False,
    fast_lane: bool = True,
    l4_fast_lane: bool = True,
    lane: Optional[str] = None,
    shards: Optional[int] = None,
    transport: str = "shm",
) -> Dict[str, Any]:
    """Keyword arguments for one ``run_figN`` entry point.

    ``partition_seeds=True`` gives every figure its own
    :func:`scenario_seed`-derived stream; the default reuses ``seed``
    verbatim, matching a serial ``for name: run_figN(seed=seed)`` loop.
    ``l4_fast_lane`` only reaches the L4 figures (fig9/fig10) — the other
    entry points have no L4 switch to thread it to; ``lane`` only reaches
    the figures with a columnar-capable scenario (fig6/fig9/fig10);
    ``shards`` only reaches the figures with a sharded world (fig6/fig9),
    as does ``transport`` (the sharded lane's data plane; results are
    bit-identical for pipe and shm).
    """
    s = scenario_seed(seed, name) if partition_seeds else seed
    if name in ("fig1", "fig3"):
        return {}
    if name == "fig1d":
        return {"duration": max(20.0, 100.0 * scale), "seed": s,
                "lp_cache": lp_cache, "fast_lane": fast_lane}
    kwargs = {"duration_scale": scale, "seed": s, "lp_cache": lp_cache,
              "fast_lane": fast_lane}
    if name in ("fig9", "fig10"):
        kwargs["l4_fast_lane"] = l4_fast_lane
    if lane is not None and name in ("fig6", "fig9", "fig10"):
        kwargs["lane"] = lane
    if shards is not None and name in ("fig6", "fig9"):
        kwargs["shards"] = shards
        kwargs["transport"] = transport
    return kwargs


def _figure_task(task: Tuple[str, Dict[str, Any]]) -> Tuple[str, Any]:
    from repro.experiments.figures import ALL_FIGURES

    name, kwargs = task
    return name, ALL_FIGURES[name](**kwargs)


def run_figures_parallel(
    names: Optional[Sequence[str]] = None,
    scale: float = 0.3,
    seed: int = 0,
    jobs: Optional[int] = None,
    lp_cache: bool = True,
    partition_seeds: bool = False,
    fast_lane: bool = True,
    l4_fast_lane: bool = True,
    lane: Optional[str] = None,
    shards: Optional[int] = None,
    transport: str = "shm",
) -> List[Tuple[str, Any]]:
    """Run paper figures across worker processes.

    Returns ``(name, result)`` pairs in the order requested.  Results are
    bit-identical to the serial path for any ``jobs`` (and, on the
    sharded lane, for any ``shards``).
    """
    from repro.experiments.figures import ALL_FIGURES

    wanted = list(names) if names is not None else list(ALL_FIGURES)
    unknown = [n for n in wanted if n not in ALL_FIGURES]
    if unknown:
        raise KeyError(f"unknown figures {unknown}; have {list(ALL_FIGURES)}")
    tasks = [
        (n, figure_kwargs(n, scale, seed, lp_cache, partition_seeds,
                          fast_lane, l4_fast_lane, lane, shards, transport))
        for n in wanted
    ]
    return parallel_map(_figure_task, tasks, jobs=jobs)
