"""Parameter sweeps: sensitivity studies around the paper's fixed choices.

The paper fixes a 100 ms window, one or two redirectors, and a LAN-scale
tree; these helpers rerun the canonical contended scenario (Fig 6 phase 1:
A floods against a 20% guarantee, B offers under its 80% guarantee) while
sweeping one knob, and report enforcement quality per point:

- ``sweep_window``      window length vs enforcement error,
- ``sweep_delay``       combining-tree delay vs convergence time,
- ``sweep_redirectors`` redirector count vs enforcement error and traffic,
- ``sweep_cache``       LP reuse tolerance vs error and solve count.

Every sweep takes ``jobs``: points are independent simulations, so they
run through :func:`repro.experiments.parallel.parallel_map`.  Each point
function is module-level (picklable) and derives everything from its task
tuple, so results are identical for any job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario
from repro.experiments.parallel import parallel_map
from repro.scheduling.window import WindowConfig

__all__ = [
    "SweepPoint",
    "sweep_window",
    "sweep_delay",
    "sweep_redirectors",
    "sweep_cache",
]


@dataclass
class SweepPoint:
    """One sweep sample."""

    knob: float
    b_rate: float                 # B's measured service rate (target 135)
    a_rate: float
    enforcement_error: float      # |B - 135| / 135
    extra: Dict[str, float] = field(default_factory=dict)


def _graph() -> AgreementGraph:
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return g


def _measure(sc: Scenario, duration: float, settle: float) -> Dict[str, float]:
    sc.run(duration)
    return {
        "A": sc.meter.mean_rate("A", settle, duration),
        "B": sc.meter.mean_rate("B", settle, duration),
    }


def _point(knob: float, rates: Dict[str, float], **extra) -> SweepPoint:
    return SweepPoint(
        knob=knob,
        b_rate=rates["B"],
        a_rate=rates["A"],
        enforcement_error=abs(rates["B"] - 135.0) / 135.0,
        extra=dict(extra),
    )


def _window_point(task: Tuple[float, float, int]) -> SweepPoint:
    wl, duration, seed = task
    sc = Scenario(_graph(), window=WindowConfig(wl), seed=seed)
    srv = sc.server("S", "S", 320.0)
    red = sc.l7("R", {"S": srv})
    sc.client("CA", "A", red, rate=405.0)
    sc.client("CB", "B", red, rate=135.0)
    rates = _measure(sc, duration, settle=max(5.0, 4 * wl))
    return _point(wl, rates)


def sweep_window(
    lengths: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.5),
    duration: float = 25.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Enforcement error vs scheduling-window length."""
    return parallel_map(
        _window_point, [(wl, duration, seed) for wl in lengths], jobs=jobs
    )


def _delay_point(task: Tuple[float, float, int]) -> SweepPoint:
    d, duration, seed = task
    sc = Scenario(_graph(), seed=seed)
    srv = sc.server("S", "S", 320.0)
    r1 = sc.l7("R1", {"S": srv}, n_redirectors=2)
    r2 = sc.l7("R2", {"S": srv}, n_redirectors=2)
    sc.connect_tree(link_delay=d, extra_root=True)
    sc.client("CA", "A", r1, rate=405.0)
    sc.client("CB", "B", r2, rate=135.0)
    settle = max(10.0, 4 * d)
    rates = _measure(sc, duration, settle=settle)
    ramp_b = sc.meter.mean_rate("B", 0.0, 2.0)
    return _point(d, rates, ramp_b=ramp_b)


def sweep_delay(
    delays: Sequence[float] = (0.005, 0.1, 0.5, 2.0, 5.0),
    duration: float = 40.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Steady-state enforcement vs combining-tree one-way link delay.

    Steady state is delay-insensitive (the paper's Fig 8 point); only the
    transient stretches, which ``extra['ramp_b']`` exposes as B's rate over
    the first 2 s.
    """
    return parallel_map(
        _delay_point, [(d, duration, seed) for d in delays], jobs=jobs
    )


def _redirectors_point(task: Tuple[int, float, int]) -> SweepPoint:
    n, duration, seed = task
    sc = Scenario(_graph(), seed=seed)
    srv = sc.server("S", "S", 320.0)
    reds = [sc.l7(f"R{i}", {"S": srv}, n_redirectors=n) for i in range(n)]
    if n > 1:
        sc.connect_tree(link_delay=0.002, kind="balanced")
    for i in range(n):
        sc.client(f"CA{i}", "A", reds[i], rate=405.0 / n)
    sc.client("CB", "B", reds[-1], rate=135.0)
    rates = _measure(sc, duration, settle=8.0)
    msgs = sc.counter.total / max(duration / 0.1, 1.0)
    return _point(float(n), rates, messages_per_round=msgs)


def sweep_redirectors(
    counts: Sequence[int] = (1, 2, 4, 8),
    duration: float = 30.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Enforcement and protocol traffic vs redirector count.

    A's offered load is spread evenly over all redirectors; B stays on the
    last one.  Message traffic per round (2(n-1)) lands in ``extra``.
    """
    return parallel_map(
        _redirectors_point, [(n, duration, seed) for n in counts], jobs=jobs
    )


def _cache_point(task: Tuple[float, float, int]) -> SweepPoint:
    tol, duration, seed = task
    sc = Scenario(_graph(), seed=seed)
    srv = sc.server("S", "S", 320.0)
    red = sc.l7("R", {"S": srv})
    red.allocator.cache_tolerance = tol
    sc.client("CA", "A", red, rate=405.0)
    sc.client("CB", "B", red, rate=135.0)
    rates = _measure(sc, duration, settle=5.0)
    return _point(
        tol, rates,
        lp_solves=float(red.allocator.lp_solves),
        cache_hits=float(red.allocator.cache_hits),
    )


def sweep_cache(
    tolerances: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.25),
    duration: float = 25.0,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Enforcement error and LP solve count vs the allocator reuse cache."""
    return parallel_map(
        _cache_point, [(tol, duration, seed) for tol in tolerances], jobs=jobs
    )
