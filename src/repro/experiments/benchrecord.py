"""Microbenchmark ledger: ``benchmarks/BENCH_core.json``.

Benchmarks record their headline numbers (median wall-clock per operation,
plus whatever counters justify a speedup claim) into one committed JSON
file, so performance changes show up in review diffs next to the code that
caused them.  Format, one entry per benchmark id::

    {
      "window_schedule_cached": {
        "median_ms": 0.123,
        "prev_median_ms": 0.456,      # previous recording, when it changed
        "meta": {"lp_solves": 3, "windows": 1000}
      }
    }

:func:`record_bench` merges (never truncates) so independent benchmarks can
write concurrently-committed entries without clobbering each other.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional

__all__ = ["record_bench", "load_bench", "DEFAULT_BENCH_PATH"]

DEFAULT_BENCH_PATH = os.path.join("benchmarks", "BENCH_core.json")


def load_bench(path: str = DEFAULT_BENCH_PATH) -> Dict[str, Any]:
    """Current ledger contents ({} when absent or unreadable)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
        return data if isinstance(data, dict) else {}
    except (OSError, ValueError):
        return {}


def record_bench(
    name: str,
    median_ms: float,
    meta: Optional[Mapping[str, Any]] = None,
    path: str = DEFAULT_BENCH_PATH,
) -> Dict[str, Any]:
    """Merge one benchmark's medians into the ledger; returns the entry.

    The previous median is kept as ``prev_median_ms`` whenever the new one
    differs, so the diff itself shows the before/after pair.
    """
    data = load_bench(path)
    old = data.get(name, {}) if isinstance(data.get(name), dict) else {}
    entry: Dict[str, Any] = {"median_ms": round(float(median_ms), 6)}
    prev = old.get("median_ms")
    if prev is not None and prev != entry["median_ms"]:
        entry["prev_median_ms"] = prev
    elif "prev_median_ms" in old:
        entry["prev_median_ms"] = old["prev_median_ms"]
    if meta:
        entry["meta"] = dict(meta)
    elif "meta" in old:
        entry["meta"] = old["meta"]
    data[name] = entry
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(dict(sorted(data.items())), fh, indent=2, sort_keys=False)
        fh.write("\n")
    return entry
