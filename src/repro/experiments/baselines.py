"""Baseline enforcement strategies for comparison experiments.

The paper's §6 surveys the two families its redirectors are *not*:
load-balancing front ends (weighted round-robin and variants) and
content-aware distributors.  Neither looks at agreements.  This module
implements that class of baseline — a pass-through redirector that admits
everything and spreads load across servers by capacity-weighted WRR — and
a comparison harness quantifying the SLA violation it produces next to
the coordinated scheduler on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.cluster.client import Decision, Drop, Redirect
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario
from repro.scheduling.wrr import SmoothWeightedRoundRobin
from repro.sim.engine import Simulator

__all__ = ["PassthroughRedirector", "BaselineComparison", "run_enforcement_comparison"]


class PassthroughRedirector:
    """Admits every request; balances load by capacity-weighted WRR.

    No agreements, no windows, no coordination — the classical cluster
    front end the paper contrasts with.
    """

    def __init__(self, sim: Simulator, name: str,
                 servers: Mapping[str, Union[Server, List[Server]]],
                 weights: Optional[Mapping[str, float]] = None):
        self.sim = sim
        self.name = name
        self.pool: List[Server] = []
        for s in servers.values():
            self.pool.extend(s if isinstance(s, (list, tuple)) else [s])
        if not self.pool:
            raise ValueError("need at least one server")
        # weights: explicit per-server forwarding bias (e.g. Fig 1's 75/25
        # locality preference); defaults to capacity-proportional.  The
        # rotation state is per *principal*: a shared rotor would alias
        # with deterministic client interleavings and steer whole
        # principals to single servers.
        self._weights = (
            dict(weights) if weights else {s.name: s.capacity for s in self.pool}
        )
        self._wrr: Dict[str, SmoothWeightedRoundRobin] = {}
        self._by_name = {s.name: s for s in self.pool}
        self.admitted: Dict[str, int] = {}

    def handle(self, request: Request, done: Optional[Callable] = None) -> Decision:
        rotor = self._wrr.get(request.principal)
        if rotor is None:
            rotor = SmoothWeightedRoundRobin(self._weights)
            self._wrr[request.principal] = rotor
        name = rotor.next()
        if name is None:
            return Drop()
        self.admitted[request.principal] = self.admitted.get(request.principal, 0) + 1
        return Redirect(self._by_name[name])


@dataclass
class BaselineComparison:
    """Measured rates under both strategies for the same workload."""

    coordinated: Dict[str, float]
    passthrough: Dict[str, float]
    guarantees: Dict[str, float]
    demands: Dict[str, float]

    def violation(self, strategy: str, principal: str) -> float:
        """Shortfall below the effective guarantee min(demand, MC)."""
        rates = self.coordinated if strategy == "coordinated" else self.passthrough
        floor = min(self.demands[principal], self.guarantees[principal])
        return max(0.0, floor - rates.get(principal, 0.0))

    @property
    def passthrough_violates(self) -> bool:
        return any(
            self.violation("passthrough", p) > 0.05 * max(1.0, self.guarantees[p])
            for p in self.guarantees
        )


def run_enforcement_comparison(
    duration: float = 30.0, seed: int = 0
) -> BaselineComparison:
    """Fig 6-shaped workload under coordinated vs pass-through front ends.

    A floods at 405 req/s against a 20% guarantee; B offers 135 req/s
    against an 80% guarantee (256 req/s).  Coordinated enforcement serves
    B fully; capacity-weighted WRR splits by offered load and squeezes B
    to ~a quarter of the server.
    """
    def build():
        g = AgreementGraph()
        g.add_principal("S", capacity=320.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("S", "A", 0.2, 1.0))
        g.add_agreement(Agreement("S", "B", 0.8, 1.0))
        return g

    demands = {"A": 405.0, "B": 135.0}
    settle = min(10.0, duration / 3.0)

    def drive(kind: str) -> Dict[str, float]:
        sc = Scenario(build(), seed=seed)
        srv = sc.server("S", "S", 320.0)
        if kind == "coordinated":
            red = sc.l7("R", {"S": srv})
        else:
            red = PassthroughRedirector(sc.sim, "R", {"S": srv})
        for p, rate in demands.items():
            sc.client(f"C{p}", p, red, rate=rate)
        sc.run(duration)
        return {
            p: sc.meter.mean_rate(p, settle, duration) for p in demands
        }

    g = build()
    from repro.core.access import compute_access_levels

    access = compute_access_levels(g)
    return BaselineComparison(
        coordinated=drive("coordinated"),
        passthrough=drive("passthrough"),
        guarantees={p: access.mandatory(p) for p in demands},
        demands=demands,
    )
