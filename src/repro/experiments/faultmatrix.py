"""Fault-matrix experiment: enforcement through a partition and its heal.

A fig8-style world — one 320 req/s server S, principal A [0.8, 1.0] with
two 135 req/s clients at redirector R1, principal B [0.2, 1.0] with one
135 req/s client at R2, a dedicated aggregator root — run through three
phases:

1. **agreed** — both redirectors coordinate; the community LP converges to
   the agreed (A 255, B 65) split.
2. **partition** — the coordination links between R2 and the root are cut.
   R2's view goes stale, the allocator snaps to the conservative 1/R
   fallback, and B is *held at* (not below) its ``0.2 × 320 / 2 = 32``
   req/s mandatory floor while the membership layer evicts the unreachable
   node; A, still coordinated, expands into the freed capacity.
3. **heal** — links are restored, heartbeats resume, R2 rejoins the tree,
   and both principals re-converge to the agreed split within a bounded
   number of scheduling windows (asserted by the invariant checker's
   liveness ledger when enabled).

The partition never silences the *request* path — clients keep talking to
their redirector — so the phase-2 rates demonstrate exactly the paper's
degradation story: losing coordination costs optional capacity, never the
mandatory guarantee.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import FigureResult, PhaseExpectation, Scenario
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, PartitionFault

__all__ = [
    "run_fault_matrix",
    "fault_matrix_scenario",
    "canonical_plan",
    "CONSERVATIVE_B",
]

# B's conservative floor: 1/R of its mandatory entitlement (R = 2).
CONSERVATIVE_B = 0.2 * 320.0 / 2.0

# Re-convergence budget after the heal: 30 windows of 0.1 s.
K_WINDOWS = 30

AGREED = {"A": 255.0, "B": 65.0}


def _graph() -> AgreementGraph:
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.8, 1.0))
    g.add_agreement(Agreement("S", "B", 0.2, 1.0))
    return g


def canonical_plan(duration_scale: float = 1.0) -> FaultPlan:
    """The fault matrix's default fault: partition R2 for the middle third."""
    phase = max(8.0, 20.0 * duration_scale)
    return FaultPlan(
        events=[PartitionFault(
            at=phase, until=2.0 * phase, groups=(("R2",), ("__root__", "R1")),
        )],
        name="coordination-partition",
    )


def fault_matrix_scenario(
    duration_scale: float = 1.0,
    seed: int = 0,
    lp_cache: bool = True,
    fast_lane: bool = True,
    fast_periodic: bool = True,
    check_invariants: Optional[bool] = None,
    plan: Optional[FaultPlan] = None,
    heartbeat_period: float = 0.25,
    stale_after: float = 1.0,
) -> Tuple[Scenario, FaultInjector, Tuple[float, float, float]]:
    """Build (and run) the fault-matrix world; returns it with its timeline.

    ``plan=None`` uses the canonical coordination partition of R2 during
    the middle third; pass any :class:`FaultPlan` (e.g. from ``repro
    chaos --random``) to drive the same world through different faults.
    """
    phase = max(8.0, 20.0 * duration_scale)
    t1, t2 = phase, 2.0 * phase
    end = 3.0 * phase
    sc = Scenario(
        _graph(), seed=seed, bin_width=0.5, lp_cache=lp_cache,
        fast_lane=fast_lane, fast_periodic=fast_periodic,
        check_invariants=check_invariants,
    )
    server = sc.server("S", "S", 320.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2, stale_after=stale_after)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2, stale_after=stale_after)
    sc.connect_tree(
        link_delay=0.01, extra_root=True, resilient=True,
        heartbeat_period=heartbeat_period,
    )
    sc.client("C1", "A", r1, rate=135.0)
    sc.client("C2", "A", r1, rate=135.0)
    sc.client("C3", "B", r2, rate=135.0)
    canonical = plan is None
    if plan is None:
        plan = canonical_plan(duration_scale)
    injector = FaultInjector(sc, plan)
    # The liveness ledger's deadline assumes the canonical timeline; a
    # caller-supplied plan may still be faulted at t2.
    if canonical and sc.invariants is not None:
        sc.invariants.arm_liveness(
            sc.sim, sc.meter, AGREED,
            heal_at=t2, k_windows=K_WINDOWS, window=sc.window.length,
        )
    sc.run(end)
    return sc, injector, (t1, t2, end)


def run_fault_matrix(
    duration_scale: float = 1.0,
    seed: int = 0,
    lp_cache: bool = True,
    fast_lane: bool = True,
    fast_periodic: bool = True,
    check_invariants: Optional[bool] = None,
) -> FigureResult:
    """The fault matrix as a figure: rates per phase, floor + recovery."""
    sc, injector, (t1, t2, end) = fault_matrix_scenario(
        duration_scale=duration_scale, seed=seed, lp_cache=lp_cache,
        fast_lane=fast_lane, fast_periodic=fast_periodic,
        check_invariants=check_invariants,
    )
    # Degradation needs stale_after + failure detection to kick in; the
    # recovery window is bounded by K_WINDOWS after the heal.
    settle = 3.0
    phases = [
        ("p1_agreed", settle, t1),
        ("p2_partition", t1 + settle, t2),
        ("p3_recovered", t2 + settle, end),
    ]
    membership = sc.membership
    assert membership is not None
    return FigureResult(
        figure="faultmatrix",
        title="Enforcement through coordination partition and heal",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=0.0),
        expected=[
            PhaseExpectation("p1_agreed", dict(AGREED)),
            # Partition: B held at its conservative floor (not starved),
            # A expands into the capacity B's optional share released.
            PhaseExpectation(
                "p2_partition", {"A": 270.0, "B": CONSERVATIVE_B},
                tolerance=0.3,
            ),
            PhaseExpectation("p3_recovered", dict(AGREED)),
        ],
        series=sc.series(["A", "B"]),
        notes=(
            f"partition [{t1:.0f}s, {t2:.0f}s): R2 cut from the tree; "
            f"evictions={membership.reconfigurations} "
            f"rejoins={membership.rejoins} "
            f"degraded_windows={sc.l7_redirectors['R2'].allocator.degraded_windows}"
        ),
    )
