"""Fault-matrix experiment: enforcement through a partition and its heal.

A fig8-style world — one 320 req/s server S, principal A [0.8, 1.0] with
two 135 req/s clients at redirector R1, principal B [0.2, 1.0] with one
135 req/s client at R2, a dedicated aggregator root — run through three
phases:

1. **agreed** — both redirectors coordinate; the community LP converges to
   the agreed (A 255, B 65) split.
2. **partition** — the coordination links between R2 and the root are cut.
   R2's view goes stale, the allocator snaps to the conservative 1/R
   fallback, and B is *held at* (not below) its ``0.2 × 320 / 2 = 32``
   req/s mandatory floor while the membership layer evicts the unreachable
   node; A, still coordinated, expands into the freed capacity.
3. **heal** — links are restored, heartbeats resume, R2 rejoins the tree,
   and both principals re-converge to the agreed split within a bounded
   number of scheduling windows (asserted by the invariant checker's
   liveness ledger when enabled).

The partition never silences the *request* path — clients keep talking to
their redirector — so the phase-2 rates demonstrate exactly the paper's
degradation story: losing coordination costs optional capacity, never the
mandatory guarantee.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.agreements import Agreement, AgreementGraph
from repro.coordination.checkpoint import RecoveryPolicy
from repro.experiments.harness import FigureResult, PhaseExpectation, Scenario
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, PartitionFault, ShardRevoke

__all__ = [
    "run_fault_matrix",
    "fault_matrix_scenario",
    "canonical_plan",
    "canonical_shard_plan",
    "run_crash_recovery_matrix",
    "CONSERVATIVE_B",
]

# B's conservative floor: 1/R of its mandatory entitlement (R = 2).
CONSERVATIVE_B = 0.2 * 320.0 / 2.0

# Re-convergence budget after the heal: 30 windows of 0.1 s.
K_WINDOWS = 30

AGREED = {"A": 255.0, "B": 65.0}


def _graph() -> AgreementGraph:
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.8, 1.0))
    g.add_agreement(Agreement("S", "B", 0.2, 1.0))
    return g


def canonical_plan(duration_scale: float = 1.0) -> FaultPlan:
    """The fault matrix's default fault: partition R2 for the middle third."""
    phase = max(8.0, 20.0 * duration_scale)
    return FaultPlan(
        events=[PartitionFault(
            at=phase, until=2.0 * phase, groups=(("R2",), ("__root__", "R1")),
        )],
        name="coordination-partition",
    )


def fault_matrix_scenario(
    duration_scale: float = 1.0,
    seed: int = 0,
    lp_cache: bool = True,
    fast_lane: bool = True,
    fast_periodic: bool = True,
    check_invariants: Optional[bool] = None,
    plan: Optional[FaultPlan] = None,
    heartbeat_period: float = 0.25,
    stale_after: float = 1.0,
) -> Tuple[Scenario, FaultInjector, Tuple[float, float, float]]:
    """Build (and run) the fault-matrix world; returns it with its timeline.

    ``plan=None`` uses the canonical coordination partition of R2 during
    the middle third; pass any :class:`FaultPlan` (e.g. from ``repro
    chaos --random``) to drive the same world through different faults.
    """
    phase = max(8.0, 20.0 * duration_scale)
    t1, t2 = phase, 2.0 * phase
    end = 3.0 * phase
    sc = Scenario(
        _graph(), seed=seed, bin_width=0.5, lp_cache=lp_cache,
        fast_lane=fast_lane, fast_periodic=fast_periodic,
        check_invariants=check_invariants,
    )
    server = sc.server("S", "S", 320.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2, stale_after=stale_after)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2, stale_after=stale_after)
    sc.connect_tree(
        link_delay=0.01, extra_root=True, resilient=True,
        heartbeat_period=heartbeat_period,
    )
    sc.client("C1", "A", r1, rate=135.0)
    sc.client("C2", "A", r1, rate=135.0)
    sc.client("C3", "B", r2, rate=135.0)
    canonical = plan is None
    if plan is None:
        plan = canonical_plan(duration_scale)
    injector = FaultInjector(sc, plan)
    # The liveness ledger's deadline assumes the canonical timeline; a
    # caller-supplied plan may still be faulted at t2.
    if canonical and sc.invariants is not None:
        sc.invariants.arm_liveness(
            sc.sim, sc.meter, AGREED,
            heal_at=t2, k_windows=K_WINDOWS, window=sc.window.length,
        )
    sc.run(end)
    return sc, injector, (t1, t2, end)


def run_fault_matrix(
    duration_scale: float = 1.0,
    seed: int = 0,
    lp_cache: bool = True,
    fast_lane: bool = True,
    fast_periodic: bool = True,
    check_invariants: Optional[bool] = None,
) -> FigureResult:
    """The fault matrix as a figure: rates per phase, floor + recovery."""
    sc, injector, (t1, t2, end) = fault_matrix_scenario(
        duration_scale=duration_scale, seed=seed, lp_cache=lp_cache,
        fast_lane=fast_lane, fast_periodic=fast_periodic,
        check_invariants=check_invariants,
    )
    # Degradation needs stale_after + failure detection to kick in; the
    # recovery window is bounded by K_WINDOWS after the heal.
    settle = 3.0
    phases = [
        ("p1_agreed", settle, t1),
        ("p2_partition", t1 + settle, t2),
        ("p3_recovered", t2 + settle, end),
    ]
    membership = sc.membership
    assert membership is not None
    return FigureResult(
        figure="faultmatrix",
        title="Enforcement through coordination partition and heal",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=0.0),
        expected=[
            PhaseExpectation("p1_agreed", dict(AGREED)),
            # Partition: B held at its conservative floor (not starved),
            # A expands into the capacity B's optional share released.
            PhaseExpectation(
                "p2_partition", {"A": 270.0, "B": CONSERVATIVE_B},
                tolerance=0.3,
            ),
            PhaseExpectation("p3_recovered", dict(AGREED)),
        ],
        series=sc.series(["A", "B"]),
        notes=(
            f"partition [{t1:.0f}s, {t2:.0f}s): R2 cut from the tree; "
            f"evictions={membership.reconfigurations} "
            f"rejoins={membership.rejoins} "
            f"degraded_windows={sc.l7_redirectors['R2'].allocator.degraded_windows}"
        ),
    )


# ---------------------------------------------------------------------------
# Crash-recovery matrix (sharded execution lane)
# ---------------------------------------------------------------------------


def _crash_epochs(n_windows: int) -> Tuple[int, int]:
    """Two distinct death epochs: one third and two thirds through the run."""
    e1 = max(1, n_windows // 3)
    e2 = max(e1 + 1, (2 * n_windows) // 3)
    return e1, e2


def canonical_shard_plan(
    figure: str = "fig6",
    duration_scale: float = 0.05,
    shards: int = 4,
    window: float = 0.1,
) -> FaultPlan:
    """The canonical worker-revocation plan for ``repro chaos --shards R``.

    Two deaths at distinct epochs, one per crash path: shard 0 raises at a
    third of the run (the exception path), and a second shard is SIGKILLed
    at two thirds (the hard-death path).  Epoch binding happens in
    :func:`repro.experiments.sharded.shard_faults_from_plan`.
    """
    horizon = {"fig9": 4.0}.get(figure, 3.0)
    n_windows = max(1, int(round(horizon * 100.0 * duration_scale / window)))
    e1, e2 = _crash_epochs(n_windows)
    return FaultPlan(
        events=[
            ShardRevoke(at=e1 * window, shard=0, mode="exc"),
            ShardRevoke(at=e2 * window, shard=min(1, shards - 1), mode="kill"),
        ],
        name=f"shard-crash-{figure}",
    )


def run_crash_recovery_matrix(
    figure: str = "fig6",
    duration_scale: float = 0.05,
    seed: int = 0,
    shards: int = 4,
    replicas: int = 4,
    transport: str = "shm",
) -> Dict[str, Any]:
    """Crash-recovery matrix: every death mode must leave the digest intact.

    Runs the sharded world unfaulted at ``shards=1`` for the reference
    digest, then four faulted cells at ``shards``:

    - ``exc``      worker raises mid-run (WorkerFailure -> respawn);
    - ``kill``     worker SIGKILLed (EOF on the pipe -> respawn);
    - ``multi``    both deaths, two distinct epochs, two shards;
    - ``reassign`` restart budget of 1 vs two kills: the second death
      retires the shard and its clusters move to the survivors.

    Every cell must reproduce the reference digest bit-identically — the
    matrix's single pass/fail; ``reassign`` must additionally record at
    least one :class:`~repro.coordination.checkpoint.ShardReassignment`
    (otherwise the cell exercised nothing and is marked failed).

    ``transport`` selects the faulted cells' data plane (pipe or shm); the
    shards=1 reference runs inline either way, so matrix parity also
    proves recovery is digest-identical on the chosen transport.
    """
    from repro.experiments.sharded import run_sharded

    baseline = run_sharded(figure, duration_scale=duration_scale, seed=seed,
                           shards=1, replicas=replicas)
    ref = baseline.digest()
    e1, e2 = _crash_epochs(baseline.n_windows)
    other = min(1, shards - 1)
    cells: Dict[str, Dict[str, Any]] = {}

    def cell(name: str, faults, recovery=None, need_reassign=False) -> None:
        kwargs: Dict[str, Any] = {}
        if recovery is not None:
            kwargs["recovery"] = recovery
        res = run_sharded(figure, duration_scale=duration_scale, seed=seed,
                          shards=shards, replicas=replicas, faults=faults,
                          transport=transport, **kwargs)
        degraded = len(res.reassignments)
        ok = res.digest() == ref and (degraded > 0 or not need_reassign)
        cells[name] = {
            "faults": list(faults),
            "digest": res.digest(),
            "match": res.digest() == ref,
            "restarts": len(res.restarts),
            "reassignments": degraded,
            "checkpoint_match":
                res.final_checkpoint_digest == baseline.final_checkpoint_digest,
            "ok": ok,
        }

    cell("exc", [f"0:{e1}:exc"])
    cell("kill", [f"{other}:{e2}:kill"])
    cell("multi", [f"0:{e1}:exc", f"{other}:{e2}:kill"])
    cell("reassign", [f"0:{e1}:kill", f"0:{e2}:kill"],
         recovery=RecoveryPolicy(max_restarts=1, backoff_base=0.01),
         need_reassign=True)

    return {
        "figure": figure,
        "shards": shards,
        "transport": transport,
        "epochs": [e1, e2],
        "baseline_digest": ref,
        "cells": cells,
        "ok": all(c["ok"] for c in cells.values()),
    }
