"""Sharded single-scenario execution: one world across many cores.

`experiments/parallel.py` parallelises *across* experiments; this module
parallelises *within* one: a :class:`ShardedRunner` partitions a world's
clusters into R shards, runs each shard in its own worker process, and
synchronises only at window boundaries — the paper's own decomposition.
Clusters are independent within a 100 ms scheduling window (§3.2): they
exchange state exclusively through the combining tree at window edges,
2(n-1) messages per round.  The runner makes each window a conservative
barrier epoch:

1. the parent broadcasts the window-k allocation policy (the globally
   consistent served fraction per principal, from the LP on window k-1's
   merged demand; window 0 uses the conservative 1/R fallback),
2. every worker simulates its clusters through window k to completion and
   ships one :class:`~repro.coordination.barrier.BoundaryMessage` carrying
   a per-cluster :class:`~repro.coordination.aggregation.VectorAggregate`
   of demand, the per-principal admitted counts, and a
   :class:`~repro.coordination.checkpoint.ClusterCheckpoint` per cluster,
3. the parent folds the per-cluster aggregates through the existing
   :class:`~repro.coordination.tree.CombiningTree` reduction (balanced
   tree over *sorted cluster names*, so float-sum order never depends on
   how clusters were packed into shards), solves the window LP via the
   shared :class:`~repro.scheduling.allocator.WindowAllocator` (reusing
   its SolveCache), ingests the window's history and checkpoints, and
   releases everyone into window k+1.

The parent is the sole owner of run history (the per-window series live
in the parent, never the workers), so a worker holds nothing but its
clusters' *live* state — and that state is checkpointed every epoch.
That makes the runner self-healing: on a
:class:`~repro.coordination.barrier.ShardWorkerError` the parent —
governed by a :class:`~repro.coordination.checkpoint.RecoveryPolicy` —
respawns the dead shard from the last checkpoint and replays the
in-flight window; when the restart budget is exhausted it degrades
instead, reassigning the dead shard's clusters round-robin to the
survivors (`ReassignMessage`), exactly the combining tree's
reparent-the-orphans move one layer down.

Determinism is by construction, not by luck: every cluster owns the RNG
substream ``cluster:<name>`` (PR 4's ``link:<src>-><dst>`` pattern
generalised) and consumes it in fixed (window, client) order; restoring a
checkpoint resumes the Philox counter at the exact draw of the snapshot.
``shards=1`` runs the identical per-cluster math inline, so ``shards=1``,
``shards=8``, and ``shards=8`` *with worker deaths* all produce
bit-identical SHA-256 digests — enforced by ``repro check --shards
[--with-crashes]`` exactly like the three-way lane digest.

Two data planes carry the boundary exchange.  The default ``transport=
"shm"`` uses the zero-copy shared-memory plane
(:mod:`repro.coordination.shm`): the parent seqlock-publishes each
epoch's allocation into a control block, workers write demand/admitted
columns and binary checkpoint records into per-shard ring slots, and the
parent folds allocations straight out of the arrays — the steady-state
epoch does zero pickling and zero hashing, and pipes carry only control
traffic (faults, reassignment, finish, failure).  ``transport="pipe"``
keeps the PR 7/9 pickled-message plane; the runner also falls back to it
automatically (recorded in ``ShardedResult.transport_fallback``) when
shared memory is unavailable.  The transport is digest-invisible: both
planes move the same float64 values bit-exactly and fold them in the
same order.

Deterministic crash hooks for tests and chaos runs: the
``REPRO_SHARD_FAULT`` env var (or the ``faults=`` argument, or a
:class:`~repro.faults.plan.FaultPlan` with ``revoke_shard`` events via
:func:`shard_faults_from_plan`) holds comma-separated
``<shard>:<epoch>[:<mode>]`` tokens; ``mode`` is ``exit`` (hard
``os._exit``, the default), ``exc`` (clean in-worker exception shipped as
a :class:`WorkerFailure`), or ``kill`` (SIGKILL — nothing in the worker
runs, the parent sees a dead pipe).
"""

from __future__ import annotations

import hashlib
import logging
import math
import multiprocessing as mp
import os
import pickle
import signal
import time
from dataclasses import dataclass, field
from time import monotonic  # simlint: disable=SIM001  # IPC deadlines, not sim time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.coordination.aggregation import StreamStats, VectorAggregate
from repro.coordination.barrier import (
    AllocationMessage,
    BoundaryMessage,
    EpochBarrier,
    FinishMessage,
    ReassignMessage,
    ShardWorkerError,
    WorkerFailure,
)
from repro.coordination.checkpoint import (
    CheckpointStore,
    ClusterCheckpoint,
    RecoveryPolicy,
    ShardReassignment,
    ShardRestart,
    epoch_digest,
)
from repro.coordination.shm import PlaneSpec, ShmDataPlane, ShmUnavailable
from repro.coordination.tree import CombiningTree
from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import FigureResult, PhaseExpectation
from repro.faults.plan import SHARD_REVOKE_MODES, FaultPlan, FaultPlanError, ShardRevoke
from repro.scheduling.allocator import WindowAllocator
from repro.scheduling.window import WindowConfig
from repro.sim.monitor import PhaseStats
from repro.sim.rng import RngStreams

__all__ = [
    "ShardClient",
    "ShardCluster",
    "ShardedWorld",
    "ShardFault",
    "ShardedResult",
    "ShardedRunner",
    "shard_faults_from_plan",
    "sharded_fig6_world",
    "sharded_fig9_world",
    "SHARDED_WORLDS",
    "run_sharded",
    "run_sharded_figure",
]

_LOG = logging.getLogger("repro.sharded")

_FAULT_ENV = "REPRO_SHARD_FAULT"


# ---------------------------------------------------------------------------
# World declaration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardClient:
    """Open-loop Poisson source bound to one cluster.

    ``windows`` lists (start, end) activity intervals in seconds; ``None``
    means always active.  Arrival counts per scheduling window are Poisson
    with mean ``rate × overlap(window, activity)``, drawn from the owning
    cluster's substream in declaration order.
    """

    name: str
    principal: str
    rate: float
    windows: Optional[Tuple[Tuple[float, float], ...]] = None

    def overlap(self, t0: float, t1: float) -> float:
        """Active seconds inside [t0, t1)."""
        if self.windows is None:
            return t1 - t0
        total = 0.0
        for a, b in self.windows:
            total += max(0.0, min(b, t1) - max(a, t0))
        return total


@dataclass(frozen=True)
class ShardCluster:
    """One cluster: a redirector's worth of clients plus a local server.

    ``capacity`` (req/s) drives the response-time observer — a constant-
    service Lindley recursion over the cluster's admitted requests.  It
    does not gate admission; quotas do.
    """

    name: str
    clients: Tuple[ShardClient, ...]
    capacity: float


@dataclass(frozen=True)
class ShardedWorld:
    """A full declarative scenario for the sharded lane.

    The agreement ``graph`` lives parent-side only (it feeds the window
    LP); workers receive nothing but their own clusters and the static
    conservative split.
    """

    name: str
    clusters: Tuple[ShardCluster, ...]
    principals: Tuple[str, ...]
    duration: float
    seed: int = 0
    window: float = 0.1
    graph: AgreementGraph = field(default_factory=AgreementGraph, repr=False)

    @property
    def n_windows(self) -> int:
        return max(1, int(math.ceil(self.duration / self.window - 1e-9)))


# ---------------------------------------------------------------------------
# Fault specs (deterministic worker deaths)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardFault:
    """One scheduled worker death, fired at the start of ``epoch``."""

    epoch: int
    mode: str = "exit"


def _parse_fault_entry(entry: Any) -> Optional[Tuple[int, ShardFault]]:
    """``"shard:epoch[:mode]"`` or ``(shard, epoch[, mode])`` -> parsed."""
    if isinstance(entry, str):
        parts = entry.split(":")
    elif isinstance(entry, (tuple, list)):
        parts = [str(x) for x in entry]
    else:
        return None
    if len(parts) not in (2, 3):
        return None
    try:
        shard, epoch = int(parts[0]), int(parts[1])
    except ValueError:
        return None
    mode = parts[2] if len(parts) == 3 else "exit"
    if mode not in SHARD_REVOKE_MODES or epoch < 0:
        return None
    return shard, ShardFault(epoch=epoch, mode=mode)


def shard_faults_from_plan(
    plan: FaultPlan, window: float, n_windows: int, shards: int
) -> List[Tuple[int, int, str]]:
    """Bind a plan's ``revoke_shard`` events to epochs: (shard, epoch, mode).

    Raises :class:`FaultPlanError` when an event names a shard index the
    run does not have — the typed error ``repro chaos`` maps to exit 2.
    """
    out: List[Tuple[int, int, str]] = []
    for ev in plan.events:
        if not isinstance(ev, ShardRevoke):
            continue
        if not 0 <= ev.shard < shards:
            raise FaultPlanError(
                f"revoke_shard at t={ev.at:g}: shard {ev.shard} out of "
                f"range for a {shards}-shard run"
            )
        epoch = min(n_windows - 1, int(ev.at / window + 1e-9))
        out.append((ev.shard, epoch, ev.mode))
    return out


def _fire_fault(mode: str) -> None:
    """Kill the current worker the way ``mode`` asks.  May not return."""
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "exc":
        raise RuntimeError("injected shard fault (mode=exc)")
    os._exit(3)


# ---------------------------------------------------------------------------
# Worker-side state (identical for shards=1 inline and shards=R processes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, shipped once at start (picklable).

    Workers rebuild all state from this task, so fork and spawn start
    methods are interchangeable; nothing is inherited from parent memory.
    A respawned worker's task additionally carries ``restore`` — the
    last-checkpoint state of its clusters — and only the faults that have
    not fired yet (a deterministic crasher must not crash-loop).
    """

    shard: int
    clusters: Tuple[ShardCluster, ...]
    principals: Tuple[str, ...]
    seed: int
    window: float
    n_windows: int
    # Conservative per-principal mandatory share (requests/window) when no
    # global information exists: MC_w[p] / n_clusters, the allocator's 1/R
    # fallback with every cluster counted as a redirector.
    conservative: Dict[str, float] = field(default_factory=dict)
    faults: Tuple[ShardFault, ...] = ()
    restore: Dict[str, ClusterCheckpoint] = field(default_factory=dict)
    # Shared-memory data plane: when set, the worker attaches to the
    # parent's segment and the pipe carries only control traffic.
    plane: Optional[PlaneSpec] = None
    # First epoch this worker will execute (respawned workers resume at
    # the in-flight window; the allocation control block already shows it).
    resume_epoch: int = 0


# One window's outcome for one cluster: (demand aggregate, admitted counts).
ClusterRecord = Tuple[VectorAggregate, Dict[str, float]]


class _ClusterState:
    """One cluster's private simulation state.

    Self-contained: its draws depend only on (its substream, the broadcast
    fraction sequence), never on which shard runs it or which clusters
    share its worker — the invariant the digest-parity contract rests on.
    Everything here round-trips through :meth:`checkpoint`/:meth:`restore`
    bit-exactly; per-window history lives in the parent.
    """

    def __init__(self, spec: ShardCluster, principals: Tuple[str, ...],
                 window: float, streams: RngStreams) -> None:
        self.spec = spec
        self.principals = principals
        self.window = window
        self.rng = streams.get(f"cluster:{spec.name}")
        # Residual-carry admission: fractional quota left over while
        # quota-limited rolls into the next window (no banking of unused
        # quota), so long-run admitted rate tracks quota exactly.
        self.carry = {p: 0.0 for p in principals}
        self.response = StreamStats()
        self.clock = 0.0           # server-free time for the Lindley observer
        self.svc = 1.0 / spec.capacity

    def step(self, k: int, frac: Optional[Dict[str, float]],
             conservative: Mapping[str, float]) -> ClusterRecord:
        """Simulate window k; returns (demand aggregate, admitted counts)."""
        w = self.window
        t0, t1 = k * w, (k + 1) * w
        demand = {p: 0 for p in self.principals}
        for client in self.spec.clients:
            active = client.overlap(t0, t1)
            if active > 0.0:
                demand[client.principal] += int(
                    self.rng.poisson(client.rate * active)
                )
        admitted: Dict[str, float] = {}
        total_adm = 0
        for p in self.principals:
            d = demand[p]
            if frac is not None:
                quota = frac.get(p, 0.0) * d
            else:
                quota = min(float(d), conservative.get(p, 0.0))
            budget = quota + self.carry[p]
            adm = min(d, int(budget))
            if adm < d:
                self.carry[p] = budget - adm
            else:
                self.carry[p] = 0.0
            admitted[p] = float(adm)
            total_adm += adm
        if total_adm > 0:
            self._observe(t0, total_adm)
        return (
            VectorAggregate.local({p: float(demand[p]) for p in self.principals}),
            admitted,
        )

    def _observe(self, t0: float, m: int) -> None:
        """Constant-service Lindley recursion over m in-window arrivals."""
        arr = t0 + np.sort(self.rng.uniform(0.0, self.window, size=m))
        svc = self.svc
        # finish_i = svc*(i+1) + max(clock, max_{j<=i}(arr_j - svc*j))
        slack = np.maximum.accumulate(arr - svc * np.arange(m))
        finish = svc * np.arange(1, m + 1) + np.maximum(slack, self.clock)
        resp = finish - arr
        self.clock = float(finish[-1])
        batch = StreamStats(
            count=m,
            mean=float(resp.mean()),
            m2=float(((resp - resp.mean()) ** 2).sum()),
            min=float(resp.min()),
            max=float(resp.max()),
        )
        self.response = self.response.merge(batch)

    def checkpoint(self) -> ClusterCheckpoint:
        return ClusterCheckpoint(
            rng_state=self.rng.bit_generator.state,
            carry=dict(self.carry),
            response=self.response,
            clock=self.clock,
        )

    def restore(self, ck: ClusterCheckpoint) -> None:
        self.rng.bit_generator.state = dict(ck.rng_state)
        self.carry = dict(ck.carry)
        self.response = ck.response
        self.clock = float(ck.clock)


class ShardState:
    """All clusters owned by one worker, stepped window-by-window."""

    def __init__(self, task: ShardTask) -> None:
        self.task = task
        self.streams = RngStreams(task.seed)
        self.clusters = [
            self._build(spec, task.restore.get(spec.name))
            for spec in task.clusters
        ]

    def _build(self, spec: ShardCluster,
               ck: Optional[ClusterCheckpoint]) -> _ClusterState:
        state = _ClusterState(spec, self.task.principals, self.task.window,
                              self.streams)
        if ck is not None:
            state.restore(ck)
        return state

    def step(self, k: int,
             frac: Optional[Dict[str, float]]) -> Dict[str, ClusterRecord]:
        cons = self.task.conservative
        return {c.spec.name: c.step(k, frac, cons) for c in self.clusters}

    def adopt(self, specs: Sequence[ShardCluster],
              checkpoints: Mapping[str, ClusterCheckpoint]) -> List[_ClusterState]:
        """Take over a dead shard's clusters, restoring their checkpoints."""
        added = [
            self._build(spec, checkpoints.get(spec.name)) for spec in specs
        ]
        self.clusters.extend(added)
        return added

    def checkpoints(
        self, clusters: Optional[Sequence[_ClusterState]] = None
    ) -> Dict[str, ClusterCheckpoint]:
        subset = self.clusters if clusters is None else clusters
        return {c.spec.name: c.checkpoint() for c in subset}


def _boundary(epoch: int, shard: int, state: ShardState,
              records: Dict[str, ClusterRecord],
              clusters: Optional[List[_ClusterState]] = None) -> BoundaryMessage:
    return BoundaryMessage(
        epoch=epoch,
        shard=shard,
        demand={name: rec[0] for name, rec in records.items()},
        admitted={name: rec[1] for name, rec in records.items()},
        checkpoints=state.checkpoints(clusters),
    )


def _plane_rows(
    state: ShardState, records: Dict[str, ClusterRecord],
    principals: Tuple[str, ...],
    clusters: Optional[List[_ClusterState]] = None,
) -> Dict[str, Tuple[List[float], List[float], ClusterCheckpoint]]:
    """Boundary records in the shared-memory row form (dense columns)."""
    cks = state.checkpoints(clusters)
    return {
        name: (
            [agg.get(p, 0.0) for p in principals],
            [float(admitted.get(p, 0.0)) for p in principals],
            cks[name],
        )
        for name, (agg, admitted) in records.items()
    }


def _shard_worker_main(conn: Any, task: ShardTask) -> None:
    """Worker process entry point: epoch loop until FinishMessage.

    Module-level (picklable under spawn); receives *all* state through
    ``task`` — never module globals (SIM007's worker contract).
    Dispatches to the shared-memory loop when the task carries a plane
    spec; otherwise runs the pipe-message loop.
    """
    if task.plane is not None:
        _shard_worker_shm(conn, task)
        return
    faults = {f.epoch: f.mode for f in task.faults}
    try:
        state = ShardState(task)
        while True:
            msg = conn.recv()
            if isinstance(msg, FinishMessage):
                return
            if isinstance(msg, ReassignMessage):
                added = state.adopt(msg.clusters, msg.checkpoints)
                records = {
                    c.spec.name: c.step(msg.epoch, msg.frac, task.conservative)
                    for c in added
                }
                conn.send(_boundary(msg.epoch, task.shard, state, records,
                                    clusters=added))
                continue
            mode = faults.pop(msg.epoch, None)
            if mode is not None:
                _fire_fault(mode)   # deterministic mid-window death
            records = state.step(msg.epoch, msg.frac)
            conn.send(_boundary(msg.epoch, task.shard, state, records))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return
    except Exception as exc:   # ship the failure; never leave a hang
        try:
            conn.send(WorkerFailure(task.shard, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


# Worker-side allocation poll backoff: tiny floor keeps barrier latency in
# the tens of microseconds, tiny cap keeps a waiting worker nearly idle
# without ever adding more than ~2 ms to an epoch boundary.
_WORKER_POLL_FLOOR = 0.0002
_WORKER_POLL_CAP = 0.002


def _shard_worker_shm(conn: Any, task: ShardTask) -> None:
    """Shared-memory worker loop: allocations and boundaries via the plane.

    The pipe is polled non-blockingly for control traffic only.  A
    ``ReassignMessage`` for epoch *k* is deferred until this worker has
    published its *own* epoch-*k* rows — publishing the adopted rows first
    would mark the slot's seqlock as epoch-*k*-complete while the owned
    rows were still stale.  Adoption replies go back over the pipe (they
    are rare control traffic), but the adopted rows are *also* published
    into this worker's ring slot so later restores can decode them.
    """
    assert task.plane is not None
    faults = {f.epoch: f.mode for f in task.faults}
    plane = ShmDataPlane.attach(task.plane)
    try:
        state = ShardState(task)
        principals = task.principals
        last = task.resume_epoch - 1
        pending: List[ReassignMessage] = []
        wait = _WORKER_POLL_FLOOR
        while True:
            if conn.poll(0):
                msg = conn.recv()
                if isinstance(msg, FinishMessage):
                    return
                if isinstance(msg, ReassignMessage):
                    pending.append(msg)
                    continue
            while pending and pending[0].epoch <= last:
                msg = pending.pop(0)
                added = state.adopt(msg.clusters, msg.checkpoints)
                records = {
                    c.spec.name: c.step(msg.epoch, msg.frac, task.conservative)
                    for c in added
                }
                plane.publish(task.shard, msg.epoch,
                              _plane_rows(state, records, principals,
                                          clusters=added))
                conn.send(_boundary(msg.epoch, task.shard, state, records,
                                    clusters=added))
            ready, frac = plane.poll_allocation(last + 1)
            if not ready:
                time.sleep(wait)
                wait = min(wait * 2.0, _WORKER_POLL_CAP)
                continue
            wait = _WORKER_POLL_FLOOR
            k = last + 1
            mode = faults.pop(k, None)
            if mode is not None:
                _fire_fault(mode)   # deterministic mid-window death
            records = state.step(k, frac)
            plane.publish(task.shard, k,
                          _plane_rows(state, records, principals))
            last = k
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return
    except Exception as exc:   # ship the failure; never leave a hang
        try:
            conn.send(WorkerFailure(task.shard, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        plane.close()


# ---------------------------------------------------------------------------
# Parent-side runner
# ---------------------------------------------------------------------------


@dataclass
class ShardedResult:
    """Everything observable from one sharded run.

    ``digest()`` covers every per-cluster series plus the parent-side
    policy trace; it deliberately omits the shard count *and* the
    recovery trace, so digest equality between ``shards=1``,
    ``shards=R``, and ``shards=R`` with worker deaths *is* the parity
    proof.  ``final_checkpoint_digest`` is a second, independent witness:
    the SHA-256 of every cluster's terminal state snapshot.
    """

    world: ShardedWorld
    shards: int
    window: float
    n_windows: int
    principals: Tuple[str, ...]
    clusters: Tuple[str, ...]
    demand: Dict[str, Dict[str, np.ndarray]]
    admitted: Dict[str, Dict[str, np.ndarray]]
    refused: Dict[str, Dict[str, np.ndarray]]
    response: Dict[str, StreamStats]
    clock: Dict[str, float]
    global_demand: Dict[str, np.ndarray]
    frac: Dict[str, np.ndarray]     # -1.0 sentinel on conservative windows
    lp_solves: int = 0
    cache_hits: int = 0
    fallback_windows: int = 0
    restarts: List[ShardRestart] = field(default_factory=list)
    reassignments: List[ShardReassignment] = field(default_factory=list)
    final_checkpoint_digest: str = ""
    checkpoint_bytes: int = 0       # retained store size (sharded runs)
    barrier_polls: int = 0
    barrier_wait_s: float = 0.0
    # Data-plane accounting.  ``data_plane`` is what actually carried the
    # boundary exchange: "inline" (shards=1), "pipe", or "shm";
    # ``transport_fallback`` records why a requested shm plane fell back
    # to pipes.  ``bytes_per_epoch`` is the per-epoch boundary payload the
    # parent handles: pickled message bytes for the pipe plane (probed
    # once on a steady-state epoch), copied row/control bytes for the shm
    # plane.  ``ring_bytes_per_epoch`` is the checkpoint-record bytes
    # workers write in place per epoch (shm only; decoded only on
    # restore/spill/audit, never crossing to the parent in steady state).
    data_plane: str = "inline"
    transport_fallback: Optional[str] = None
    bytes_per_epoch: int = 0
    ring_bytes_per_epoch: int = 0
    plane_polls: int = 0
    plane_wait_s: float = 0.0

    # -- derived views ----------------------------------------------------

    def admitted_series(self, principal: str) -> Tuple[np.ndarray, np.ndarray]:
        """(window-centre times, admitted req/s) summed over clusters."""
        times = (np.arange(self.n_windows) + 0.5) * self.window
        total = np.zeros(self.n_windows)
        for name in self.clusters:
            total += self.admitted[name][principal]
        return times, total / self.window

    def series(self, keys: Sequence[str]) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        return {p: self.admitted_series(p) for p in keys}

    def phase_rates(
        self,
        phases: Sequence[Tuple[str, float, float]],
        keys: Optional[Sequence[str]] = None,
        settle: float = 0.0,
    ) -> List[PhaseStats]:
        """Mean admitted rate per principal over whole windows in a phase."""
        keys = list(keys) if keys is not None else list(self.principals)
        idx = np.arange(self.n_windows)
        w0, w1 = idx * self.window, (idx + 1) * self.window
        out: List[PhaseStats] = []
        for name, t0, t1 in phases:
            sel = (w0 >= t0 + settle - 1e-9) & (w1 <= t1 + 1e-9)
            span = float(sel.sum()) * self.window
            stats = PhaseStats(name=name, t0=t0, t1=t1)
            for p in keys:
                if span <= 0:
                    stats.rates[p] = 0.0
                    continue
                total = sum(
                    float(self.admitted[c][p][sel].sum()) for c in self.clusters
                )
                stats.rates[p] = total / span
            out.append(stats)
        return out

    def digest(self) -> str:
        """SHA-256 over exact float bytes of all observable state."""
        h = hashlib.sha256()

        def floats(values: Any) -> None:
            h.update(np.ascontiguousarray(
                np.asarray(values, dtype=float)).tobytes())

        for name in sorted(self.clusters):
            h.update(name.encode("utf-8"))
            for p in sorted(self.principals):
                h.update(p.encode("utf-8"))
                floats(self.demand[name][p])
                floats(self.admitted[name][p])
                floats(self.refused[name][p])
            st = self.response[name]
            h.update(str(st.count).encode("ascii"))
            floats([st.mean, st.m2])
            if st.count:
                floats([st.min, st.max])
            floats([self.clock[name]])
        for p in sorted(self.principals):
            h.update(p.encode("utf-8"))
            floats(self.global_demand[p])
            floats(self.frac[p])
        return h.hexdigest()


class ShardedRunner:
    """Partition a world's clusters into R shards and run to the horizon.

    ``shards=1`` steps the identical per-cluster state machines inline (no
    processes, no pickling) — the reference the digest-parity check holds
    every R against.  Partitioning is round-robin over *sorted* cluster
    names, so shard membership is a pure function of (world, R); results
    are a pure function of world alone.

    ``recovery`` (default :class:`RecoveryPolicy`) makes the sharded path
    self-healing: respawn-from-checkpoint inside the budget, cluster
    reassignment to survivors beyond it.  ``recovery=None`` restores the
    PR 7 fail-stop behaviour (first :class:`ShardWorkerError` aborts).
    ``faults`` schedules deterministic worker deaths
    (``"shard:epoch[:mode]"`` entries, strictly validated); when omitted,
    the ``REPRO_SHARD_FAULT`` env var is consulted with the same syntax
    (tolerantly: tokens for out-of-range shards are ignored, so one env
    setting can target a specific matrix cell).
    """

    def __init__(
        self,
        world: ShardedWorld,
        shards: int = 1,
        lp_cache: bool = True,
        backend: str = "auto",
        epoch_timeout: float = 120.0,
        recovery: Optional[RecoveryPolicy] = RecoveryPolicy(),
        checkpoint_retain: int = 2,
        checkpoint_spill: Optional[str] = None,
        faults: Optional[Sequence[Any]] = None,
        transport: str = "shm",
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not world.clusters:
            raise ValueError("world has no clusters")
        if transport not in ("pipe", "shm"):
            raise ValueError(f"transport must be 'pipe' or 'shm', "
                             f"not {transport!r}")
        self.world = world
        self.transport = transport
        self.shards = min(int(shards), len(world.clusters))
        self.lp_cache = bool(lp_cache)
        self.backend = backend
        self.epoch_timeout = float(epoch_timeout)
        self.recovery = recovery
        self.checkpoint_retain = int(checkpoint_retain)
        self.checkpoint_spill = checkpoint_spill
        self.access = compute_access_levels(world.graph)
        self.window_cfg = WindowConfig(world.window)
        n_clusters = len(world.clusters)
        self.allocator = WindowAllocator(
            self.access, self.window_cfg, mode="community",
            n_redirectors=n_clusters, backend=backend, lp_cache=lp_cache,
        )
        w_levels = self.access.per_window(world.window)
        self._conservative = {
            p: float(w_levels.MC[self.access.index(p)]) / n_clusters
            for p in world.principals
        }
        ordered = sorted(world.clusters, key=lambda c: c.name)
        self._partitions: List[Tuple[ShardCluster, ...]] = [
            tuple(ordered[i::self.shards]) for i in range(self.shards)
        ]
        # Reduction order: balanced combining tree over sorted cluster
        # names — fixed fold order regardless of shard packing.
        self._tree = CombiningTree.balanced([c.name for c in ordered])
        self._fault_specs = self._bind_faults(faults)
        # Per-run mutable state (set up in run()).
        self._owned: Dict[int, List[ShardCluster]] = {}
        self._faults: Dict[int, List[ShardFault]] = {}
        self._expected: Dict[int, int] = {}
        self._epoch_attempts: Dict[Tuple[int, int], int] = {}
        self._store = CheckpointStore(retain=self.checkpoint_retain)
        self.restarts: List[ShardRestart] = []
        self.reassignments: List[ShardReassignment] = []
        self._ctx: Any = None
        self._plane: Optional[ShmDataPlane] = None
        self.transport_fallback: Optional[str] = None
        # Cluster -> shard that published it during the last completed
        # epoch: the owner map a ring-decoded restore reads with.
        self._ring_owner: Optional[Dict[str, int]] = None
        self._plane_polls = 0
        self._plane_wait_s = 0.0
        self._bytes_per_epoch = 0
        self._probe_epoch = 0

    # -- fault binding ------------------------------------------------------

    def _bind_faults(
        self, faults: Optional[Sequence[Any]]
    ) -> Dict[int, Tuple[ShardFault, ...]]:
        specs: Dict[int, List[ShardFault]] = {i: [] for i in range(self.shards)}
        if faults is not None:
            for entry in faults:
                parsed = _parse_fault_entry(entry)
                if parsed is None:
                    raise FaultPlanError(
                        f"malformed shard fault spec {entry!r} "
                        f"(want 'shard:epoch[:mode]', mode in "
                        f"{SHARD_REVOKE_MODES})"
                    )
                shard, fault = parsed
                if not 0 <= shard < self.shards:
                    raise FaultPlanError(
                        f"shard fault {entry!r}: shard {shard} out of range "
                        f"for a {self.shards}-shard run"
                    )
                specs[shard].append(fault)
        else:
            for tok in os.environ.get(_FAULT_ENV, "").split(","):
                parsed = _parse_fault_entry(tok.strip())
                if parsed is None:
                    continue
                shard, fault = parsed
                if 0 <= shard < self.shards:
                    specs[shard].append(fault)
        return {shard: tuple(fl) for shard, fl in specs.items()}

    # -- task construction --------------------------------------------------

    def _task(
        self, shard: int,
        restore: Optional[Mapping[str, ClusterCheckpoint]] = None,
        resume_epoch: int = 0,
    ) -> ShardTask:
        return ShardTask(
            shard=shard,
            clusters=tuple(self._owned[shard]),
            principals=tuple(self.world.principals),
            seed=self.world.seed,
            window=self.world.window,
            n_windows=self.world.n_windows,
            conservative=dict(self._conservative),
            faults=tuple(self._faults.get(shard, ())),
            restore=dict(restore or {}),
            plane=self._plane.spec if self._plane is not None else None,
            resume_epoch=int(resume_epoch),
        )

    # -- reduction / policy -------------------------------------------------

    def _reduce(self, leaves: Dict[str, VectorAggregate]) -> VectorAggregate:
        """Fold per-cluster aggregates in combining-tree order."""

        def fold(node: Any) -> VectorAggregate:
            agg = leaves[node].copy()
            for child in self._tree.children(node):
                agg = agg.merge(fold(child))
            return agg

        return fold(self._tree.root)

    def _policy(self, merged: VectorAggregate) -> Dict[str, float]:
        """Window LP on the merged demand -> served fraction per principal."""
        demand = {p: merged.get(p, 0.0) for p in self.allocator.principals}
        alloc = self.allocator.compute(demand)
        frac: Dict[str, float] = {}
        for p in self.allocator.principals:
            g = alloc.global_estimate.get(p, 0.0)
            frac[p] = min(1.0, alloc.quotas[p] / g) if g > 1e-9 else 0.0
        return frac

    # -- the run ------------------------------------------------------------

    def run(self) -> ShardedResult:
        world = self.world
        n_windows = world.n_windows
        names = [c.name for c in world.clusters]
        self._dh = {n: {p: np.zeros(n_windows) for p in world.principals}
                    for n in names}
        self._ah = {n: {p: np.zeros(n_windows) for p in world.principals}
                    for n in names}
        self._rh = {n: {p: np.zeros(n_windows) for p in world.principals}
                    for n in names}
        frac_hist = {p: np.full(n_windows, -1.0) for p in world.principals}
        gdemand = {p: np.zeros(n_windows) for p in world.principals}
        fallback_windows = 0
        frac: Optional[Dict[str, float]] = None
        self._owned = {i: list(p) for i, p in enumerate(self._partitions)}
        self._faults = {s: list(fl) for s, fl in self._fault_specs.items()}
        self._epoch_attempts = {}
        self._store = CheckpointStore(retain=self.checkpoint_retain,
                                      spill_path=self.checkpoint_spill)
        self.restarts = []
        self.reassignments = []
        barrier_polls = 0
        barrier_wait_s = 0.0
        self._plane = None
        self.transport_fallback = None
        self._ring_owner = None
        self._plane_polls = 0
        self._plane_wait_s = 0.0
        self._bytes_per_epoch = 0
        # Probe pipe-plane bytes on a steady-state epoch (epoch 0's
        # allocation is None, so it under-counts).
        self._probe_epoch = min(1, n_windows - 1)

        def policy_step(
            k: int, records: Dict[str, ClusterRecord]
        ) -> Dict[str, float]:
            merged = self._reduce({n: rec[0] for n, rec in records.items()})
            for p in world.principals:
                gdemand[p][k] = merged.get(p, 0.0)
            return self._policy(merged)

        if self.shards == 1:
            state = ShardState(self._task(0))
            for k in range(n_windows):
                if frac is None:
                    fallback_windows += 1
                else:
                    for p in world.principals:
                        frac_hist[p][k] = frac[p]
                records = state.step(k, frac)
                self._ingest(k, records)
                frac = policy_step(k, records)
            final = state.checkpoints()
        else:
            # fork inherits the imported modules cheaply; spawn works the
            # same because workers rebuild everything from the pickled
            # task.  Chosen before plane creation: spawn workers get their
            # own resource tracker and must unregister on attach.
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            self._mp_method = method
            if self.transport == "shm":
                try:
                    self._plane = ShmDataPlane.create(
                        sorted(names), world.principals, self.shards,
                        depth=max(2, self.checkpoint_retain),
                        unregister_on_attach=(method != "fork"),
                    )
                except ShmUnavailable as exc:
                    self.transport_fallback = str(exc)
                    _LOG.warning(
                        "shm data plane unavailable, falling back to the "
                        "pipe plane: %s", exc,
                    )
            barrier = self._start_workers()
            try:
                for k in range(n_windows):
                    if frac is None:
                        fallback_windows += 1
                    else:
                        for p in world.principals:
                            frac_hist[p][k] = frac[p]
                    if self._plane is not None:
                        records = self._epoch_shm(barrier, k, frac)
                        self._ring_owner = {c.name: s
                                            for s, cl in self._owned.items()
                                            for c in cl}
                        if self.checkpoint_spill:
                            # Documented expensive audit path: decode the
                            # ring so the spill mirror stays complete.
                            self._store.put(k, self._plane.read_checkpoints(
                                k, self._ring_owner))
                    else:
                        records, ckpts = self._epoch(barrier, k, frac)
                        self._store.put(k, ckpts)
                    self._ingest(k, records)
                    frac = policy_step(k, records)
                for shard in barrier.active:
                    try:
                        barrier.send(shard, FinishMessage(n_windows))
                    except ShardWorkerError:
                        pass   # the horizon is reached; a late death is moot
                if self._plane is not None:
                    assert self._ring_owner is not None
                    final = self._plane.read_checkpoints(n_windows - 1,
                                                         self._ring_owner)
                else:
                    latest = self._store.latest()
                    assert latest is not None
                    final = latest[1]
            finally:
                barrier_polls = barrier.polls
                barrier_wait_s = barrier.poll_wait_s
                barrier.close(terminate=True)
                if self._plane is not None:
                    self._plane.close()
                    self._plane.unlink()

        return ShardedResult(
            world=world,
            shards=self.shards,
            window=world.window,
            n_windows=n_windows,
            principals=tuple(world.principals),
            clusters=tuple(sorted(names)),
            demand=self._dh,
            admitted=self._ah,
            refused=self._rh,
            response={n: ck.response for n, ck in final.items()},
            clock={n: ck.clock for n, ck in final.items()},
            global_demand=gdemand,
            frac=frac_hist,
            lp_solves=self.allocator.lp_solves,
            cache_hits=self.allocator.cache_hits,
            fallback_windows=fallback_windows,
            restarts=list(self.restarts),
            reassignments=list(self.reassignments),
            final_checkpoint_digest=epoch_digest(final),
            checkpoint_bytes=self._store.bytes_retained,
            barrier_polls=barrier_polls,
            barrier_wait_s=barrier_wait_s,
            data_plane=("inline" if self.shards == 1
                        else "shm" if self._plane is not None else "pipe"),
            transport_fallback=self.transport_fallback,
            bytes_per_epoch=(self._plane.boundary_bytes_per_epoch
                             if self._plane is not None
                             else self._bytes_per_epoch),
            ring_bytes_per_epoch=(self._plane.ring_bytes_per_epoch
                                  if self._plane is not None else 0),
            plane_polls=self._plane_polls,
            plane_wait_s=self._plane_wait_s,
        )

    def _ingest(self, k: int, records: Dict[str, ClusterRecord]) -> None:
        """Fold one window's records into the parent-owned history arrays.

        ``refused = demand - admitted`` is exact: both are small-integer
        counts represented as float64, so the difference is the same float
        the worker-side subtraction used to produce.
        """
        for name, (agg, admitted) in records.items():
            for p in self.world.principals:
                d = agg.get(p, 0.0)
                a = float(admitted.get(p, 0.0))
                self._dh[name][p][k] = d
                self._ah[name][p][k] = a
                self._rh[name][p][k] = d - a

    # -- sharded epoch protocol (with recovery) -----------------------------

    def _epoch(
        self, barrier: EpochBarrier, k: int, frac: Optional[Dict[str, float]]
    ) -> Tuple[Dict[str, ClusterRecord], Dict[str, ClusterCheckpoint]]:
        """Run window ``k`` across the workers; heal failures as they surface."""
        send_failures: List[ShardWorkerError] = []
        probe = (k == self._probe_epoch)
        self._expected = {}
        for shard in barrier.active:
            self._expected[shard] = 1
            msg_out = AllocationMessage(k, frac)
            if probe:
                # One-time pipe-plane cost probe on a steady-state epoch:
                # what actually crosses per epoch, pickled.
                self._bytes_per_epoch += len(
                    pickle.dumps(msg_out, pickle.HIGHEST_PROTOCOL))
            try:
                barrier.send(shard, msg_out)
            except ShardWorkerError as err:
                send_failures.append(err)
        for err in send_failures:
            self._handle_failure(barrier, err.shard, k, frac, err)
        records: Dict[str, ClusterRecord] = {}
        ckpts: Dict[str, ClusterCheckpoint] = {}
        while True:
            pending = [s for s in sorted(self._expected) if self._expected[s] > 0]
            if not pending:
                break
            shard = pending[0]
            try:
                msg = barrier.recv(shard, k, BoundaryMessage)
            except ShardWorkerError as err:
                self._handle_failure(barrier, shard, k, frac, err)
                continue
            self._expected[shard] -= 1
            if probe:
                self._bytes_per_epoch += len(
                    pickle.dumps(msg, pickle.HIGHEST_PROTOCOL))
            for name, agg in msg.demand.items():
                records[name] = (agg, dict(msg.admitted.get(name, {})))
            ckpts.update(msg.checkpoints)
        missing = [n for n in (c.name for c in self.world.clusters)
                   if n not in records]
        if missing:
            raise ShardWorkerError(
                -1, f"epoch {k} completed without records for {missing}"
            )
        return records, ckpts

    # Parent-side seqlock poll backoff (shm plane): each poll is a couple
    # of numpy scalar reads, so the floor can sit well under the pipe
    # plane's 1 ms syscall floor without burning a core.
    _PARENT_POLL_FLOOR = 0.00005
    _PARENT_POLL_CAP = 0.002

    def _epoch_shm(
        self, barrier: EpochBarrier, k: int, frac: Optional[Dict[str, float]]
    ) -> Dict[str, ClusterRecord]:
        """Window ``k`` over the shared-memory plane; heal failures inline.

        The allocation is seqlock-published once (replacing per-shard
        pipe sends); the gather loop then polls every pending shard's
        slot, folding rows the moment they publish, and interleaves
        non-blocking pipe checks so worker death (or an adoption reply)
        surfaces between slot polls.  ``self._expected`` counts pending
        pipe-borne adoption replies, exactly as in the pipe plane.
        """
        plane = self._plane
        assert plane is not None
        plane.write_allocation(k, frac)
        self._expected = {}
        need: Set[int] = {s for s in barrier.active if self._owned[s]}
        records: Dict[str, ClusterRecord] = {}
        principals = self.world.principals
        deadline = monotonic() + self.epoch_timeout  # simlint: disable=SIM001
        wait = 0.0
        while need or any(v > 0 for v in self._expected.values()):
            if wait > 0.0:
                time.sleep(wait)
                self._plane_wait_s += wait
            progress = False
            for shard in sorted(need):
                names = [c.name for c in self._owned[shard]]
                self._plane_polls += 1
                rows = None
                failure: Optional[ShardWorkerError] = None
                try:
                    rows = plane.try_read_boundary(shard, k, names)
                    if rows is None:
                        # Quiet slot: give death/typed failure a chance to
                        # surface instead of spinning until the deadline.
                        stray = barrier.poll_control(shard)
                        if stray is not None:
                            failure = ShardWorkerError(
                                shard,
                                f"unexpected {type(stray).__name__} during "
                                f"epoch {k}",
                            )
                except ShardWorkerError as err:
                    failure = err
                if failure is not None:
                    self._handle_failure(barrier, shard, k, frac, failure)
                    if (barrier.connections[shard] is None
                            or not self._owned[shard]):
                        need.discard(shard)   # reassigned away
                    progress = True
                    continue
                if rows is not None:
                    for name, (dvec, avec) in rows.items():
                        records[name] = (
                            VectorAggregate.from_columns(principals, dvec),
                            {p: float(v) for p, v in zip(principals, avec)},
                        )
                    need.discard(shard)
                    progress = True
            for shard in [s for s in sorted(self._expected)
                          if self._expected[s] > 0]:
                try:
                    msg = barrier.try_recv(shard, k, BoundaryMessage)
                except ShardWorkerError as err:
                    self._handle_failure(barrier, shard, k, frac, err)
                    if (barrier.connections[shard] is not None
                            and self._owned[shard]):
                        # The respawned survivor replays *all* its clusters
                        # (own + adopted) and publishes them via the plane;
                        # no pipe reply is coming any more.
                        self._expected[shard] = 0
                        need.add(shard)
                    progress = True
                    continue
                if msg is not None:
                    self._expected[shard] -= 1
                    for name, agg in msg.demand.items():
                        records[name] = (agg, dict(msg.admitted.get(name, {})))
                    progress = True
            if progress:
                deadline = monotonic() + self.epoch_timeout  # simlint: disable=SIM001
                wait = 0.0
            else:
                if monotonic() > deadline:  # simlint: disable=SIM001
                    pending = sorted(need) + [
                        s for s in sorted(self._expected)
                        if self._expected[s] > 0
                    ]
                    raise ShardWorkerError(
                        pending[0] if pending else -1,
                        f"no boundary publication for epoch {k} within "
                        f"{self.epoch_timeout:.0f}s (hang?)",
                    )
                wait = min(max(wait * 2.0, self._PARENT_POLL_FLOOR),
                           self._PARENT_POLL_CAP)
        missing = [n for n in (c.name for c in self.world.clusters)
                   if n not in records]
        if missing:
            raise ShardWorkerError(
                -1, f"epoch {k} completed without records for {missing}"
            )
        return records

    def _restore_snapshot(
        self, k: int
    ) -> Tuple[int, Dict[str, ClusterCheckpoint]]:
        """(restored_epoch, full snapshot) a recovery at epoch ``k`` uses.

        Pipe plane: the checkpoint store's newest retained epoch (always
        ``k-1`` during epoch ``k``).  Shm plane: decode epoch ``k-1`` from
        the ring via the owner map of the last completed epoch — the
        deferred-digest path, paid only on recovery.
        """
        if self._plane is not None:
            if k == 0 or self._ring_owner is None:
                return -1, {}
            return k - 1, self._plane.read_checkpoints(k - 1, self._ring_owner)
        latest = self._store.latest()
        return latest if latest is not None else (-1, {})

    def _restored_digest(self, restored_epoch: int,
                         snap: Dict[str, ClusterCheckpoint]) -> str:
        """Audit digest of the state a recovery restored from (lazy)."""
        if restored_epoch < 0:
            return ""
        if self._plane is None:
            return self._store.digest(restored_epoch)
        return epoch_digest(snap)

    def _handle_failure(
        self, barrier: EpochBarrier, shard: int, k: int,
        frac: Optional[Dict[str, float]], err: ShardWorkerError,
    ) -> None:
        policy = self.recovery
        if policy is None:
            raise err
        attempt = self._epoch_attempts.get((shard, k), 0)
        if (len(self.restarts) < policy.max_restarts
                and attempt < policy.per_epoch_retries):
            self._respawn(barrier, shard, k, frac, err, attempt)
        elif policy.reassign_on_exhaustion:
            self._reassign(barrier, shard, k, frac, err)
        else:
            raise err

    def _respawn(
        self, barrier: EpochBarrier, shard: int, k: int,
        frac: Optional[Dict[str, float]], err: ShardWorkerError, attempt: int,
    ) -> None:
        """Respawn a dead shard from the last checkpoint and replay window k."""
        time.sleep(self.recovery.backoff(attempt))
        self._epoch_attempts[(shard, k)] = attempt + 1
        restored_epoch, snap = self._restore_snapshot(k)
        owned = {c.name for c in self._owned[shard]}
        restore = {n: ck for n, ck in snap.items() if n in owned}
        # Faults at or before k have fired (that is usually why we are
        # here); shipping them again would crash-loop the replacement.
        self._faults[shard] = [
            f for f in self._faults.get(shard, []) if f.epoch > k
        ]
        conn, proc = self._spawn(self._task(shard, restore=restore,
                                            resume_epoch=k))
        barrier.replace(shard, conn, proc)
        if self._plane is None:
            barrier.send(shard, AllocationMessage(k, frac))
        # (shm plane: the control block already shows epoch k; the
        # respawned worker resumes there without any pipe traffic.)
        self.restarts.append(ShardRestart(
            epoch=k, shard=shard, attempt=attempt + 1,
            restored_epoch=restored_epoch,
            restored_digest=self._restored_digest(restored_epoch, snap),
            detail=err.detail,
        ))
        _LOG.warning(
            "shard %d respawned at epoch %d (attempt %d, restored from "
            "epoch %d): %s", shard, k, attempt + 1, restored_epoch, err.detail,
        )

    def _reassign(
        self, barrier: EpochBarrier, shard: int, k: int,
        frac: Optional[Dict[str, float]], err: ShardWorkerError,
    ) -> None:
        """Restart budget exhausted: survivors adopt the dead shard's clusters."""
        barrier.deactivate(shard)
        self._expected.pop(shard, None)
        survivors = barrier.active
        if not survivors:
            raise ShardWorkerError(
                shard,
                f"restart budget exhausted with no surviving shards "
                f"({err.detail})",
            )
        _, snap = self._restore_snapshot(k)
        specs = sorted(self._owned[shard], key=lambda c: c.name)
        assignments = {
            spec.name: survivors[i % len(survivors)]
            for i, spec in enumerate(specs)
        }
        for target in sorted(set(assignments.values())):
            tspecs = tuple(s for s in specs if assignments[s.name] == target)
            barrier.send(target, ReassignMessage(
                epoch=k,
                clusters=tspecs,
                checkpoints={s.name: snap[s.name] for s in tspecs
                             if s.name in snap},
                frac=frac,
            ))
            self._expected[target] = self._expected.get(target, 0) + 1
            self._owned[target].extend(tspecs)
        self._owned[shard] = []
        event = ShardReassignment(
            epoch=k, shard=shard, assignments=assignments, detail=err.detail,
        )
        self.reassignments.append(event)
        _LOG.warning(
            "shard %d retired at epoch %d; clusters reassigned to survivors "
            "%s: %s", shard, k, assignments, err.detail,
        )

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, task: ShardTask) -> Tuple[Any, Any]:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main, args=(child, task), daemon=True,
        )
        proc.start()
        child.close()
        return parent, proc

    def _start_workers(self) -> EpochBarrier:
        method = getattr(self, "_mp_method", None) or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._ctx = mp.get_context(method)
        conns, procs = [], []
        for shard in range(self.shards):
            conn, proc = self._spawn(self._task(shard))
            conns.append(conn)
            procs.append(proc)
        return EpochBarrier(conns, procs, timeout=self.epoch_timeout)


# ---------------------------------------------------------------------------
# World builders (fig6/fig9-shaped, with replica and load knobs)
# ---------------------------------------------------------------------------


def sharded_fig6_world(
    duration_scale: float = 1.0,
    seed: int = 0,
    replicas: int = 1,
    load_scale: float = 1.0,
) -> ShardedWorld:
    """The fig6 world for the sharded lane: V=320·R·s; A [0.2,1] with two
    135·s req/s clients per R1 cluster, B [0.8,1] with one per R2 cluster.

    ``replicas`` stamps out R independent (R1, R2) cluster pairs against a
    proportionally larger server principal — the fixed per-cluster-load
    scaling axis the shard bench sweeps; ``load_scale`` multiplies every
    client rate and capacity together, holding the LP's shape constant.
    """
    T = 100.0 * duration_scale
    a_windows = ((0.0, 3 * T),)
    b_windows = ((0.0, T), (2 * T, 3 * T))
    clusters: List[ShardCluster] = []
    for i in range(replicas):
        tag = f"[{i}]" if replicas > 1 else ""
        clusters.append(ShardCluster(
            name=f"R1{tag}",
            clients=(
                ShardClient(f"C1{tag}", "A", 135.0 * load_scale, a_windows),
                ShardClient(f"C2{tag}", "A", 135.0 * load_scale, a_windows),
            ),
            capacity=320.0 * load_scale,
        ))
        clusters.append(ShardCluster(
            name=f"R2{tag}",
            clients=(
                ShardClient(f"C3{tag}", "B", 135.0 * load_scale, b_windows),
            ),
            capacity=320.0 * load_scale,
        ))
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0 * replicas * load_scale)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return ShardedWorld(
        name="fig6",
        clusters=tuple(clusters),
        principals=("A", "B"),
        duration=3 * T,
        seed=seed,
        graph=g,
    )


def sharded_fig9_world(
    duration_scale: float = 1.0,
    seed: int = 0,
    replicas: int = 1,
    load_scale: float = 1.0,
) -> ShardedWorld:
    """The fig9 world: A and B each own 320·R·s req/s; B grants A [0.5,0.5];
    per replica one switch cluster with the paper's three 400·s clients."""
    T = 100.0 * duration_scale
    clusters: List[ShardCluster] = []
    for i in range(replicas):
        tag = f"[{i}]" if replicas > 1 else ""
        clusters.append(ShardCluster(
            name=f"SW{tag}",
            clients=(
                ShardClient(f"C1{tag}", "A", 400.0 * load_scale,
                            ((0.0, T), (2 * T, 3 * T))),
                ShardClient(f"C2{tag}", "A", 400.0 * load_scale, ((0.0, T),)),
                ShardClient(f"C3{tag}", "B", 400.0 * load_scale, ((0.0, 4 * T),)),
            ),
            capacity=640.0 * load_scale,
        ))
    g = AgreementGraph()
    g.add_principal("A", capacity=320.0 * replicas * load_scale)
    g.add_principal("B", capacity=320.0 * replicas * load_scale)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))
    return ShardedWorld(
        name="fig9",
        clusters=tuple(clusters),
        principals=("A", "B"),
        duration=4 * T,
        seed=seed,
        graph=g,
    )


SHARDED_WORLDS = {
    "fig6": sharded_fig6_world,
    "fig9": sharded_fig9_world,
}


def run_sharded(
    figure: str = "fig6",
    duration_scale: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    replicas: int = 1,
    load_scale: float = 1.0,
    lp_cache: bool = True,
    backend: str = "auto",
    epoch_timeout: float = 120.0,
    recovery: Optional[RecoveryPolicy] = RecoveryPolicy(),
    checkpoint_retain: int = 2,
    checkpoint_spill: Optional[str] = None,
    faults: Optional[Sequence[Any]] = None,
    transport: str = "shm",
) -> ShardedResult:
    """Build a named sharded world and run it with R shards."""
    try:
        build = SHARDED_WORLDS[figure]
    except KeyError:
        raise ValueError(
            f"sharded lane supports {sorted(SHARDED_WORLDS)}, not {figure!r}"
        ) from None
    world = build(duration_scale=duration_scale, seed=seed,
                  replicas=replicas, load_scale=load_scale)
    runner = ShardedRunner(world, shards=shards, lp_cache=lp_cache,
                           backend=backend, epoch_timeout=epoch_timeout,
                           recovery=recovery,
                           checkpoint_retain=checkpoint_retain,
                           checkpoint_spill=checkpoint_spill,
                           faults=faults, transport=transport)
    return runner.run()


def run_sharded_figure(
    figure: str,
    duration_scale: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    lp_cache: bool = True,
    transport: str = "shm",
    **_ignored: Any,
) -> FigureResult:
    """Run fig6/fig9 on the sharded lane, returning a FigureResult.

    The phase expectations are the event-lane ones: the sharded lane is a
    different execution model over the same LP and the same offered load,
    so the paper's phase rates must still come out.
    """
    res = run_sharded(figure, duration_scale=duration_scale, seed=seed,
                      shards=shards, lp_cache=lp_cache, transport=transport)
    T = 100.0 * duration_scale
    settle = min(5.0, T * 0.2)
    if figure == "fig6":
        phases = [("phase1", 0.0, T), ("phase2", T, 2 * T),
                  ("phase3", 2 * T, 3 * T)]
        expected = [
            PhaseExpectation("phase1", {"A": 185.0, "B": 135.0}),
            PhaseExpectation("phase2", {"A": 270.0, "B": 0.0}),
            PhaseExpectation("phase3", {"A": 185.0, "B": 135.0}),
        ]
        title = "L7: agreements respected (sharded lane)"
    else:
        phases = [("phase1", 0.0, T), ("phase2", T, 2 * T),
                  ("phase3", 2 * T, 3 * T), ("phase4", 3 * T, 4 * T)]
        expected = [
            PhaseExpectation("phase1", {"A": 480.0, "B": 160.0}),
            PhaseExpectation("phase2", {"A": 0.0, "B": 320.0}),
            PhaseExpectation("phase3", {"A": 400.0, "B": 240.0}),
            PhaseExpectation("phase4", {"A": 0.0, "B": 320.0}),
        ]
        title = "L4: agreements respected (sharded lane)"
    return FigureResult(
        figure=figure,
        title=title,
        phases=res.phase_rates(phases, keys=["A", "B"], settle=settle),
        expected=expected,
        series=res.series(["A", "B"]),
        notes=f"sharded lane: shards={res.shards}, "
              f"data plane {res.data_plane}, "
              f"{res.n_windows} window epochs, "
              f"{res.lp_solves} LP solves ({res.cache_hits} cache hits), "
              f"{len(res.restarts)} restarts, "
              f"{len(res.reassignments)} reassignments",
    )
