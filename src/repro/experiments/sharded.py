"""Sharded single-scenario execution: one world across many cores.

`experiments/parallel.py` parallelises *across* experiments; this module
parallelises *within* one: a :class:`ShardedRunner` partitions a world's
clusters into R shards, runs each shard in its own worker process, and
synchronises only at window boundaries — the paper's own decomposition.
Clusters are independent within a 100 ms scheduling window (§3.2): they
exchange state exclusively through the combining tree at window edges,
2(n-1) messages per round.  The runner makes each window a conservative
barrier epoch:

1. the parent broadcasts the window-k allocation policy (the globally
   consistent served fraction per principal, from the LP on window k-1's
   merged demand; window 0 uses the conservative 1/R fallback),
2. every worker simulates its clusters through window k to completion and
   ships one :class:`~repro.coordination.barrier.BoundaryMessage` carrying
   a per-cluster :class:`~repro.coordination.aggregation.VectorAggregate`
   of demand,
3. the parent folds the per-cluster aggregates through the existing
   :class:`~repro.coordination.tree.CombiningTree` reduction (balanced
   tree over *sorted cluster names*, so float-sum order never depends on
   how clusters were packed into shards), solves the window LP via the
   shared :class:`~repro.scheduling.allocator.WindowAllocator` (reusing
   its SolveCache), and releases everyone into window k+1.

Determinism is by construction, not by luck: every cluster owns the RNG
substream ``cluster:<name>`` (PR 4's ``link:<src>-><dst>`` pattern
generalised) and consumes it in fixed (window, client) order; no other
state crosses the boundary.  ``shards=1`` runs the identical per-cluster
math inline, so ``shards=1`` and ``shards=8`` produce bit-identical
SHA-256 digests — enforced by ``repro check --shards`` exactly like the
three-way lane digest.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing as mp
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.coordination.aggregation import StreamStats, VectorAggregate
from repro.coordination.barrier import (
    AllocationMessage,
    BoundaryMessage,
    EpochBarrier,
    FinishMessage,
    WorkerFailure,
)
from repro.coordination.tree import CombiningTree
from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import FigureResult, PhaseExpectation
from repro.scheduling.allocator import WindowAllocator
from repro.scheduling.window import WindowConfig
from repro.sim.monitor import PhaseStats
from repro.sim.rng import RngStreams

__all__ = [
    "ShardClient",
    "ShardCluster",
    "ShardedWorld",
    "ShardedResult",
    "ShardedRunner",
    "sharded_fig6_world",
    "sharded_fig9_world",
    "SHARDED_WORLDS",
    "run_sharded",
    "run_sharded_figure",
]

# Deterministic crash hook for tests: "<shard>:<epoch>" makes that worker
# hard-exit at the start of that epoch (validating the barrier's typed
# failure path without monkey-patching across process boundaries).
_FAULT_ENV = "REPRO_SHARD_FAULT"


# ---------------------------------------------------------------------------
# World declaration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardClient:
    """Open-loop Poisson source bound to one cluster.

    ``windows`` lists (start, end) activity intervals in seconds; ``None``
    means always active.  Arrival counts per scheduling window are Poisson
    with mean ``rate × overlap(window, activity)``, drawn from the owning
    cluster's substream in declaration order.
    """

    name: str
    principal: str
    rate: float
    windows: Optional[Tuple[Tuple[float, float], ...]] = None

    def overlap(self, t0: float, t1: float) -> float:
        """Active seconds inside [t0, t1)."""
        if self.windows is None:
            return t1 - t0
        total = 0.0
        for a, b in self.windows:
            total += max(0.0, min(b, t1) - max(a, t0))
        return total


@dataclass(frozen=True)
class ShardCluster:
    """One cluster: a redirector's worth of clients plus a local server.

    ``capacity`` (req/s) drives the response-time observer — a constant-
    service Lindley recursion over the cluster's admitted requests.  It
    does not gate admission; quotas do.
    """

    name: str
    clients: Tuple[ShardClient, ...]
    capacity: float


@dataclass(frozen=True)
class ShardedWorld:
    """A full declarative scenario for the sharded lane.

    The agreement ``graph`` lives parent-side only (it feeds the window
    LP); workers receive nothing but their own clusters and the static
    conservative split.
    """

    name: str
    clusters: Tuple[ShardCluster, ...]
    principals: Tuple[str, ...]
    duration: float
    seed: int = 0
    window: float = 0.1
    graph: AgreementGraph = field(default_factory=AgreementGraph, repr=False)

    @property
    def n_windows(self) -> int:
        return max(1, int(math.ceil(self.duration / self.window - 1e-9)))


# ---------------------------------------------------------------------------
# Worker-side state (identical for shards=1 inline and shards=R processes)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, shipped once at start (picklable).

    Workers rebuild all state from this task, so fork and spawn start
    methods are interchangeable; nothing is inherited from parent memory.
    """

    shard: int
    clusters: Tuple[ShardCluster, ...]
    principals: Tuple[str, ...]
    seed: int
    window: float
    n_windows: int
    # Conservative per-principal mandatory share (requests/window) when no
    # global information exists: MC_w[p] / n_clusters, the allocator's 1/R
    # fallback with every cluster counted as a redirector.
    conservative: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardSummary:
    """Worker -> parent terminal message: the full per-cluster record."""

    epoch: int
    shard: int
    # cluster -> principal -> per-window float64 arrays
    demand: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    admitted: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    refused: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    response: Dict[str, StreamStats] = field(default_factory=dict)
    clock: Dict[str, float] = field(default_factory=dict)


class _ClusterState:
    """One cluster's private simulation state.

    Self-contained: its arrays depend only on (its substream, the broadcast
    fraction sequence), never on which shard runs it or which clusters
    share its worker — the invariant the digest-parity contract rests on.
    """

    def __init__(self, spec: ShardCluster, task: ShardTask,
                 streams: RngStreams) -> None:
        self.spec = spec
        self.principals = task.principals
        self.window = task.window
        self.rng = streams.get(f"cluster:{spec.name}")
        n = task.n_windows
        self.demand = {p: np.zeros(n) for p in task.principals}
        self.admitted = {p: np.zeros(n) for p in task.principals}
        self.refused = {p: np.zeros(n) for p in task.principals}
        # Residual-carry admission: fractional quota left over while
        # quota-limited rolls into the next window (no banking of unused
        # quota), so long-run admitted rate tracks quota exactly.
        self.carry = {p: 0.0 for p in task.principals}
        self.response = StreamStats()
        self.clock = 0.0           # server-free time for the Lindley observer
        self.svc = 1.0 / spec.capacity

    def step(self, k: int, frac: Optional[Dict[str, float]],
             conservative: Mapping[str, float]) -> VectorAggregate:
        """Simulate window k; returns this cluster's demand aggregate."""
        w = self.window
        t0, t1 = k * w, (k + 1) * w
        demand = {p: 0 for p in self.principals}
        for client in self.spec.clients:
            active = client.overlap(t0, t1)
            if active > 0.0:
                demand[client.principal] += int(
                    self.rng.poisson(client.rate * active)
                )
        total_adm = 0
        for p in self.principals:
            d = demand[p]
            self.demand[p][k] = d
            if frac is not None:
                quota = frac.get(p, 0.0) * d
            else:
                quota = min(float(d), conservative.get(p, 0.0))
            budget = quota + self.carry[p]
            adm = min(d, int(budget))
            if adm < d:
                self.carry[p] = budget - adm
            else:
                self.carry[p] = 0.0
            self.admitted[p][k] = adm
            self.refused[p][k] = d - adm
            total_adm += adm
        if total_adm > 0:
            self._observe(t0, total_adm)
        return VectorAggregate.local(
            {p: float(demand[p]) for p in self.principals}
        )

    def _observe(self, t0: float, m: int) -> None:
        """Constant-service Lindley recursion over m in-window arrivals."""
        arr = t0 + np.sort(self.rng.uniform(0.0, self.window, size=m))
        svc = self.svc
        # finish_i = svc*(i+1) + max(clock, max_{j<=i}(arr_j - svc*j))
        slack = np.maximum.accumulate(arr - svc * np.arange(m))
        finish = svc * np.arange(1, m + 1) + np.maximum(slack, self.clock)
        resp = finish - arr
        self.clock = float(finish[-1])
        batch = StreamStats(
            count=m,
            mean=float(resp.mean()),
            m2=float(((resp - resp.mean()) ** 2).sum()),
            min=float(resp.min()),
            max=float(resp.max()),
        )
        self.response = self.response.merge(batch)


class ShardState:
    """All clusters owned by one worker, stepped window-by-window."""

    def __init__(self, task: ShardTask) -> None:
        self.task = task
        streams = RngStreams(task.seed)
        self.clusters = [
            _ClusterState(spec, task, streams) for spec in task.clusters
        ]

    def step(self, k: int,
             frac: Optional[Dict[str, float]]) -> Dict[str, VectorAggregate]:
        cons = self.task.conservative
        return {
            c.spec.name: c.step(k, frac, cons) for c in self.clusters
        }

    def summary(self) -> ShardSummary:
        return ShardSummary(
            epoch=self.task.n_windows,
            shard=self.task.shard,
            demand={c.spec.name: c.demand for c in self.clusters},
            admitted={c.spec.name: c.admitted for c in self.clusters},
            refused={c.spec.name: c.refused for c in self.clusters},
            response={c.spec.name: c.response for c in self.clusters},
            clock={c.spec.name: c.clock for c in self.clusters},
        )


def _shard_worker_main(conn: Any, task: ShardTask) -> None:
    """Worker process entry point: epoch loop until FinishMessage.

    Module-level (picklable under spawn); receives *all* state through
    ``task`` — never module globals (SIM007's worker contract).
    """
    fault = os.environ.get(_FAULT_ENV, "")
    try:
        state = ShardState(task)
        while True:
            msg = conn.recv()
            if isinstance(msg, FinishMessage):
                conn.send(state.summary())
                return
            if fault == f"{task.shard}:{msg.epoch}":
                os._exit(3)   # deterministic mid-window crash for tests
            demand = state.step(msg.epoch, msg.frac)
            conn.send(BoundaryMessage(msg.epoch, task.shard, demand))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return
    except Exception as exc:   # ship the failure; never leave a hang
        try:
            conn.send(WorkerFailure(task.shard, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Parent-side runner
# ---------------------------------------------------------------------------


@dataclass
class ShardedResult:
    """Everything observable from one sharded run.

    ``digest()`` covers every per-cluster series plus the parent-side
    policy trace; it deliberately omits the shard count, so equality
    between ``shards=1`` and ``shards=R`` *is* the parity proof.
    """

    world: ShardedWorld
    shards: int
    window: float
    n_windows: int
    principals: Tuple[str, ...]
    clusters: Tuple[str, ...]
    demand: Dict[str, Dict[str, np.ndarray]]
    admitted: Dict[str, Dict[str, np.ndarray]]
    refused: Dict[str, Dict[str, np.ndarray]]
    response: Dict[str, StreamStats]
    clock: Dict[str, float]
    global_demand: Dict[str, np.ndarray]
    frac: Dict[str, np.ndarray]     # -1.0 sentinel on conservative windows
    lp_solves: int = 0
    cache_hits: int = 0
    fallback_windows: int = 0

    # -- derived views ----------------------------------------------------

    def admitted_series(self, principal: str) -> Tuple[np.ndarray, np.ndarray]:
        """(window-centre times, admitted req/s) summed over clusters."""
        times = (np.arange(self.n_windows) + 0.5) * self.window
        total = np.zeros(self.n_windows)
        for name in self.clusters:
            total += self.admitted[name][principal]
        return times, total / self.window

    def series(self, keys: Sequence[str]) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        return {p: self.admitted_series(p) for p in keys}

    def phase_rates(
        self,
        phases: Sequence[Tuple[str, float, float]],
        keys: Optional[Sequence[str]] = None,
        settle: float = 0.0,
    ) -> List[PhaseStats]:
        """Mean admitted rate per principal over whole windows in a phase."""
        keys = list(keys) if keys is not None else list(self.principals)
        idx = np.arange(self.n_windows)
        w0, w1 = idx * self.window, (idx + 1) * self.window
        out: List[PhaseStats] = []
        for name, t0, t1 in phases:
            sel = (w0 >= t0 + settle - 1e-9) & (w1 <= t1 + 1e-9)
            span = float(sel.sum()) * self.window
            stats = PhaseStats(name=name, t0=t0, t1=t1)
            for p in keys:
                if span <= 0:
                    stats.rates[p] = 0.0
                    continue
                total = sum(
                    float(self.admitted[c][p][sel].sum()) for c in self.clusters
                )
                stats.rates[p] = total / span
            out.append(stats)
        return out

    def digest(self) -> str:
        """SHA-256 over exact float bytes of all observable state."""
        h = hashlib.sha256()

        def floats(values: Any) -> None:
            h.update(np.ascontiguousarray(
                np.asarray(values, dtype=float)).tobytes())

        for name in sorted(self.clusters):
            h.update(name.encode("utf-8"))
            for p in sorted(self.principals):
                h.update(p.encode("utf-8"))
                floats(self.demand[name][p])
                floats(self.admitted[name][p])
                floats(self.refused[name][p])
            st = self.response[name]
            h.update(str(st.count).encode("ascii"))
            floats([st.mean, st.m2])
            if st.count:
                floats([st.min, st.max])
            floats([self.clock[name]])
        for p in sorted(self.principals):
            h.update(p.encode("utf-8"))
            floats(self.global_demand[p])
            floats(self.frac[p])
        return h.hexdigest()


class ShardedRunner:
    """Partition a world's clusters into R shards and run to the horizon.

    ``shards=1`` steps the identical per-cluster state machines inline (no
    processes, no pickling) — the reference the digest-parity check holds
    every R against.  Partitioning is round-robin over *sorted* cluster
    names, so shard membership is a pure function of (world, R); results
    are a pure function of world alone.
    """

    def __init__(
        self,
        world: ShardedWorld,
        shards: int = 1,
        lp_cache: bool = True,
        backend: str = "auto",
        epoch_timeout: float = 120.0,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not world.clusters:
            raise ValueError("world has no clusters")
        self.world = world
        self.shards = min(int(shards), len(world.clusters))
        self.lp_cache = bool(lp_cache)
        self.backend = backend
        self.epoch_timeout = float(epoch_timeout)
        self.access = compute_access_levels(world.graph)
        self.window_cfg = WindowConfig(world.window)
        n_clusters = len(world.clusters)
        self.allocator = WindowAllocator(
            self.access, self.window_cfg, mode="community",
            n_redirectors=n_clusters, backend=backend, lp_cache=lp_cache,
        )
        w_levels = self.access.per_window(world.window)
        self._conservative = {
            p: float(w_levels.MC[self.access.index(p)]) / n_clusters
            for p in world.principals
        }
        ordered = sorted(world.clusters, key=lambda c: c.name)
        self._partitions: List[Tuple[ShardCluster, ...]] = [
            tuple(ordered[i::self.shards]) for i in range(self.shards)
        ]
        # Reduction order: balanced combining tree over sorted cluster
        # names — fixed fold order regardless of shard packing.
        self._tree = CombiningTree.balanced([c.name for c in ordered])

    def _task(self, shard: int) -> ShardTask:
        return ShardTask(
            shard=shard,
            clusters=self._partitions[shard],
            principals=tuple(self.world.principals),
            seed=self.world.seed,
            window=self.world.window,
            n_windows=self.world.n_windows,
            conservative=dict(self._conservative),
        )

    def _reduce(self, leaves: Dict[str, VectorAggregate]) -> VectorAggregate:
        """Fold per-cluster aggregates in combining-tree order."""

        def fold(node: Any) -> VectorAggregate:
            agg = leaves[node].copy()
            for child in self._tree.children(node):
                agg = agg.merge(fold(child))
            return agg

        return fold(self._tree.root)

    def _policy(self, merged: VectorAggregate) -> Dict[str, float]:
        """Window LP on the merged demand -> served fraction per principal."""
        demand = {p: merged.get(p, 0.0) for p in self.allocator.principals}
        alloc = self.allocator.compute(demand)
        frac: Dict[str, float] = {}
        for p in self.allocator.principals:
            g = alloc.global_estimate.get(p, 0.0)
            frac[p] = min(1.0, alloc.quotas[p] / g) if g > 1e-9 else 0.0
        return frac

    def run(self) -> ShardedResult:
        n_windows = self.world.n_windows
        frac_hist = {
            p: np.full(n_windows, -1.0) for p in self.world.principals
        }
        gdemand = {p: np.zeros(n_windows) for p in self.world.principals}
        fallback_windows = 0
        frac: Optional[Dict[str, float]] = None

        def policy_step(
            k: int, leaves: Dict[str, VectorAggregate]
        ) -> Dict[str, float]:
            merged = self._reduce(leaves)
            for p in self.world.principals:
                gdemand[p][k] = merged.get(p, 0.0)
            return self._policy(merged)

        if self.shards == 1:
            state = ShardState(self._task(0))
            step = state.step

            def finish() -> List[ShardSummary]:
                return [state.summary()]
        else:
            barrier = self._start_workers()
            step, finish = self._barrier_hooks(barrier)
        try:
            for k in range(n_windows):
                if frac is None:
                    fallback_windows += 1
                else:
                    for p in self.world.principals:
                        frac_hist[p][k] = frac[p]
                frac = policy_step(k, step(k, frac))
            summaries = finish()
        finally:
            if self.shards > 1:
                barrier.close(terminate=True)
        return self._assemble(summaries, gdemand, frac_hist, fallback_windows)

    def _start_workers(self) -> EpochBarrier:
        # fork inherits the imported modules cheaply; spawn works the same
        # because workers rebuild everything from the pickled task.
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        conns, procs = [], []
        for shard in range(self.shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child, self._task(shard)),
                daemon=True,
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        return EpochBarrier(conns, procs, timeout=self.epoch_timeout)

    def _barrier_hooks(self, barrier: EpochBarrier) -> Tuple[Any, Any]:
        """(step, finish) callables mirroring the inline ShardState API."""

        def step(
            k: int, frac: Optional[Dict[str, float]]
        ) -> Dict[str, VectorAggregate]:
            barrier.broadcast(AllocationMessage(k, frac))
            leaves: Dict[str, VectorAggregate] = {}
            for msg in barrier.gather(k, BoundaryMessage):
                leaves.update(msg.demand)
            return leaves

        def finish() -> List[ShardSummary]:
            n = self.world.n_windows
            barrier.broadcast(FinishMessage(n))
            return barrier.gather(n, ShardSummary)

        return step, finish

    def _assemble(
        self,
        summaries: List[ShardSummary],
        gdemand: Dict[str, np.ndarray],
        frac_hist: Dict[str, np.ndarray],
        fallback_windows: int,
    ) -> ShardedResult:
        demand: Dict[str, Dict[str, np.ndarray]] = {}
        admitted: Dict[str, Dict[str, np.ndarray]] = {}
        refused: Dict[str, Dict[str, np.ndarray]] = {}
        response: Dict[str, StreamStats] = {}
        clock: Dict[str, float] = {}
        for s in summaries:
            demand.update(s.demand)
            admitted.update(s.admitted)
            refused.update(s.refused)
            response.update(s.response)
            clock.update(s.clock)
        return ShardedResult(
            world=self.world,
            shards=self.shards,
            window=self.world.window,
            n_windows=self.world.n_windows,
            principals=tuple(self.world.principals),
            clusters=tuple(sorted(demand)),
            demand=demand,
            admitted=admitted,
            refused=refused,
            response=response,
            clock=clock,
            global_demand=gdemand,
            frac=frac_hist,
            lp_solves=self.allocator.lp_solves,
            cache_hits=self.allocator.cache_hits,
            fallback_windows=fallback_windows,
        )


# ---------------------------------------------------------------------------
# World builders (fig6/fig9-shaped, with replica and load knobs)
# ---------------------------------------------------------------------------


def sharded_fig6_world(
    duration_scale: float = 1.0,
    seed: int = 0,
    replicas: int = 1,
    load_scale: float = 1.0,
) -> ShardedWorld:
    """The fig6 world for the sharded lane: V=320·R·s; A [0.2,1] with two
    135·s req/s clients per R1 cluster, B [0.8,1] with one per R2 cluster.

    ``replicas`` stamps out R independent (R1, R2) cluster pairs against a
    proportionally larger server principal — the fixed per-cluster-load
    scaling axis the shard bench sweeps; ``load_scale`` multiplies every
    client rate and capacity together, holding the LP's shape constant.
    """
    T = 100.0 * duration_scale
    a_windows = ((0.0, 3 * T),)
    b_windows = ((0.0, T), (2 * T, 3 * T))
    clusters: List[ShardCluster] = []
    for i in range(replicas):
        tag = f"[{i}]" if replicas > 1 else ""
        clusters.append(ShardCluster(
            name=f"R1{tag}",
            clients=(
                ShardClient(f"C1{tag}", "A", 135.0 * load_scale, a_windows),
                ShardClient(f"C2{tag}", "A", 135.0 * load_scale, a_windows),
            ),
            capacity=320.0 * load_scale,
        ))
        clusters.append(ShardCluster(
            name=f"R2{tag}",
            clients=(
                ShardClient(f"C3{tag}", "B", 135.0 * load_scale, b_windows),
            ),
            capacity=320.0 * load_scale,
        ))
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0 * replicas * load_scale)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return ShardedWorld(
        name="fig6",
        clusters=tuple(clusters),
        principals=("A", "B"),
        duration=3 * T,
        seed=seed,
        graph=g,
    )


def sharded_fig9_world(
    duration_scale: float = 1.0,
    seed: int = 0,
    replicas: int = 1,
    load_scale: float = 1.0,
) -> ShardedWorld:
    """The fig9 world: A and B each own 320·R·s req/s; B grants A [0.5,0.5];
    per replica one switch cluster with the paper's three 400·s clients."""
    T = 100.0 * duration_scale
    clusters: List[ShardCluster] = []
    for i in range(replicas):
        tag = f"[{i}]" if replicas > 1 else ""
        clusters.append(ShardCluster(
            name=f"SW{tag}",
            clients=(
                ShardClient(f"C1{tag}", "A", 400.0 * load_scale,
                            ((0.0, T), (2 * T, 3 * T))),
                ShardClient(f"C2{tag}", "A", 400.0 * load_scale, ((0.0, T),)),
                ShardClient(f"C3{tag}", "B", 400.0 * load_scale, ((0.0, 4 * T),)),
            ),
            capacity=640.0 * load_scale,
        ))
    g = AgreementGraph()
    g.add_principal("A", capacity=320.0 * replicas * load_scale)
    g.add_principal("B", capacity=320.0 * replicas * load_scale)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))
    return ShardedWorld(
        name="fig9",
        clusters=tuple(clusters),
        principals=("A", "B"),
        duration=4 * T,
        seed=seed,
        graph=g,
    )


SHARDED_WORLDS = {
    "fig6": sharded_fig6_world,
    "fig9": sharded_fig9_world,
}


def run_sharded(
    figure: str = "fig6",
    duration_scale: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    replicas: int = 1,
    load_scale: float = 1.0,
    lp_cache: bool = True,
    backend: str = "auto",
    epoch_timeout: float = 120.0,
) -> ShardedResult:
    """Build a named sharded world and run it with R shards."""
    try:
        build = SHARDED_WORLDS[figure]
    except KeyError:
        raise ValueError(
            f"sharded lane supports {sorted(SHARDED_WORLDS)}, not {figure!r}"
        ) from None
    world = build(duration_scale=duration_scale, seed=seed,
                  replicas=replicas, load_scale=load_scale)
    runner = ShardedRunner(world, shards=shards, lp_cache=lp_cache,
                           backend=backend, epoch_timeout=epoch_timeout)
    return runner.run()


def run_sharded_figure(
    figure: str,
    duration_scale: float = 1.0,
    seed: int = 0,
    shards: int = 1,
    lp_cache: bool = True,
    **_ignored: Any,
) -> FigureResult:
    """Run fig6/fig9 on the sharded lane, returning a FigureResult.

    The phase expectations are the event-lane ones: the sharded lane is a
    different execution model over the same LP and the same offered load,
    so the paper's phase rates must still come out.
    """
    res = run_sharded(figure, duration_scale=duration_scale, seed=seed,
                      shards=shards, lp_cache=lp_cache)
    T = 100.0 * duration_scale
    settle = min(5.0, T * 0.2)
    if figure == "fig6":
        phases = [("phase1", 0.0, T), ("phase2", T, 2 * T),
                  ("phase3", 2 * T, 3 * T)]
        expected = [
            PhaseExpectation("phase1", {"A": 185.0, "B": 135.0}),
            PhaseExpectation("phase2", {"A": 270.0, "B": 0.0}),
            PhaseExpectation("phase3", {"A": 185.0, "B": 135.0}),
        ]
        title = "L7: agreements respected (sharded lane)"
    else:
        phases = [("phase1", 0.0, T), ("phase2", T, 2 * T),
                  ("phase3", 2 * T, 3 * T), ("phase4", 3 * T, 4 * T)]
        expected = [
            PhaseExpectation("phase1", {"A": 480.0, "B": 160.0}),
            PhaseExpectation("phase2", {"A": 0.0, "B": 320.0}),
            PhaseExpectation("phase3", {"A": 400.0, "B": 240.0}),
            PhaseExpectation("phase4", {"A": 0.0, "B": 320.0}),
        ]
        title = "L4: agreements respected (sharded lane)"
    return FigureResult(
        figure=figure,
        title=title,
        phases=res.phase_rates(phases, keys=["A", "B"], settle=settle),
        expected=expected,
        series=res.series(["A", "B"]),
        notes=f"sharded lane: shards={res.shards}, "
              f"{res.n_windows} window epochs, "
              f"{res.lp_solves} LP solves ({res.cache_hits} cache hits)",
    )
