"""Text rendering of experiment results (the tables in EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.experiments.figures import ALL_FIGURES, Fig1Result, Fig3Result
from repro.experiments.harness import FigureResult

__all__ = ["render_result", "render_all"]


def _render_figure(result: FigureResult) -> str:
    lines = [f"## {result.figure} — {result.title}", ""]
    lines.append("| phase | principal | measured (req/s) | paper | within tolerance |")
    lines.append("|---|---|---:|---:|---|")
    for phase, principal, got, want, ok in result.deviations():
        lines.append(
            f"| {phase} | {principal} | {got:.1f} | {want:.1f} | {'yes' if ok else 'NO'} |"
        )
    if result.notes:
        lines += ["", f"*{result.notes}*"]
    lines += ["", f"**shape reproduced: {'yes' if result.ok else 'NO'}**", ""]
    return "\n".join(lines)


def _render_fig1(result: Fig1Result) -> str:
    lines = [
        "## fig1 — motivating example: end-point vs coordinated enforcement", "",
        "| strategy | A (req/s) | B (req/s) | paper |",
        "|---|---:|---:|---|",
        f"| end-point (baseline) | {result.endpoint['A']:.1f} | "
        f"{result.endpoint['B']:.1f} | (30, 70) — SLA violated |",
        f"| coordinated | {result.coordinated['A']:.1f} | "
        f"{result.coordinated['B']:.1f} | (20, 80) — SLA respected |",
        "", f"**shape reproduced: {'yes' if result.ok else 'NO'}**", "",
    ]
    return "\n".join(lines)


def _render_fig3(result: Fig3Result) -> str:
    lines = [
        "## fig3 — ticket/currency valuation worked example", "",
        "| principal | final (mandatory, optional) | paper |",
        "|---|---|---|",
    ]
    for p, (m, o) in sorted(result.finals.items()):
        em, eo = result.expected_finals[p]
        lines.append(f"| {p} | ({m:.0f}, {o:.0f}) | ({em:.0f}, {eo:.0f}) |")
    lines += ["", "| ticket | real value | paper |", "|---|---:|---:|"]
    for t, v in result.tickets.items():
        lines.append(f"| {t} | {v:.0f} | {result.expected_tickets[t]:.0f} |")
    lines += ["", f"**reproduced exactly: {'yes' if result.ok else 'NO'}**", ""]
    return "\n".join(lines)


def render_result(result) -> str:
    """Render any figure result to markdown."""
    if isinstance(result, FigureResult):
        return _render_figure(result)
    if isinstance(result, Fig1Result):
        return _render_fig1(result)
    if isinstance(result, Fig3Result):
        return _render_fig3(result)
    raise TypeError(f"unknown result type {type(result)!r}")


def render_all(
    duration_scale: float = 1.0,
    figures: Iterable[str] = (
        "fig1", "fig1d", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
    ),
    seed: int = 0,
) -> str:
    """Run every requested figure and render one combined report."""
    parts: List[str] = ["# Experiment report (paper vs measured)", ""]
    for name in figures:
        fn: Callable = ALL_FIGURES[name]
        if name in ("fig1", "fig3"):
            result = fn()
        elif name == "fig1d":
            result = fn(duration=max(20.0, 100.0 * duration_scale), seed=seed)
            parts.append(
                "*(fig1d is Fig 1 as a full simulation: biased pass-through "
                "redirectors in front of independently enforcing servers, "
                "versus coordinated L7 redirectors — same demand, real "
                "clients and windows.)*\n"
            )
        else:
            result = fn(duration_scale=duration_scale, seed=seed)
        parts.append(render_result(result))
    return "\n".join(parts)
