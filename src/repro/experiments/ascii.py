"""Terminal plots for experiment series.

The paper's figures are rate-vs-time line charts; these helpers render the
same series in a terminal so `python -m repro figures --plot` and the
examples can show the *shape* (phase steps, transients) without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["sparkline", "timeseries_plot"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line unicode sparkline of a numeric series.

    >>> sparkline([0, 1, 2, 3, 2, 1, 0])
    ' ▃▅█▅▃ '
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo = float(arr.min() if lo is None else lo)
    hi = float(arr.max() if hi is None else hi)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[-1] * arr.size
    idx = np.clip(((arr - lo) / span) * (len(_BLOCKS) - 1), 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(i))] for i in idx)


def _resample(times: np.ndarray, values: np.ndarray, width: int) -> np.ndarray:
    """Average the series into ``width`` equal time buckets."""
    if times.size == 0:
        return np.zeros(width)
    t0, t1 = float(times.min()), float(times.max())
    if t1 <= t0:
        return np.full(width, float(values.mean()))
    edges = np.linspace(t0, t1 + 1e-9, width + 1)
    out = np.zeros(width)
    for i in range(width):
        mask = (times >= edges[i]) & (times < edges[i + 1])
        out[i] = values[mask].mean() if mask.any() else (out[i - 1] if i else 0.0)
    return out


def timeseries_plot(
    series: Mapping[str, Tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 12,
    title: str = "",
) -> str:
    """Multi-series rate-vs-time chart as text.

    Each series gets a distinct marker; rows are rate levels, columns are
    time buckets — the terminal twin of a paper figure.
    """
    markers = "*o+x#@%&"
    resampled: Dict[str, np.ndarray] = {}
    for name, (times, values) in series.items():
        resampled[name] = _resample(np.asarray(times, float),
                                    np.asarray(values, float), width)
    if not resampled:
        return "(no data)"
    hi = max(float(arr.max()) for arr in resampled.values())
    if hi <= 0:
        hi = 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, arr) in enumerate(resampled.items()):
        mark = markers[si % len(markers)]
        for col, v in enumerate(arr):
            row = height - 1 - int(min(v / hi, 1.0) * (height - 1))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        level = hi * (height - 1 - r) / (height - 1)
        lines.append(f"{level:8.1f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(resampled)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
