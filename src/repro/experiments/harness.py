"""Scenario builder: declaratively wire up a full paper-style experiment.

A :class:`Scenario` owns the simulation kernel, RNG streams, the completion
rate meter, and constructors for every component; :meth:`Scenario.run`
executes the timeline and :meth:`Scenario.phase_rates` produces the
per-phase service rates the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.invariants import InvariantChecker, check_enabled
from repro.cluster.client import ClientMachine
from repro.cluster.columnar import ColumnarClient, ColumnarEngine
from repro.cluster.server import Server
from repro.coordination.membership import ResilientTree
from repro.coordination.messages import MessageCounter
from repro.coordination.protocol import build_protocol
from repro.coordination.tree import CombiningTree
from repro.core.access import AccessLevels, compute_access_levels
from repro.core.agreements import AgreementGraph
from repro.l4.columnar import ColumnarL4Switch
from repro.l4.daemon import L4Daemon
from repro.l4.switch import L4Switch
from repro.l7.redirector import L7Redirector
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator
from repro.sim.monitor import PhaseStats, RateMeter, summarize_phases
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

__all__ = ["Scenario", "FigureResult", "PhaseExpectation"]


@dataclass
class PhaseExpectation:
    """Paper-reported rates for one phase, with a shape tolerance."""

    phase: str
    rates: Dict[str, float]
    tolerance: float = 0.15   # relative tolerance on non-zero rates
    abs_floor: float = 12.0   # absolute slack for (near-)zero expectations


@dataclass
class FigureResult:
    """Measured vs expected outcome for one paper figure."""

    figure: str
    title: str
    phases: List[PhaseStats]
    expected: List[PhaseExpectation]
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    notes: str = ""

    def phase(self, name: str) -> PhaseStats:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)

    def deviations(self) -> List[Tuple[str, str, float, float, bool]]:
        """(phase, principal, measured, expected, within_tolerance) rows."""
        out = []
        for exp in self.expected:
            try:
                measured = self.phase(exp.phase)
            except KeyError:
                continue
            for principal, want in exp.rates.items():
                got = measured.rate(principal)
                if want <= exp.abs_floor:
                    ok = got <= exp.abs_floor + exp.tolerance * exp.abs_floor
                else:
                    ok = abs(got - want) <= exp.tolerance * want
                out.append((exp.phase, principal, got, want, ok))
        return out

    @property
    def ok(self) -> bool:
        return all(row[4] for row in self.deviations())


class Scenario:
    """Builder/owner of one experiment's simulated world."""

    def __init__(
        self,
        graph: AgreementGraph,
        window: WindowConfig = WindowConfig(0.1),
        seed: int = 0,
        bin_width: float = 1.0,
        backend: str = "auto",
        trace: bool = False,
        lp_cache: bool = True,
        fast_periodic: bool = True,
        fast_lane: bool = True,
        l4_fast_lane: bool = True,
        check_invariants: Optional[bool] = None,
        lane: Optional[str] = None,
        shards: int = 1,
    ):
        self.graph = graph
        self.access: AccessLevels = compute_access_levels(graph)
        self.window = window
        self.backend = backend
        self.lp_cache = bool(lp_cache)
        self.fast_lane = bool(fast_lane)
        # L4 switch data-path lane (flow records + arena tables); kept
        # separate from the client-side fast_lane so either can be A/B'd
        # against its scalar path independently.
        self.l4_fast_lane = bool(l4_fast_lane)
        # Three-lane selector: ``lane`` overrides the per-layer flags.
        # "scalar" = per-request events everywhere; "slotted" = the PR 2/5
        # fast lanes; "columnar" = struct-of-arrays bulk advance with one
        # pump event per window (strict open loop; unsupported features
        # fall back to "slotted" and record why in ``lane_fallback``).
        if lane is not None and lane not in ("scalar", "slotted", "columnar"):
            raise ValueError(f"unknown lane {lane!r}")
        if lane == "scalar":
            self.fast_lane = False
            self.l4_fast_lane = False
        elif lane in ("slotted", "columnar"):
            self.fast_lane = True
            self.l4_fast_lane = True
        self.lane: str = lane or ("slotted" if self.fast_lane else "scalar")
        self.lane_fallback: Optional[str] = None
        # Sharded execution is a separate execution model over declarative
        # worlds (repro.experiments.sharded) — the event kernel is one
        # serial timeline and cannot be split mid-scenario.  Entry points
        # that support sharding (fig6/fig9) dispatch to the ShardedRunner
        # *before* constructing a Scenario; asking an already-built event
        # Scenario for shards > 1 records a fallback reason, mirroring
        # ``lane_fallback``.
        if int(shards) < 1:
            raise ValueError("shards must be >= 1")
        self.shards = int(shards)
        self.shard_fallback: Optional[str] = None
        if self.shards > 1:
            self.shards = 1
            self.shard_fallback = (
                "event-lane scenarios run one serial timeline; use the "
                "sharded lane entry points (run_fig6/run_fig9 shards=, "
                "repro figures --shards) for window-epoch sharding"
            )
        self.sim = Simulator(fast_periodic=fast_periodic)
        self.streams = RngStreams(seed)
        self.meter = RateMeter(bin_width)
        self.counter = MessageCounter()
        self.tracer = Tracer() if trace else None
        # Runtime conservation checks (repro.analysis.invariants).  None
        # when off, and the hooks are only ever installed when on, so the
        # disabled hot path is byte-for-byte the unchecked one.
        # ``check_invariants=None`` defers to the REPRO_CHECK env toggle so
        # any experiment (including parallel workers, which inherit the
        # environment) can be audited without threading a flag through
        # every figure entry point.  Checker callbacks are read-only, so
        # traces stay bit-identical with the checker on or off.
        enabled = check_enabled() if check_invariants is None else bool(check_invariants)
        self.invariants: Optional[InvariantChecker] = (
            InvariantChecker() if enabled else None
        )
        if self.invariants is not None:
            self.invariants.check_ticket_conservation(graph)
        # The columnar engine must exist before *any* other component so
        # its boundary pump carries the smallest event sequence numbers
        # (fires first at every window boundary — see ColumnarEngine).
        self.columnar: Optional[ColumnarEngine] = None
        if self.lane == "columnar":
            if trace:
                self.lane = "slotted"
                self.lane_fallback = "tracing needs per-request events"
            elif self.invariants is not None:
                self.lane = "slotted"
                self.lane_fallback = "invariant hooks need per-request events"
            else:
                self.columnar = ColumnarEngine(self.sim, window, self.meter)
        self.servers: Dict[str, Server] = {}
        self.l7_redirectors: Dict[str, L7Redirector] = {}
        self.l4_switches: Dict[str, L4Switch] = {}
        self.l4_daemons: Dict[str, L4Daemon] = {}
        self.clients: Dict[str, ClientMachine] = {}
        self._tree_built = False

    # -- components -------------------------------------------------------

    def server(self, name: str, owner: str, capacity: float, **kw) -> Server:
        srv = Server(
            self.sim, name, capacity, owner=owner,
            on_complete=self._on_complete, **kw,
        )
        self.servers[name] = srv
        if self.invariants is not None:
            self.invariants.watch_server(self.sim, srv, self.window.length)
        return srv

    def endpoint_server(
        self, name: str, owner: str, capacity: float, shares, **kw
    ):
        """A server enforcing agreements by itself (the Fig 1 baseline)."""
        from repro.cluster.endpoint_server import EndpointEnforcingServer

        kw.setdefault("window", self.window)
        srv = EndpointEnforcingServer(
            self.sim, name, capacity, shares,
            owner=owner, on_complete=self._on_complete, **kw,
        )
        self.servers[name] = srv
        if self.invariants is not None:
            self.invariants.watch_server(self.sim, srv, self.window.length)
        return srv

    def _on_complete(self, request, server) -> None:
        self.meter.record(request.principal, self.sim.now)
        self.meter.record(f"server:{server.name}", self.sim.now)
        # Unit-weighted series: enforcement is defined over average-request
        # *units* when costs vary (§4: "large requests are treated as
        # multiple small ones for the purpose of scheduling").
        if request.cost != 1.0:
            self.meter.record(f"units:{request.principal}", self.sim.now,
                              weight=request.cost)
        else:
            self.meter.record(f"units:{request.principal}", self.sim.now)
        if self.tracer is not None:
            self.tracer.record(
                self.sim.now, "completion",
                principal=request.principal, server=server.name,
                response_time=request.response_time, attempts=request.attempts,
            )

    def _community_capacity_per_window(self) -> float:
        """Total physical capacity (requests/window) across all principals."""
        return float(self.access.V.sum()) * self.window.length

    def _trace_allocator(self, name: str, allocator) -> None:
        """Wrap an allocator so every window's allocation is traced."""
        if self.tracer is None:
            return
        inner = allocator.compute

        def traced(local, now=None):
            alloc = inner(local, now=now)
            self.tracer.record(
                self.sim.now, "allocation", node=name,
                quotas=dict(alloc.quotas), fallback=alloc.used_fallback,
                global_estimate=dict(alloc.global_estimate),
            )
            return alloc

        allocator.compute = traced

    def l7(
        self,
        name: str,
        servers: Mapping[str, Union[Server, List[Server]]],
        n_redirectors: Optional[int] = None,
        **kw,
    ) -> L7Redirector:
        kw.setdefault("lp_cache", self.lp_cache)
        red = L7Redirector(
            self.sim, name, self.access, servers, window=self.window,
            n_redirectors=n_redirectors or 1, backend=self.backend, **kw,
        )
        self.l7_redirectors[name] = red
        self._trace_allocator(name, red.allocator)
        if self.invariants is not None:
            self.invariants.watch_allocator(
                name, red.allocator, self._community_capacity_per_window()
            )
        return red

    def l4(
        self,
        name: str,
        servers: Mapping[str, Union[Server, List[Server]]],
        n_redirectors: Optional[int] = None,
        mode: str = "community",
        prices: Optional[Mapping[str, float]] = None,
        capacity: Optional[float] = None,
        **kw,
    ) -> L4Switch:
        kw.setdefault("fast_lane", self.l4_fast_lane)
        if self.lane == "columnar" and kw.get("health") is not None:
            # Health-checked pools need the checker's event-path probes.
            self.lane = "slotted"
            self.lane_fallback = "health-checked L4 pools need per-flow events"
        switch_cls = ColumnarL4Switch if self.lane == "columnar" else L4Switch
        switch = switch_cls(
            self.sim, name, self.access.names, servers, window=self.window, **kw,
        )
        daemon = L4Daemon(
            self.sim, f"{name}-daemon", switch, self.access, window=self.window,
            mode=mode, prices=prices, capacity=capacity,
            n_redirectors=n_redirectors or 1, backend=self.backend,
            lp_cache=self.lp_cache,
        )
        self.l4_switches[name] = switch
        self.l4_daemons[name] = daemon
        self._trace_allocator(name, daemon.allocator)
        if self.invariants is not None:
            cap_per_window = (
                capacity * self.window.length if capacity is not None
                else self._community_capacity_per_window()
            )
            self.invariants.watch_allocator(name, daemon.allocator, cap_per_window)
            self.invariants.watch_switch(self.sim, switch, self.window.length)
        return switch

    def client(
        self,
        name: str,
        principal: str,
        redirector,
        rate: float,
        windows: Optional[Sequence[Tuple[float, float]]] = None,
        **kw,
    ) -> Union[ClientMachine, ColumnarClient]:
        if self.lane == "columnar":
            reason = self._columnar_unsupported(redirector, kw)
            if reason is None:
                ckw = dict(kw)
                for drop in ("fast_lane", "users", "think", "stream_chunk"):
                    ckw.pop(drop, None)
                client = ColumnarClient(
                    self.sim, name, principal, redirector, rate,
                    rng=self.streams.get(f"client:{name}"),
                    active_windows=list(windows) if windows is not None else None,
                    **ckw,
                )
                assert self.columnar is not None
                self.columnar.register(client)
                self.clients[name] = client
                return client
            if self.columnar is not None and self.columnar.clients_by_code:
                # Mixed lanes on one run would break the pump's window
                # accounting; by now it is too late to demote cleanly.
                raise ValueError(
                    f"client {name!r} cannot join the columnar lane "
                    f"({reason}) after columnar clients were built"
                )
            self.lane = "slotted"
            self.lane_fallback = reason
        kw.pop("track_responses", None)  # ColumnarClient-only knob
        kw.pop("batch", None)
        kw.setdefault("fast_lane", self.fast_lane)
        client = ClientMachine(
            self.sim, name, principal, redirector, rate,
            rng=self.streams.get(f"client:{name}"),
            active_windows=list(windows) if windows is not None else None,
            **kw,
        )
        self.clients[name] = client
        return client

    @staticmethod
    def _columnar_unsupported(redirector, kw: Dict) -> Optional[str]:
        """Why this client cannot run columnar (None when it can)."""
        if kw.get("mode", "open") != "open":
            return "closed-loop clients need per-request feedback"
        if kw.get("max_retry_pool") != 0:
            return "retry pools are closed-loop feedback"
        if kw.get("on_response") is not None:
            return "on_response hooks need per-request events"
        if hasattr(redirector, "columnar_group"):
            return None
        if isinstance(redirector, L7Redirector):
            if redirector.queuing != "implicit":
                return f"{redirector.queuing!r} queuing needs per-request events"
            if redirector.health is not None:
                return "health-checked pools need per-request events"
            return None
        return "redirector type does not support the columnar lane"

    # -- coordination -----------------------------------------------------------

    def connect_tree(
        self,
        link_delay: float = 0.005,
        kind: str = "star",
        fanout: int = 2,
        period: Optional[float] = None,
        extra_root: bool = False,
        loss: float = 0.0,
        jitter: float = 0.0,
        resilient: bool = False,
        heartbeat_period: float = 0.5,
        failure_timeout: Optional[float] = None,
    ) -> CombiningTree:
        """Wire every redirector (L7 and L4) into one combining tree.

        ``extra_root=True`` inserts a dedicated aggregator root that is not
        itself a redirector, making up+down latency symmetric for all
        redirectors (used by the Fig 8 delay experiment).

        ``resilient=True`` builds the tree through
        :class:`repro.coordination.membership.ResilientTree` — heartbeats,
        failure detection and automatic healing — and exposes it as
        ``self.membership``.  Stochastic link impairments (``loss``,
        ``jitter``) always draw from per-link spawned RNG substreams, and
        every directed link is registered in ``self.protocol_links`` for
        the fault injector.
        """
        if self._tree_built:
            raise RuntimeError("tree already built")
        participants: Dict[str, object] = {}
        participants.update(self.l7_redirectors)
        participants.update(self.l4_daemons)
        ids = list(participants)
        if not ids:
            raise RuntimeError("no redirectors to connect")
        suppliers = {
            nid: participants[nid].local_demand for nid in ids  # type: ignore[attr-defined]
        }
        if extra_root:
            root = "__root__"
            tree_ids = [root] + ids
            suppliers[root] = lambda: {}
            tree = (
                CombiningTree.star(tree_ids)
                if kind == "star"
                else CombiningTree.balanced(tree_ids, fanout)
            )
        else:
            if kind == "star":
                tree = CombiningTree.star(ids)
            elif kind == "chain":
                tree = CombiningTree.chain(ids)
            else:
                tree = CombiningTree.balanced(ids, fanout)
        if resilient:
            self.membership = ResilientTree(
                self.sim, tree, period or self.window.length, suppliers,
                link_delay=link_delay, jitter=jitter, loss=loss,
                streams=self.streams, counter=self.counter,
                heartbeat_period=heartbeat_period,
                failure_timeout=failure_timeout,
            )
            nodes = self.membership.nodes
            self.protocol_links = self.membership.links
        else:
            self.membership = None
            self.protocol_links = {}
            nodes = build_protocol(
                self.sim, tree, period=period or self.window.length,
                suppliers=suppliers, link_delay=link_delay, jitter=jitter,
                loss=loss, streams=self.streams, counter=self.counter,
                link_registry=self.protocol_links,
            )
        for nid in ids:
            participants[nid].attach(nodes[nid])  # type: ignore[attr-defined]
        self._tree_built = True
        self.tree = tree
        self.protocol_nodes = nodes
        return tree

    # -- execution ---------------------------------------------------------------

    def run(self, duration: float) -> None:
        if self.invariants is None:
            self.sim.run(until=duration)
            if self.columnar is not None:
                # Commit the final partial window (boundary drift means the
                # last pump usually lies beyond the horizon).
                self.columnar.flush(duration)
            return
        # Audit every LP solve for primal feasibility while this scenario
        # runs; the hook is process-global, so scope it to the run.
        from repro.lp import solver as lp_solver

        lp_solver.set_feasibility_check(self.invariants.check_lp_solution)
        try:
            self.sim.run(until=duration)
        finally:
            lp_solver.set_feasibility_check(None)

    def phase_rates(
        self,
        phases: Sequence[Tuple[str, float, float]],
        keys: Optional[Sequence[str]] = None,
        settle: float = 5.0,
    ) -> List[PhaseStats]:
        return summarize_phases(self.meter, phases, keys=keys, settle=settle)

    def series(self, keys: Sequence[str]) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        return {k: self.meter.series(k) for k in keys}

    def response_stats(
        self, skip_fraction: float = 0.25
    ) -> Dict[str, Dict[str, float]]:
        """Per-principal response-time summaries from the clients.

        ``skip_fraction`` discards each client's earliest completions
        (start-up transient).  Response times include queueing, deferral
        retries and service.  Samples come from each client's bounded
        :class:`repro.sim.stats.StreamingStats` reservoir — exact while a
        run completes fewer requests than the reservoir capacity, a uniform
        sample beyond that.
        """
        by_principal: Dict[str, List[float]] = {}
        for client in self.clients.values():
            st = client.response_stats
            rts = st.tail_values(int(st.count * skip_fraction))
            by_principal.setdefault(client.principal, []).extend(rts)
        out: Dict[str, Dict[str, float]] = {}
        for p, rts in by_principal.items():
            if not rts:
                out[p] = {"count": 0.0}
                continue
            arr = np.asarray(rts)
            out[p] = {
                "count": float(arr.size),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "p99": float(np.percentile(arr, 99)),
                "max": float(arr.max()),
            }
        return out
