"""Experiment harness reproducing every figure in the paper's §5.

- :mod:`repro.experiments.harness` — :class:`Scenario`, a declarative
  builder that wires graph, servers, redirectors (L7 or L4), combining
  tree and phased clients into one simulation.
- :mod:`repro.experiments.figures` — one entry point per paper artifact
  (``run_fig1`` ... ``run_fig10``), each returning a
  :class:`FigureResult` with measured phase rates and the paper's
  expected values.
- :mod:`repro.experiments.report` — text rendering for results
  (the tables recorded in ``EXPERIMENTS.md``).
- :mod:`repro.experiments.parallel` — deterministic multi-process
  execution of figure/sweep batches (results independent of job count).
- :mod:`repro.experiments.benchrecord` — the committed microbenchmark
  ledger (``benchmarks/BENCH_core.json``).
"""

from repro.experiments.harness import FigureResult, PhaseExpectation, Scenario
from repro.experiments.figures import (
    run_fig1,
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    ALL_FIGURES,
)
from repro.experiments.baselines import (
    BaselineComparison,
    PassthroughRedirector,
    run_enforcement_comparison,
)
from repro.experiments.benchrecord import load_bench, record_bench
from repro.experiments.parallel import (
    default_jobs,
    parallel_map,
    run_figures_parallel,
    scenario_seed,
)
from repro.experiments.report import render_result, render_all

__all__ = [
    "BaselineComparison",
    "PassthroughRedirector",
    "run_enforcement_comparison",
    "Scenario",
    "FigureResult",
    "PhaseExpectation",
    "run_fig1",
    "run_fig3",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "ALL_FIGURES",
    "render_result",
    "render_all",
    "scenario_seed",
    "default_jobs",
    "parallel_map",
    "run_figures_parallel",
    "record_bench",
    "load_bench",
]
