"""Per-figure experiment definitions (paper §1 Fig 1, §2.3 Fig 3, §5 Figs 6-10).

Each ``run_figN`` builds the paper's exact scenario — same agreements, same
server capacities, same client counts and per-client rate limits, same
phase timeline — executes it on the simulated testbed, and returns the
measured per-phase service rates next to the values the paper reports.

``duration_scale`` shortens every phase proportionally (tests and
benchmarks use ~0.2-0.4; 1.0 is the paper's full timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.tickets import TicketKind
from repro.core.valuation import value_currencies
from repro.experiments.harness import FigureResult, PhaseExpectation, Scenario
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.endpoint import endpoint_allocate
from repro.scheduling.window import WindowConfig
from repro.sim.monitor import PhaseStats

__all__ = [
    "run_fig1", "run_fig1_distributed", "run_fig3", "run_fig6", "run_fig7",
    "run_fig8", "run_fig9", "run_fig10", "fig6_scenario", "fig9_scenario",
    "fig10_scenario", "ALL_FIGURES", "Fig1Result", "Fig3Result",
]


# ---------------------------------------------------------------------------
# Fig 1 — the motivating example: end-point enforcement violates the SLA
# ---------------------------------------------------------------------------

@dataclass
class Fig1Result:
    """Aggregate service rates under the two enforcement strategies."""

    endpoint: Dict[str, float]
    coordinated: Dict[str, float]
    expected_endpoint: Dict[str, float] = field(
        default_factory=lambda: {"A": 30.0, "B": 70.0}
    )
    expected_coordinated: Dict[str, float] = field(
        default_factory=lambda: {"A": 20.0, "B": 80.0}
    )
    tolerance: float = 1.0   # absolute req/s (the arithmetic form is exact;
                             # the simulated form passes 4.0)

    @property
    def ok(self) -> bool:
        return all(
            abs(self.endpoint[p] - self.expected_endpoint[p]) <= self.tolerance
            and abs(self.coordinated[p] - self.expected_coordinated[p]) <= self.tolerance
            for p in ("A", "B")
        )


def run_fig1() -> Fig1Result:
    """Fig 1: redirectors R1/R2 see loads (A20,B20)/(A20,B60), bias their
    forwarding 75/25 to servers S1/S2 (50 req/s each); A has 20% and B 80%
    of the aggregate.  Independent per-server enforcement yields (A30,B70);
    coordinated scheduling restores (A20,B80)."""
    shares = {"A": 0.2, "B": 0.8}
    r1_load = {"A": 20.0, "B": 20.0}
    r2_load = {"A": 20.0, "B": 60.0}
    # Locality bias: R1 forwards 75% to S1, 25% to S2; R2 the reverse.
    s1_demand = {p: 0.75 * r1_load[p] + 0.25 * r2_load[p] for p in shares}
    s2_demand = {p: 0.25 * r1_load[p] + 0.75 * r2_load[p] for p in shares}

    a1 = endpoint_allocate(s1_demand, shares, capacity=50.0)
    a2 = endpoint_allocate(s2_demand, shares, capacity=50.0)
    endpoint = {p: a1[p] + a2[p] for p in shares}

    # Coordinated: one community LP over the aggregate demand and servers.
    g = AgreementGraph()
    g.add_principal("S1", capacity=50.0)
    g.add_principal("S2", capacity=50.0)
    g.add_principal("A")
    g.add_principal("B")
    for server in ("S1", "S2"):
        g.add_agreement(Agreement(server, "A", 0.2, 1.0))
        g.add_agreement(Agreement(server, "B", 0.8, 1.0))
    from repro.core.access import compute_access_levels

    access = compute_access_levels(g)
    sched = CommunityScheduler(access, WindowConfig(1.0))
    plan = sched.schedule(
        {"A": r1_load["A"] + r2_load["A"], "B": r1_load["B"] + r2_load["B"]}
    )
    coordinated = {p: plan.served(p) for p in shares}
    return Fig1Result(endpoint=endpoint, coordinated=coordinated)


def run_fig1_distributed(
    duration: float = 30.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True,
) -> Fig1Result:
    """Fig 1 as a *full simulation*, not arithmetic.

    End-point side: two :class:`EndpointEnforcingServer` s behind locality-
    biased pass-through redirectors (75/25 and 25/75); clients are bound to
    their redirector and do not retry (requests cannot migrate — the
    paper's locality premise).  Coordinated side: the same demand through
    two agreement-enforcing L7 redirectors over a combining tree.
    """
    from repro.experiments.baselines import PassthroughRedirector

    shares = {"A": 0.2, "B": 0.8}
    settle = duration / 3.0

    def client_set(sc, r1, r2, retries: bool):
        # Jittered spacing: strictly periodic arrivals alias with the
        # windowed quota state and bias which principal's requests hit the
        # rounding residue, while full Poisson variance would waste the
        # tiny per-window quotas (no retries on the end-point side).
        pool = None if retries else 0
        for name, p, red, rate in (
            ("CA1", "A", r1, 20.0), ("CB1", "B", r1, 20.0),
            ("CA2", "A", r2, 20.0), ("CB2", "B", r2, 60.0),
        ):
            sc.client(name, p, red, rate=rate, max_retry_pool=pool, jitter=0.4)

    # --- end-point enforcement ------------------------------------------
    g1 = AgreementGraph()
    for name in ("S1", "S2"):
        g1.add_principal(name, capacity=50.0)
    g1.add_principal("A")
    g1.add_principal("B")
    sc1 = Scenario(g1, seed=seed, lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane)
    # End-point enforcers run a coarser window (the paper's §6 notes such
    # systems operate at coarse granularity — Oceano at minutes); at 0.1 s
    # their per-window quotas here would round to ~2 requests and the
    # rounding noise, not the policy, would dominate.
    ep_window = WindowConfig(0.5)
    s1 = sc1.endpoint_server("S1", "S1", 50.0, shares, window=ep_window)
    s2 = sc1.endpoint_server("S2", "S2", 50.0, shares, window=ep_window)
    r1 = PassthroughRedirector(sc1.sim, "R1", {"S1": s1, "S2": s2},
                               weights={"S1": 3.0, "S2": 1.0})
    r2 = PassthroughRedirector(sc1.sim, "R2", {"S1": s1, "S2": s2},
                               weights={"S1": 1.0, "S2": 3.0})
    client_set(sc1, r1, r2, retries=False)
    sc1.run(duration)
    endpoint = {
        p: sc1.meter.mean_rate(p, settle, duration) for p in ("A", "B")
    }

    # --- coordinated enforcement -------------------------------------------
    g2 = AgreementGraph()
    g2.add_principal("S1", capacity=50.0)
    g2.add_principal("S2", capacity=50.0)
    g2.add_principal("A")
    g2.add_principal("B")
    for server in ("S1", "S2"):
        g2.add_agreement(Agreement(server, "A", 0.2, 1.0))
        g2.add_agreement(Agreement(server, "B", 0.8, 1.0))
    sc2 = Scenario(g2, seed=seed, lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane)
    cs1 = sc2.server("S1", "S1", 50.0)
    cs2 = sc2.server("S2", "S2", 50.0)
    cr1 = sc2.l7("R1", {"S1": cs1, "S2": cs2}, n_redirectors=2)
    cr2 = sc2.l7("R2", {"S1": cs1, "S2": cs2}, n_redirectors=2)
    sc2.connect_tree(link_delay=0.005)
    client_set(sc2, cr1, cr2, retries=True)
    sc2.run(duration)
    coordinated = {
        p: sc2.meter.mean_rate(p, settle, duration) for p in ("A", "B")
    }
    return Fig1Result(endpoint=endpoint, coordinated=coordinated, tolerance=4.0)


# ---------------------------------------------------------------------------
# Fig 3 — the ticket/currency worked example
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    finals: Dict[str, Tuple[float, float]]
    tickets: Dict[str, float]
    expected_finals: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: {
            "A": (600.0, 400.0), "B": (760.0, 1340.0), "C": (1140.0, 960.0),
        }
    )
    expected_tickets: Dict[str, float] = field(
        default_factory=lambda: {
            "M-Ticket1": 400.0, "O-Ticket2": 200.0,
            "M-Ticket3": 1140.0, "O-Ticket4": 960.0,
        }
    )

    @property
    def ok(self) -> bool:
        tol = 1e-6
        return all(
            abs(self.finals[p][0] - self.expected_finals[p][0]) < tol
            and abs(self.finals[p][1] - self.expected_finals[p][1]) < tol
            for p in self.expected_finals
        ) and all(
            abs(self.tickets[t] - self.expected_tickets[t]) < tol
            for t in self.expected_tickets
        )


def run_fig3() -> Fig3Result:
    """Fig 3: A (1000 u/s) grants B [0.4,0.6]; B (1500 u/s) grants C
    [0.6,1.0].  Final (mandatory, optional) values must be A (600,400),
    B (760,1340), C (1140,960)."""
    g = AgreementGraph()
    g.add_principal("A", capacity=1000.0)
    g.add_principal("B", capacity=1500.0)
    g.add_principal("C", capacity=0.0)
    g.add_agreement(Agreement("A", "B", 0.4, 0.6))
    g.add_agreement(Agreement("B", "C", 0.6, 1.0))
    val = value_currencies(g)
    return Fig3Result(
        finals=val.as_dict(),
        tickets={
            "M-Ticket1": val.ticket_value("A", "B", TicketKind.MANDATORY),
            "O-Ticket2": val.ticket_value("A", "B", TicketKind.OPTIONAL),
            "M-Ticket3": val.ticket_value("B", "C", TicketKind.MANDATORY),
            "O-Ticket4": val.ticket_value("B", "C", TicketKind.OPTIONAL),
        },
    )


# ---------------------------------------------------------------------------
# Fig 6 — L7: sharing agreements in a service-provider context
# ---------------------------------------------------------------------------

def _fig6_graph(capacity: float, a_lb: float, b_lb: float) -> AgreementGraph:
    g = AgreementGraph()
    g.add_principal("S", capacity=capacity)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", a_lb, 1.0))
    g.add_agreement(Agreement("S", "B", b_lb, 1.0))
    return g


def fig6_scenario(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True, check_invariants: Optional[bool] = None,
    lane: Optional[str] = None, strict_open_loop: Optional[bool] = None,
) -> Tuple[Scenario, float]:
    """Build and run the fig6 world; returns ``(scenario, phase_length)``.

    Shared between :func:`run_fig6` and the replay-determinism harness
    (:mod:`repro.analysis.replay`), which replays *this exact scenario*
    twice — plus once with ``check_invariants=True`` — and compares trace
    digests.

    ``strict_open_loop`` disables client retry pools (defaults to on for
    the columnar lane, which requires it; the three-lane parity replays
    pass it explicitly for *every* lane so all three run the identical
    strict scenario).
    """
    T = 100.0 * duration_scale
    if strict_open_loop is None:
        strict_open_loop = lane == "columnar"
    sc = Scenario(_fig6_graph(320.0, 0.2, 0.8), seed=seed,
                  lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane, check_invariants=check_invariants,
                  lane=lane)
    server = sc.server("S", "S", 320.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2)
    sc.connect_tree(link_delay=0.005)
    ckw = {"max_retry_pool": 0} if strict_open_loop else {}
    a_windows = [(0.0, 3 * T)]
    b_windows = [(0.0, T), (2 * T, 3 * T)]
    sc.client("C1", "A", r1, rate=135.0, windows=a_windows, **ckw)
    sc.client("C2", "A", r1, rate=135.0, windows=a_windows, **ckw)
    sc.client("C3", "B", r2, rate=135.0, windows=b_windows, **ckw)
    sc.run(3 * T)
    return sc, T


def run_fig6(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True, lane: Optional[str] = None,
    shards: Optional[int] = None, transport: str = "shm",
) -> FigureResult:
    """Fig 6: V=320; A [0.2,1] with two 135 req/s clients at R1; B [0.8,1]
    with one client at R2.  Three phases: both active / only A / both.

    ``shards`` routes to the sharded lane (one worker process per shard,
    window-epoch barriers — see :mod:`repro.experiments.sharded`); results
    there are digest-identical for every shard count and for either
    ``transport`` (pipe or shared-memory data plane).
    """
    if shards is not None and shards > 0:
        from repro.experiments.sharded import run_sharded_figure

        return run_sharded_figure("fig6", duration_scale=duration_scale,
                                  seed=seed, shards=shards, lp_cache=lp_cache,
                                  transport=transport)
    sc, T = fig6_scenario(duration_scale, seed, lp_cache, fast_periodic,
                          fast_lane, lane=lane)
    settle = min(5.0, T * 0.2)
    phases = [("phase1", 0.0, T), ("phase2", T, 2 * T), ("phase3", 2 * T, 3 * T)]
    return FigureResult(
        figure="fig6",
        title="L7: agreements respected in a service-provider context",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=settle),
        expected=[
            PhaseExpectation("phase1", {"A": 185.0, "B": 135.0}),
            PhaseExpectation("phase2", {"A": 270.0, "B": 0.0}),
            PhaseExpectation("phase3", {"A": 185.0, "B": 135.0}),
        ],
        series=sc.series(["A", "B"]),
        notes="Paper: phase1 ~ (A 190, B 135); phase2 A 270 (client-limited).",
    )


# ---------------------------------------------------------------------------
# Fig 7 — L7: optimisation of the community metric
# ---------------------------------------------------------------------------

def run_fig7(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True,
) -> FigureResult:
    """Fig 7: V=250; both A and B have [0.2,1]; A has two clients, B one.
    The community objective serves A at twice B's rate."""
    T = 150.0 * duration_scale
    sc = Scenario(_fig6_graph(250.0, 0.2, 0.2), seed=seed,
                  lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane)
    server = sc.server("S", "S", 250.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2)
    sc.connect_tree(link_delay=0.005)
    sc.client("C1", "A", r1, rate=135.0)
    sc.client("C2", "A", r1, rate=135.0)
    sc.client("C3", "B", r2, rate=135.0)
    sc.run(T)
    settle = min(5.0, T * 0.2)
    phases = [("steady", 0.0, T)]
    return FigureResult(
        figure="fig7",
        title="L7: global response time minimised (A served at 2x B)",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=settle),
        expected=[PhaseExpectation("steady", {"A": 166.7, "B": 83.3})],
        series=sc.series(["A", "B"]),
        notes="Optional capacity follows offered load 2:1 after guarantees.",
    )


# ---------------------------------------------------------------------------
# Fig 8 — impact of network delay on the combining tree
# ---------------------------------------------------------------------------

def run_fig8(
    duration_scale: float = 1.0, seed: int = 0, lag: Optional[float] = None,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True,
) -> FigureResult:
    """Fig 8: V=320; A [0.8,1] (two clients at R1), B [0.2,1] (one at R2);
    combining-tree broadcasts lag by ~``lag`` seconds.  Reproduces the
    conservative half-mandatory start, the ~lag-long competition transient
    when A appears, and convergence to the agreed (A 255, B 65) split.

    ``lag`` defaults to the paper's 10 s, clamped so scaled-down runs keep
    a steady phase after the transient.
    """
    T1 = 60.0 * duration_scale   # B alone
    T2 = 100.0 * duration_scale  # A + B
    T3 = 60.0 * duration_scale   # B alone again
    if lag is None:
        lag = min(10.0, 0.5 * T1)
    # Fine measurement bins: phase boundaries sit at the information lag,
    # which rarely aligns with 1 s bins, and the post-lag surge must not
    # smear into the conservative phase's mean.
    sc = Scenario(_fig8_graph(), seed=seed, bin_width=0.2,
                  lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane)
    server = sc.server("S", "S", 320.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2)
    # Dedicated aggregator root so both redirectors see the same up+down
    # latency: reports take lag/2 up, broadcasts lag/2 down.
    sc.connect_tree(link_delay=lag / 2.0, extra_root=True)
    t_a0, t_a1 = T1, T1 + T2
    if lag >= 0.7 * T1:
        raise ValueError(
            f"lag {lag}s leaves no steady phase within T1={T1}s; "
            "increase duration_scale or reduce lag"
        )
    sc.client("C1", "A", r1, rate=135.0, windows=[(t_a0, t_a1)])
    sc.client("C2", "A", r1, rate=135.0, windows=[(t_a0, t_a1)])
    sc.client("C3", "B", r2, rate=135.0, windows=[(0.0, T1 + T2 + T3)])
    sc.run(T1 + T2 + T3)
    # Post-lag settle, scaled so short runs keep non-empty steady phases.
    settle = min(5.0, 0.25 * (T1 - lag))
    phases = [
        ("p1_conservative", 0.0, lag),
        ("p2_full", lag + settle, T1),
        ("p3_compete", t_a0, t_a0 + lag),
        ("p4_agreed", t_a0 + lag + settle, t_a1),
        ("p5_transition", t_a1, t_a1 + lag),
        ("p6_full", t_a1 + lag + settle, T1 + T2 + T3),
    ]
    return FigureResult(
        figure="fig8",
        title="L7: graceful behaviour under combining-tree delay",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=0.0),
        expected=[
            PhaseExpectation("p1_conservative", {"B": 32.0}, tolerance=0.35),
            PhaseExpectation("p2_full", {"B": 135.0}),
            PhaseExpectation("p4_agreed", {"A": 255.0, "B": 65.0}, tolerance=0.2),
            PhaseExpectation("p6_full", {"B": 135.0}),
        ],
        series=sc.series(["A", "B"]),
        notes=(
            "p3/p5 are the ~lag-long transients where stale information lets "
            "requests compete; the paper reports the same shape."
        ),
    )


def _fig8_graph() -> AgreementGraph:
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.8, 1.0))
    g.add_agreement(Agreement("S", "B", 0.2, 1.0))
    return g


# ---------------------------------------------------------------------------
# Fig 9 — L4: sharing agreements in a community context
# ---------------------------------------------------------------------------

def fig9_scenario(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True, l4_fast_lane: bool = True,
    check_invariants: Optional[bool] = None,
    lane: Optional[str] = None, strict_open_loop: Optional[bool] = None,
) -> Tuple[Scenario, float]:
    """Build and run the fig9 world; returns ``(scenario, phase_length)``.

    Shared between :func:`run_fig9` and the L4 lane-parity replay harness
    (:func:`repro.analysis.replay.l4_replay`), which runs *this exact
    scenario* once per lane and diffs the per-window admitted-rate trace
    digests — the fast lane must be bit-identical to the scalar path.

    ``strict_open_loop`` disables client retry pools (defaults to on for
    the columnar lane; the three-lane parity replays pass it for every
    lane so all three run the identical strict scenario).
    """
    T = 100.0 * duration_scale
    if strict_open_loop is None:
        strict_open_loop = lane == "columnar"
    g = AgreementGraph()
    g.add_principal("A", capacity=320.0)
    g.add_principal("B", capacity=320.0)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))
    sc = Scenario(g, seed=seed, lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane, l4_fast_lane=l4_fast_lane,
                  check_invariants=check_invariants, lane=lane)
    sa = sc.server("SA", "A", 320.0)
    sb = sc.server("SB", "B", 320.0)
    switch = sc.l4("SW", {"A": sa, "B": sb})
    ckw = {"max_retry_pool": 0} if strict_open_loop else {}
    sc.client("C1", "A", switch, rate=400.0, windows=[(0, T), (2 * T, 3 * T)],
              **ckw)
    sc.client("C2", "A", switch, rate=400.0, windows=[(0, T)], **ckw)
    sc.client("C3", "B", switch, rate=400.0, windows=[(0, 4 * T)], **ckw)
    sc.run(4 * T)
    return sc, T


def run_fig9(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True, l4_fast_lane: bool = True,
    lane: Optional[str] = None, shards: Optional[int] = None,
    transport: str = "shm",
) -> FigureResult:
    """Fig 9: A and B each own a 320 req/s server; B grants A [0.5, 0.5].
    Four phases: A 2 clients / none / 1 client / none, B always one client;
    all clients 400 req/s through one L4 switch.

    ``shards`` routes to the sharded lane, like :func:`run_fig6`.
    """
    if shards is not None and shards > 0:
        from repro.experiments.sharded import run_sharded_figure

        return run_sharded_figure("fig9", duration_scale=duration_scale,
                                  seed=seed, shards=shards, lp_cache=lp_cache,
                                  transport=transport)
    sc, T = fig9_scenario(duration_scale, seed, lp_cache, fast_periodic,
                          fast_lane, l4_fast_lane, lane=lane)
    settle = min(5.0, T * 0.2)
    phases = [
        ("phase1", 0.0, T), ("phase2", T, 2 * T),
        ("phase3", 2 * T, 3 * T), ("phase4", 3 * T, 4 * T),
    ]
    return FigureResult(
        figure="fig9",
        title="L4: agreements respected in a community context",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=settle),
        expected=[
            PhaseExpectation("phase1", {"A": 480.0, "B": 160.0}),
            PhaseExpectation("phase2", {"A": 0.0, "B": 320.0}),
            PhaseExpectation("phase3", {"A": 400.0, "B": 240.0}),
            PhaseExpectation("phase4", {"A": 0.0, "B": 320.0}),
        ],
        series=sc.series(["A", "B"]),
        notes="Phase 3: A limited to ~400 by the single client machine.",
    )


# ---------------------------------------------------------------------------
# Fig 10 — L4: maximisation of service-provider income
# ---------------------------------------------------------------------------

def fig10_scenario(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True, l4_fast_lane: bool = True,
    check_invariants: Optional[bool] = None,
    lane: Optional[str] = None, strict_open_loop: Optional[bool] = None,
) -> Tuple[Scenario, float]:
    """Build and run the fig10 world; returns ``(scenario, phase_length)``.

    Shared between :func:`run_fig10` and the L4 lane-parity replay
    harness, like :func:`fig9_scenario` (provider/price mode variant —
    the columnar lane replays admission against the live switch, so the
    provider's price-ordered picks are exercised identically).
    """
    T = 100.0 * duration_scale
    if strict_open_loop is None:
        strict_open_loop = lane == "columnar"
    g = AgreementGraph()
    g.add_principal("P", capacity=640.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("P", "A", 0.8, 1.0))
    g.add_agreement(Agreement("P", "B", 0.2, 1.0))
    sc = Scenario(g, seed=seed, lp_cache=lp_cache, fast_periodic=fast_periodic,
                  fast_lane=fast_lane, l4_fast_lane=l4_fast_lane,
                  check_invariants=check_invariants, lane=lane)
    s1 = sc.server("S1", "P", 320.0)
    s2 = sc.server("S2", "P", 320.0)
    switch = sc.l4(
        "SW", {"P": [s1, s2]}, mode="provider", prices={"A": 2.0, "B": 1.0},
    )
    ckw = {"max_retry_pool": 0} if strict_open_loop else {}
    sc.client("C1", "A", switch, rate=400.0, windows=[(0, T), (2 * T, 3 * T)],
              **ckw)
    sc.client("C2", "A", switch, rate=400.0, windows=[(0, T)], **ckw)
    sc.client("C3", "B", switch, rate=400.0, windows=[(0, 4 * T)], **ckw)
    sc.run(4 * T)
    return sc, T


def run_fig10(
    duration_scale: float = 1.0, seed: int = 0,
    lp_cache: bool = True, fast_periodic: bool = True,
    fast_lane: bool = True, l4_fast_lane: bool = True,
    lane: Optional[str] = None,
) -> FigureResult:
    """Fig 10: provider with two 320 req/s servers; A [0.8,1] pays more than
    B [0.2,1].  Same client timeline as Fig 9; the provider admits the
    highest payer first while honouring B's mandatory floor."""
    sc, T = fig10_scenario(duration_scale, seed, lp_cache, fast_periodic,
                           fast_lane, l4_fast_lane, lane=lane)
    settle = min(5.0, T * 0.2)
    phases = [
        ("phase1", 0.0, T), ("phase2", T, 2 * T),
        ("phase3", 2 * T, 3 * T), ("phase4", 3 * T, 4 * T),
    ]
    return FigureResult(
        figure="fig10",
        title="L4: provider income maximised",
        phases=sc.phase_rates(phases, keys=["A", "B"], settle=settle),
        expected=[
            PhaseExpectation("phase1", {"A": 512.0, "B": 128.0}),
            PhaseExpectation("phase2", {"A": 0.0, "B": 400.0}),
            PhaseExpectation("phase3", {"A": 400.0, "B": 240.0}),
            PhaseExpectation("phase4", {"A": 0.0, "B": 400.0}),
        ],
        series=sc.series(["A", "B"]),
        notes="B held to its mandatory 128 while A (higher price) is active.",
    )


def run_faultmatrix(**kw) -> FigureResult:
    """Fault-matrix (partition → degrade → heal); see experiments.faultmatrix."""
    from repro.experiments.faultmatrix import run_fault_matrix

    return run_fault_matrix(**kw)


ALL_FIGURES = {
    "fig1": run_fig1,
    "fig1d": run_fig1_distributed,
    "fig3": run_fig3,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "faultmatrix": run_faultmatrix,
}
