"""Layer-4 packet redirection (paper §4.2).

A model of the paper's Linux Virtual Server-based prototype:

- :mod:`repro.l4.packets` — TCP packet records (SYN/ACK/FIN flags, 4-tuple).
- :mod:`repro.l4.nat` — the NAT rewrite table (destination rewriting on the
  way in, source rewriting on the way out).
- :mod:`repro.l4.conntrack` — connection tracking: subsequent packets of an
  admitted connection follow the SYN's server choice, and client machines
  keep *affinity* to servers to the extent agreements allow (supports
  SSL-style pairwise session keys, §4.2).
- :mod:`repro.l4.switch` — the kernel-module model: admits or queues SYNs
  per the daemon's allocation, reinjects queued SYNs in later windows.
- :mod:`repro.l4.daemon` — the user-space daemon: collects queue lengths,
  solves the window LP (via the shared allocator), installs allocations.
"""

from repro.l4.conntrack import ArenaConnTracker, ConnTracker
from repro.l4.daemon import L4Daemon
from repro.l4.nat import ArenaNatTable, NatTable
from repro.l4.packets import FlowRecord, TcpFlags, TcpPacket
from repro.l4.switch import L4Switch, PortSpaceExhausted

__all__ = [
    "TcpPacket", "TcpFlags", "FlowRecord",
    "NatTable", "ArenaNatTable",
    "ConnTracker", "ArenaConnTracker",
    "L4Switch", "L4Daemon", "PortSpaceExhausted",
]
