"""Connection tracking and client affinity.

Two concerns from §4.2:

1. *Connection affinity within a flow*: after a SYN is assigned a server,
   every subsequent packet of that connection must reach the same server
   (handled with :class:`repro.l4.nat.NatTable` mappings keyed by 4-tuple;
   this tracker owns their lifecycle and expiry).
2. *Client-machine affinity across connections*: "our implementation
   maintains connection affinity between client machines and servers to
   the extent allowed by the sharing agreements", which makes
   SSL-session-key reuse possible.  :meth:`ConnTracker.preferred_server`
   remembers each (client, principal)'s last server so the switch can
   keep routing there while the allocation still permits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.l4.packets import FourTuple

__all__ = ["ConnTracker", "ArenaConnTracker", "Connection"]


@dataclass
class Connection:
    client_tuple: FourTuple
    server: str
    principal: str
    created_at: float
    last_seen: float
    packets: int = 1
    closed: bool = False


class ConnTracker:
    """Tracks live connections and per-(client, principal) server affinity."""

    def __init__(self, idle_timeout: float = 60.0):
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.idle_timeout = float(idle_timeout)
        self._conns: Dict[FourTuple, Connection] = {}
        self._affinity: Dict[Tuple[str, str], str] = {}
        # Read-only alias for hot-path membership tests (the switch's port
        # allocator probes it directly, skipping a __contains__ frame).
        self.live: Dict[FourTuple, Connection] = self._conns
        self.expired = 0

    def __len__(self) -> int:
        return len(self._conns)

    def __contains__(self, client_tuple: FourTuple) -> bool:
        return client_tuple in self._conns

    # -- connection lifecycle ----------------------------------------------

    def open(
        self, client_tuple: FourTuple, server: str, principal: str, now: float
    ) -> Connection:
        conn = Connection(
            client_tuple=client_tuple, server=server, principal=principal,
            created_at=now, last_seen=now,
        )
        self._conns[client_tuple] = conn
        self._affinity[(client_tuple[0], principal)] = server
        return conn

    def touch(self, client_tuple: FourTuple, now: float) -> Optional[Connection]:
        conn = self._conns.get(client_tuple)
        if conn is not None:
            conn.last_seen = now
            conn.packets += 1
        return conn

    def close(self, client_tuple: FourTuple) -> Optional[Connection]:
        """Remove a connection; returns it (or None if unknown) so callers
        can gate companion-state teardown on whether state actually went."""
        conn = self._conns.pop(client_tuple, None)
        if conn is not None:
            conn.closed = True
        return conn

    def lookup(self, client_tuple: FourTuple) -> Optional[Connection]:
        return self._conns.get(client_tuple)

    def expire(self, now: float) -> int:
        """Drop idle connections; returns how many were expired."""
        return len(self.expire_stale(now))

    def expire_stale(self, now: float) -> List[FourTuple]:
        """Drop idle connections and return their client tuples.

        Callers owning companion tables keyed by the same tuples (the
        switch's NAT table) must drop those entries too — conservation:
        NAT rewrite entries stay equal to open conntrack flows.
        """
        stale = [
            t for t, c in self._conns.items()
            if now - c.last_seen > self.idle_timeout
        ]
        for t in stale:
            del self._conns[t]
        self.expired += len(stale)
        return stale

    # -- affinity -----------------------------------------------------------

    def preferred_server(self, client_ip: str, principal: str) -> Optional[str]:
        return self._affinity.get((client_ip, principal))

    def forget_affinity(self, client_ip: str, principal: str) -> None:
        self._affinity.pop((client_ip, principal), None)


class ArenaConnTracker:
    """Slotted :class:`ConnTracker` for the L4 fast lane.

    Connections live in parallel slot arrays (no :class:`Connection`
    object per flow) indexed through one ``tuple -> slot`` dict, with an
    intrusive doubly-linked *expiry ring* threaded through the slots in
    last-seen order.  Because simulated time is monotone and a touched
    connection is relinked to the ring's tail, the ring head is always the
    most idle flow — so :meth:`expire_stale` walks from the head and stops
    at the first fresh entry: O(expired) instead of the scalar tracker's
    O(live) full-table scan per sweep.

    The public API matches :class:`ConnTracker` (``lookup``/``touch``
    synthesize :class:`Connection` views on demand for the scalar packet
    path and tests); the switch's flow path uses the slot operations
    directly and never builds a view.
    """

    _NIL = -1

    def __init__(self, idle_timeout: float = 60.0):
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.idle_timeout = float(idle_timeout)
        self._index: Dict[FourTuple, int] = {}
        # Read-only alias mirroring :attr:`ConnTracker.live`.
        self.live: Dict[FourTuple, int] = self._index
        # Parallel slot arrays; a slot on the free list holds stale values.
        self._tuples: List[Optional[FourTuple]] = []
        self._servers: List[str] = []
        self._principals: List[str] = []
        self._created: List[float] = []
        self._last_seen: List[float] = []
        self._packets: List[int] = []
        # Expiry ring: slot links ordered by last_seen (head = most idle).
        self._next: List[int] = []
        self._prev: List[int] = []
        self._head = self._NIL
        self._tail = self._NIL
        self._free: List[int] = []
        self._affinity: Dict[Tuple[str, str], str] = {}
        self.expired = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, client_tuple: FourTuple) -> bool:
        return client_tuple in self._index

    @property
    def _conns(self) -> Dict[FourTuple, Connection]:
        """Dict view in ring (last-seen) order — scalar-compat for tests."""
        out: Dict[FourTuple, Connection] = {}
        slot = self._head
        while slot != self._NIL:
            tup = self._tuples[slot]
            assert tup is not None
            out[tup] = self._view(slot)
            slot = self._next[slot]
        return out

    def _view(self, slot: int) -> Connection:
        tup = self._tuples[slot]
        assert tup is not None
        return Connection(
            client_tuple=tup,
            server=self._servers[slot],
            principal=self._principals[slot],
            created_at=self._created[slot],
            last_seen=self._last_seen[slot],
            packets=self._packets[slot],
        )

    # -- ring maintenance ---------------------------------------------------

    def _link_tail(self, slot: int) -> None:
        self._prev[slot] = self._tail
        self._next[slot] = self._NIL
        if self._tail != self._NIL:
            self._next[self._tail] = slot
        else:
            self._head = slot
        self._tail = slot

    def _unlink(self, slot: int) -> None:
        prv, nxt = self._prev[slot], self._next[slot]
        if prv != self._NIL:
            self._next[prv] = nxt
        else:
            self._head = nxt
        if nxt != self._NIL:
            self._prev[nxt] = prv
        else:
            self._tail = prv

    # -- connection lifecycle ----------------------------------------------

    def open_slot(
        self, client_tuple: FourTuple, server: str, principal: str, now: float
    ) -> int:
        """Fast-path open: record the flow, return its slot (no view)."""
        free = self._free
        if free:
            slot = free.pop()
            self._tuples[slot] = client_tuple
            self._servers[slot] = server
            self._principals[slot] = principal
            self._created[slot] = now
            self._last_seen[slot] = now
            self._packets[slot] = 1
        else:
            slot = len(self._tuples)
            self._tuples.append(client_tuple)
            self._servers.append(server)
            self._principals.append(principal)
            self._created.append(now)
            self._last_seen.append(now)
            self._packets.append(1)
            self._next.append(self._NIL)
            self._prev.append(self._NIL)
        self._index[client_tuple] = slot
        self._link_tail(slot)
        self._affinity[(client_tuple[0], principal)] = server
        return slot

    def open(
        self, client_tuple: FourTuple, server: str, principal: str, now: float
    ) -> Connection:
        return self._view(self.open_slot(client_tuple, server, principal, now))

    def touch(self, client_tuple: FourTuple, now: float) -> Optional[Connection]:
        slot = self._index.get(client_tuple)
        if slot is None:
            return None
        self._last_seen[slot] = now
        self._packets[slot] += 1
        # Relink at the tail: monotone `now` keeps the ring sorted.
        self._unlink(slot)
        self._link_tail(slot)
        return self._view(slot)

    def close(self, client_tuple: FourTuple) -> bool:
        """Remove a connection; truthy iff state was actually removed
        (scalar-compat: :meth:`ConnTracker.close` returns the connection)."""
        slot = self._index.pop(client_tuple, None)
        if slot is None:
            return False
        self._unlink(slot)
        self._tuples[slot] = None
        self._free.append(slot)
        return True

    def lookup(self, client_tuple: FourTuple) -> Optional[Connection]:
        slot = self._index.get(client_tuple)
        return None if slot is None else self._view(slot)

    def server_of(self, client_tuple: FourTuple) -> Optional[str]:
        """Fast-path lookup of just the assigned server (no view build)."""
        slot = self._index.get(client_tuple)
        return None if slot is None else self._servers[slot]

    def expire(self, now: float) -> int:
        return len(self.expire_stale(now))

    def expire_stale(self, now: float) -> List[FourTuple]:
        """Drop idle connections, walking the expiry ring from the head.

        Stops at the first fresh entry — the ring is last-seen-ordered
        (simulated time is monotone), so everything behind it is fresher.
        Same caller contract as :meth:`ConnTracker.expire_stale`.
        """
        stale: List[FourTuple] = []
        timeout = self.idle_timeout
        slot = self._head
        while slot != self._NIL and now - self._last_seen[slot] > timeout:
            nxt = self._next[slot]
            tup = self._tuples[slot]
            assert tup is not None
            stale.append(tup)
            del self._index[tup]
            self._tuples[slot] = None
            self._free.append(slot)
            slot = nxt
        # Detach the expired prefix in one cut.
        self._head = slot
        if slot != self._NIL:
            self._prev[slot] = self._NIL
        else:
            self._tail = self._NIL
        self.expired += len(stale)
        return stale

    # -- affinity -----------------------------------------------------------

    def preferred_server(self, client_ip: str, principal: str) -> Optional[str]:
        return self._affinity.get((client_ip, principal))

    def forget_affinity(self, client_ip: str, principal: str) -> None:
        self._affinity.pop((client_ip, principal), None)
