"""Connection tracking and client affinity.

Two concerns from §4.2:

1. *Connection affinity within a flow*: after a SYN is assigned a server,
   every subsequent packet of that connection must reach the same server
   (handled with :class:`repro.l4.nat.NatTable` mappings keyed by 4-tuple;
   this tracker owns their lifecycle and expiry).
2. *Client-machine affinity across connections*: "our implementation
   maintains connection affinity between client machines and servers to
   the extent allowed by the sharing agreements", which makes
   SSL-session-key reuse possible.  :meth:`ConnTracker.preferred_server`
   remembers each (client, principal)'s last server so the switch can
   keep routing there while the allocation still permits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.l4.packets import FourTuple

__all__ = ["ConnTracker", "Connection"]


@dataclass
class Connection:
    client_tuple: FourTuple
    server: str
    principal: str
    created_at: float
    last_seen: float
    packets: int = 1
    closed: bool = False


class ConnTracker:
    """Tracks live connections and per-(client, principal) server affinity."""

    def __init__(self, idle_timeout: float = 60.0):
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.idle_timeout = float(idle_timeout)
        self._conns: Dict[FourTuple, Connection] = {}
        self._affinity: Dict[Tuple[str, str], str] = {}
        self.expired = 0

    def __len__(self) -> int:
        return len(self._conns)

    # -- connection lifecycle ----------------------------------------------

    def open(
        self, client_tuple: FourTuple, server: str, principal: str, now: float
    ) -> Connection:
        conn = Connection(
            client_tuple=client_tuple, server=server, principal=principal,
            created_at=now, last_seen=now,
        )
        self._conns[client_tuple] = conn
        self._affinity[(client_tuple[0], principal)] = server
        return conn

    def touch(self, client_tuple: FourTuple, now: float) -> Optional[Connection]:
        conn = self._conns.get(client_tuple)
        if conn is not None:
            conn.last_seen = now
            conn.packets += 1
        return conn

    def close(self, client_tuple: FourTuple) -> None:
        conn = self._conns.pop(client_tuple, None)
        if conn is not None:
            conn.closed = True

    def lookup(self, client_tuple: FourTuple) -> Optional[Connection]:
        return self._conns.get(client_tuple)

    def expire(self, now: float) -> int:
        """Drop idle connections; returns how many were expired."""
        return len(self.expire_stale(now))

    def expire_stale(self, now: float) -> List[FourTuple]:
        """Drop idle connections and return their client tuples.

        Callers owning companion tables keyed by the same tuples (the
        switch's NAT table) must drop those entries too — conservation:
        NAT rewrite entries stay equal to open conntrack flows.
        """
        stale = [
            t for t, c in self._conns.items()
            if now - c.last_seen > self.idle_timeout
        ]
        for t in stale:
            del self._conns[t]
        self.expired += len(stale)
        return stale

    # -- affinity -----------------------------------------------------------

    def preferred_server(self, client_ip: str, principal: str) -> Optional[str]:
        return self._affinity.get((client_ip, principal))

    def forget_affinity(self, client_ip: str, principal: str) -> None:
        self._affinity.pop((client_ip, principal), None)
