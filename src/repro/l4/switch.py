"""The Layer-4 switch: the paper's kernel-module model (§4.2).

Packet path, as in the LVS-based prototype:

- A client SYN addressed to the virtual service address arrives.  If the
  current allocation (installed by the user-space daemon) has quota for the
  owning principal, the switch picks a server — honouring client-machine
  affinity when the allocation still permits that server — installs a NAT
  mapping, records the connection, and forwards the rewritten SYN.
- If there is no quota, the SYN goes into a per-principal kernel queue; a
  kernel thread reinjects queued SYNs in subsequent windows as allowance
  appears (oldest first, spread evenly across the window so releases do
  not bunch).  The queue is bounded; overflow drops the SYN (RST).
- Non-SYN packets of admitted connections are translated through the NAT
  table and forwarded to the recorded server; responses are rewritten back
  to the virtual address.

For the experiments the switch also exposes the same ``handle(request)``
admission API as the L7 redirector, wrapping each request into a SYN so the
full packet path (NAT, conntrack, affinity, reinjection) is exercised.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.cluster.client import Decision, Defer, Drop, Held
from repro.cluster.health import BackendHealthChecker
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.l4.conntrack import ConnTracker
from repro.l4.nat import NatTable
from repro.l4.packets import TcpFlags, TcpPacket
from repro.scheduling.allocator import Allocation
from repro.scheduling.queueing import ImplicitQuota
from repro.scheduling.window import WindowConfig
from repro.scheduling.wrr import SmoothWeightedRoundRobin
from repro.sim.engine import Simulator

__all__ = ["L4Switch"]


class L4Switch:
    """Kernel-module model: NAT redirection with per-principal SYN queues."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        principals: Tuple[str, ...],
        servers: Mapping[str, Union[Server, List[Server]]],
        window: WindowConfig = WindowConfig(),
        virtual_ip: str = "10.0.0.1",
        virtual_port: int = 80,
        max_syn_queue: int = 256,
        affinity: bool = True,
        spread_reinjection: bool = True,
        smoothing: float = 0.7,
        health: Optional[BackendHealthChecker] = None,
    ):
        self.sim = sim
        self.name = name
        self.principals = tuple(principals)
        self.window = window
        self.virtual_ip = virtual_ip
        self.virtual_port = int(virtual_port)
        self.max_syn_queue = int(max_syn_queue)
        self.affinity_enabled = bool(affinity)
        self.spread_reinjection = bool(spread_reinjection)
        self.smoothing = float(smoothing)
        # Fault model: when a health checker is attached, NAT forwarding
        # only targets backends in rotation (down/draining ones are
        # skipped); without one, a crashed backend surfaces as drops.
        self.health = health

        self.servers: Dict[str, List[Server]] = {}
        self._server_by_name: Dict[str, Tuple[str, Server]] = {}
        for owner, s in servers.items():
            pool = list(s) if isinstance(s, (list, tuple)) else [s]
            self.servers[owner] = pool
            for srv in pool:
                self._server_by_name[srv.name] = (owner, srv)

        self.nat = NatTable()
        self.conntrack = ConnTracker()
        self.quota = ImplicitQuota(self.principals)
        self._syn_queues: Dict[str, Deque[Tuple[TcpPacket, Optional[Callable]]]] = {
            p: deque() for p in self.principals
        }
        self._wrr: Dict[str, SmoothWeightedRoundRobin] = {
            p: SmoothWeightedRoundRobin() for p in self.principals
        }
        # Ephemeral port counter; wraps like a real stack's port space.  A
        # (client_ip, port) pair only has to stay unique among *live*
        # connections, and far fewer than 50k are ever concurrently open.
        self._ports = itertools.cycle(range(10_000, 60_000))
        self._pending_tuples: set = set()  # tuples of SYNs waiting in kernel queues
        self._arrivals: Dict[str, float] = {p: 0.0 for p in self.principals}
        self.demand_estimate: Dict[str, float] = {p: 0.0 for p in self.principals}
        self._weights: Dict[str, Dict[str, float]] = {p: {} for p in self.principals}
        # Per-window, per-(principal, server) forwarding budgets and usage.
        # The LP allocates per server *owner*; the budget is split across
        # the owner's pool by capacity so no single server is overrun, and
        # affinity may only route to a server while that server's budget
        # has room — "to the extent allowed by the sharing agreements".
        self._server_budget: Dict[str, Dict[str, float]] = {p: {} for p in self.principals}
        self._server_used: Dict[str, Dict[str, float]] = {p: {} for p in self.principals}

        # Telemetry
        self.admitted: Dict[str, int] = {p: 0 for p in self.principals}
        self.queued: Dict[str, int] = {p: 0 for p in self.principals}
        self.dropped: Dict[str, int] = {p: 0 for p in self.principals}
        self.reinjected: Dict[str, int] = {p: 0 for p in self.principals}
        self.affinity_hits = 0

    # -- daemon interface -----------------------------------------------------

    def install(self, alloc: Allocation) -> None:
        """The user-space daemon pushes the next window's allocation."""
        self.quota.new_window(alloc.quotas)
        for p, w in alloc.weights.items():
            usable = {owner: v for owner, v in w.items() if owner in self.servers}
            self._weights[p] = usable
            self._wrr[p].set_weights(usable)
            total_w = sum(usable.values())
            quota = alloc.quotas.get(p, 0.0)
            budget: Dict[str, float] = {}
            if total_w > 0:
                for owner, v in usable.items():
                    pool = self.servers[owner]
                    cap_total = sum(s.capacity for s in pool)
                    share = quota * v / total_w
                    for srv in pool:
                        # One request of slack so rounding does not starve.
                        budget[srv.name] = share * srv.capacity / cap_total + 1.0
            self._server_budget[p] = budget
            self._server_used[p] = {name: 0.0 for name in budget}
        self._end_window_accounting()
        self._schedule_reinjection()

    def local_demand(self) -> Dict[str, float]:
        """Kernel queue lengths plus the incoming-rate estimate — the
        'queue length information' the daemon aggregates."""
        return {
            p: len(self._syn_queues[p]) + self.demand_estimate[p]
            for p in self.principals
        }

    def queue_lengths(self) -> Dict[str, int]:
        return {p: len(q) for p, q in self._syn_queues.items()}

    def sweep_idle(self, now: float) -> int:
        """Expire idle connections *and* their NAT mappings together.

        Expiring conntrack alone leaks NAT entries forever (and keeps
        translating packets for flows the tracker has forgotten) — the
        invariant checker's "NAT entries == open conntrack flows" ledger
        caught exactly that.  Returns how many flows were expired.
        """
        stale = self.conntrack.expire_stale(now)
        for tup in stale:
            self.nat.remove(tup)
        return len(stale)

    def _end_window_accounting(self) -> None:
        alpha = self.smoothing
        for p in self.principals:
            self.demand_estimate[p] = (
                alpha * self._arrivals[p] + (1.0 - alpha) * self.demand_estimate[p]
            )
            self._arrivals[p] = 0.0

    # -- client adapter ------------------------------------------------------------

    def handle(self, request: Request, done: Optional[Callable[[Request], None]] = None) -> Decision:
        """Admission API used by :class:`repro.cluster.client.ClientMachine`:
        wraps the request in a SYN and runs the packet path.

        A SYN lost to kernel-queue overflow is reported as :class:`Defer`:
        the client's TCP stack would retransmit the SYN after a timeout, and
        the client model's jittered retry emulates that.
        """
        if request.principal not in self.quota.principals:
            return Drop()
        syn = TcpPacket(
            src_ip=request.client_id,
            src_port=self._free_port(request.client_id),
            dst_ip=self.virtual_ip,
            dst_port=self.virtual_port,
            flags=TcpFlags.SYN,
            request=request,
        )
        accepted = self.on_packet(syn, done=done)
        return Held() if accepted else Defer(self.window.length)

    def _free_port(self, client_ip: str) -> int:
        """Next ephemeral port whose (client, port) tuple is not in use.

        The counter wraps like a real port space; a port is reusable once
        its previous connection's NAT state is gone."""
        for _ in range(64):
            port = next(self._ports)
            tup = (client_ip, port, self.virtual_ip, self.virtual_port)
            if (
                self.nat.lookup(tup) is None
                and self.conntrack.lookup(tup) is None
                and tup not in self._pending_tuples
            ):
                return port
        raise RuntimeError(f"ephemeral port space exhausted for {client_ip}")

    # -- packet path -----------------------------------------------------------------

    def on_packet(self, pkt: TcpPacket, done: Optional[Callable] = None) -> bool:
        """Process one inbound packet; returns False if it was dropped."""
        if pkt.is_syn:
            return self._on_syn(pkt, done)
        # Data/FIN segment of an (expectedly) admitted connection.
        conn = self.conntrack.touch(pkt.four_tuple, self.sim.now)
        translated = self.nat.translate_in(pkt)
        if conn is None or translated is None:
            return False  # no state: the real switch would RST
        if pkt.flags & TcpFlags.FIN:
            self.conntrack.close(pkt.four_tuple)
            self.nat.remove(pkt.four_tuple)
        return True

    def _on_syn(self, pkt: TcpPacket, done: Optional[Callable]) -> bool:
        request = pkt.request
        if request is None or request.principal not in self.quota.principals:
            return False
        p = request.principal
        self._arrivals[p] += request.cost
        if self.quota.try_admit(p, cost=request.cost):
            return self._admit(pkt, done)
        q = self._syn_queues[p]
        if len(q) >= self.max_syn_queue:
            self.dropped[p] += 1
            return False
        q.append((pkt, done))
        self._pending_tuples.add(pkt.four_tuple)
        self.queued[p] += 1
        return True

    def _admit(self, pkt: TcpPacket, done: Optional[Callable]) -> bool:
        request = pkt.request
        assert request is not None
        self._pending_tuples.discard(pkt.four_tuple)
        p = request.principal
        server = self._pick_server(p, pkt.src_ip)
        if server is None:
            self.dropped[p] += 1
            return False
        owner, srv = self._server_by_name[server]
        self.nat.install(pkt.four_tuple, server, self.virtual_port, self.sim.now)
        self.conntrack.open(pkt.four_tuple, server, p, self.sim.now)
        rewritten = pkt.rewritten(server, self.virtual_port)
        accepted = srv.submit(
            rewritten.request,  # type: ignore[arg-type]
            done=lambda req, t=pkt.four_tuple, d=done: self._on_response(req, t, d),
        )
        if not accepted:
            # Backend refused (crashed or overflowed): tear the flow back
            # down so no NAT/conntrack state leaks for a dead connection.
            self.conntrack.close(pkt.four_tuple)
            self.nat.remove(pkt.four_tuple)
            self.dropped[p] += 1
            return False
        self.admitted[p] += 1
        return True

    def _on_response(
        self, request: Request, client_tuple, done: Optional[Callable]
    ) -> None:
        """Server completed: rewrite the response and tear down the flow."""
        server_name = request.served_by or ""
        resp = TcpPacket(
            src_ip=server_name,
            src_port=self.virtual_port,
            dst_ip=client_tuple[0],
            dst_port=client_tuple[1],
            flags=TcpFlags.ACK | TcpFlags.FIN,
            payload_bytes=request.size_bytes,
        )
        self.nat.translate_out(resp)  # restore the virtual source address
        self.conntrack.close(client_tuple)
        self.nat.remove(client_tuple)
        if done is not None:
            done(request)

    def _usable(self, name: str) -> bool:
        return self.health is None or self.health.is_healthy(name)

    def _pick_server(self, principal: str, client_ip: str) -> Optional[str]:
        budget = self._server_budget.get(principal) or {}
        used = self._server_used.setdefault(principal, {})
        if not budget:
            return None
        if self.affinity_enabled:
            pref = self.conntrack.preferred_server(client_ip, principal)
            # Affinity only "to the extent allowed by the sharing
            # agreements": the preferred server must still have unspent
            # allocation this window, otherwise affinity would skew the
            # LP's per-server split and overload that server.
            if (
                pref is not None
                and self._usable(pref)
                and used.get(pref, 0.0) < budget.get(pref, 0.0)
            ):
                used[pref] = used.get(pref, 0.0) + 1.0
                self.affinity_hits += 1
                return pref
        # Otherwise: the server with the most remaining budget this window
        # (deterministic proportional fill across the allocation).
        best = None
        best_slack = 0.0
        for name, b in budget.items():
            if not self._usable(name):
                continue
            slack = b - used.get(name, 0.0)
            if slack > best_slack:
                best, best_slack = name, slack
        if best is None:
            # Every budget exhausted (demand burst within a window): spill
            # proportionally to the budgets rather than refuse.
            usable = [n for n in budget if self._usable(n)]
            if not usable:
                return None
            best = max(usable, key=lambda n: budget[n] - used.get(n, 0.0))
        used[best] = used.get(best, 0.0) + 1.0
        return best

    # -- reinjection -------------------------------------------------------------------

    def _schedule_reinjection(self) -> None:
        """Kernel thread: reinject queued SYNs as the new window's quota
        allows, oldest first, optionally spread across the window."""
        releases: List[Tuple[float, TcpPacket, Optional[Callable]]] = []
        offset = 0
        for p in self.principals:
            q = self._syn_queues[p]
            while q:
                pkt, done = q[0]
                req = pkt.request
                assert req is not None
                if not self.quota.try_admit(p, cost=req.cost):
                    break
                q.popleft()
                self.reinjected[p] += 1
                releases.append((0.0, pkt, done))
        n = len(releases)
        for idx, (_, pkt, done) in enumerate(releases):
            delay = (idx / n) * self.window.length if self.spread_reinjection and n else 0.0
            self.sim.schedule(delay, self._reinject, pkt, done)

    def _reinject(self, pkt: TcpPacket, done: Optional[Callable]) -> None:
        self._admit(pkt, done)
