"""The Layer-4 switch: the paper's kernel-module model (§4.2).

Packet path, as in the LVS-based prototype:

- A client SYN addressed to the virtual service address arrives.  If the
  current allocation (installed by the user-space daemon) has quota for the
  owning principal, the switch picks a server — honouring client-machine
  affinity when the allocation still permits that server — installs a NAT
  mapping, records the connection, and forwards the rewritten SYN.
- If there is no quota, the SYN goes into a per-principal kernel queue; a
  kernel thread reinjects queued SYNs in subsequent windows as allowance
  appears (oldest first, spread evenly across the window so releases do
  not bunch).  The queue is bounded; overflow drops the SYN (RST).
- Non-SYN packets of admitted connections are translated through the NAT
  table and forwarded to the recorded server; responses are rewritten back
  to the virtual address.

For the experiments the switch also exposes the same ``handle(request)``
admission API as the L7 redirector, wrapping each request into a SYN so the
full packet path (NAT, conntrack, affinity, reinjection) is exercised.

Two data-path lanes share the admission arithmetic:

- the **scalar lane** (``fast_lane=False``) materialises every segment as
  a :class:`TcpPacket`, uses the dict-based NAT/conntrack tables, and
  schedules one engine event per reinjected SYN — the reference path;
- the **fast lane** (``fast_lane=True``, default) carries each flow as a
  single slotted :class:`FlowRecord`, stores state in the arena tables
  (:class:`ArenaNatTable` / :class:`ArenaConnTracker`), drains each
  window's reinjection queue through one coalesced pump event, and picks
  servers from a precomputed best-slack heap.

Quota draws, queue checks, tie-breakers and event times are identical in
both lanes, so per-window admitted-rate traces are bit-identical — the
``repro check --scenario fig9|fig10`` harness diffs the two lanes' SHA-256
trace digests to enforce exactly that.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.cluster.client import Decision, Defer, Drop, Held
from repro.cluster.health import BackendHealthChecker
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.l4.conntrack import ArenaConnTracker, ConnTracker
from repro.l4.nat import ArenaNatTable, NatTable
from repro.l4.packets import FlowRecord, FourTuple, TcpFlags, TcpPacket
from repro.scheduling.allocator import Allocation
from repro.scheduling.queueing import ImplicitQuota
from repro.scheduling.window import WindowConfig
from repro.scheduling.wrr import SmoothWeightedRoundRobin
from repro.sim.engine import Simulator

__all__ = ["L4Switch", "PortSpaceExhausted"]

# Ephemeral port range modelled after a real stack's net.ipv4.ip_local_port_range.
_PORT_LO = 10_000
_PORT_SPAN = 50_000


class PortSpaceExhausted(RuntimeError):
    """Every (client, port) tuple in the ephemeral range is in use.

    Subclasses :class:`RuntimeError` for callers that caught the previous
    untyped error.
    """


class L4Switch:
    """Kernel-module model: NAT redirection with per-principal SYN queues."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        principals: Tuple[str, ...],
        servers: Mapping[str, Union[Server, List[Server]]],
        window: WindowConfig = WindowConfig(),
        virtual_ip: str = "10.0.0.1",
        virtual_port: int = 80,
        max_syn_queue: int = 256,
        affinity: bool = True,
        spread_reinjection: bool = True,
        smoothing: float = 0.7,
        health: Optional[BackendHealthChecker] = None,
        fast_lane: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.principals = tuple(principals)
        self.window = window
        self.virtual_ip = virtual_ip
        self.virtual_port = int(virtual_port)
        self.max_syn_queue = int(max_syn_queue)
        self.affinity_enabled = bool(affinity)
        self.spread_reinjection = bool(spread_reinjection)
        self.smoothing = float(smoothing)
        self.fast_lane = bool(fast_lane)
        # Fault model: when a health checker is attached, NAT forwarding
        # only targets backends in rotation (down/draining ones are
        # skipped); without one, a crashed backend surfaces as drops.
        self.health = health

        self.servers: Dict[str, List[Server]] = {}
        self._server_by_name: Dict[str, Tuple[str, Server]] = {}
        for owner, s in servers.items():
            pool = list(s) if isinstance(s, (list, tuple)) else [s]
            self.servers[owner] = pool
            for srv in pool:
                self._server_by_name[srv.name] = (owner, srv)

        if self.fast_lane:
            self.nat: Union[NatTable, ArenaNatTable] = ArenaNatTable()
            self.conntrack: Union[ConnTracker, ArenaConnTracker] = ArenaConnTracker()
            # Slot operations, pre-bound: the flow path calls these tens of
            # thousands of times per simulated minute, and the attribute
            # chain + bind per call is measurable there.
            self._nat_install_slot = self.nat.install_slot
            self._nat_remove = self.nat.remove
            self._ct_open_slot = self.conntrack.open_slot
            self._ct_close = self.conntrack.close
        else:
            self.nat = NatTable()
            self.conntrack = ConnTracker()
        # Live-tuple mappings, aliased for membership probes in the port
        # allocator (both lanes): `tup in dict` with no method frame.
        self._nat_live = self.nat.live
        self._ct_live = self.conntrack.live
        self.quota = ImplicitQuota(self.principals)
        # `quota.principals` is a list-building property; admission tests
        # membership once per request, so keep a frozen set.
        self._principal_set = frozenset(self.principals)
        self._try_admit = self.quota.try_admit
        # Scalar lane queues (pkt, done) pairs; the fast lane queues
        # FlowRecords.  A switch only ever runs one lane, so the deques
        # never mix item kinds.
        self._syn_queues: Dict[str, Deque[Any]] = {
            p: deque() for p in self.principals
        }
        self._wrr: Dict[str, SmoothWeightedRoundRobin] = {
            p: SmoothWeightedRoundRobin() for p in self.principals
        }
        # Ephemeral port space, per client IP: freed ports are reused via a
        # free list; otherwise a wrapping cursor walks the range.  A
        # (client, port) pair only has to stay unique among *live*
        # connections, and far fewer than the 50k-port span are ever
        # concurrently open; a full wrap without a free tuple raises
        # :class:`PortSpaceExhausted`.
        self._free_ports: Dict[str, List[int]] = {}
        self._port_cursor: Dict[str, int] = {}
        self._pending_tuples: set = set()  # tuples of SYNs waiting in kernel queues
        self._arrivals: Dict[str, float] = {p: 0.0 for p in self.principals}
        self.demand_estimate: Dict[str, float] = {p: 0.0 for p in self.principals}
        self._weights: Dict[str, Dict[str, float]] = {p: {} for p in self.principals}
        # Per-window, per-(principal, server) forwarding budgets and usage.
        # The LP allocates per server *owner*; the budget is split across
        # the owner's pool by capacity so no single server is overrun, and
        # affinity may only route to a server while that server's budget
        # has room — "to the extent allowed by the sharing agreements".
        self._server_budget: Dict[str, Dict[str, float]] = {p: {} for p in self.principals}
        self._server_used: Dict[str, Dict[str, float]] = {p: {} for p in self.principals}
        # Fast lane: per-principal best-slack heap over the window's server
        # budgets, entries (-slack, insertion_idx, name).  Rebuilt each
        # install; revalidated lazily (see _pick_from_heap).
        self._slack_heap: Dict[str, List[Tuple[float, int, str]]] = {
            p: [] for p in self.principals
        }
        # Decisions are frozen dataclasses the clients only type-check, so
        # the fast lane hands out shared singletons instead of allocating
        # one per SYN.
        self._held = Held()
        self._defer = Defer(self.window.length)

        # Telemetry
        self.admitted: Dict[str, int] = {p: 0 for p in self.principals}
        self.queued: Dict[str, int] = {p: 0 for p in self.principals}
        self.dropped: Dict[str, int] = {p: 0 for p in self.principals}
        self.reinjected: Dict[str, int] = {p: 0 for p in self.principals}
        self.affinity_hits = 0

    # -- daemon interface -----------------------------------------------------

    def install(self, alloc: Allocation) -> None:
        """The user-space daemon pushes the next window's allocation."""
        self.quota.new_window(alloc.quotas)
        for p, w in alloc.weights.items():
            usable = {owner: v for owner, v in w.items() if owner in self.servers}
            self._weights[p] = usable
            self._wrr[p].set_weights(usable)
            total_w = sum(usable.values())
            quota = alloc.quotas.get(p, 0.0)
            budget: Dict[str, float] = {}
            if total_w > 0:
                for owner, v in usable.items():
                    pool = self.servers[owner]
                    cap_total = sum(s.capacity for s in pool)
                    share = quota * v / total_w
                    for srv in pool:
                        # One request of slack so rounding does not starve.
                        budget[srv.name] = share * srv.capacity / cap_total + 1.0
            self._server_budget[p] = budget
            self._server_used[p] = {name: 0.0 for name in budget}
            if self.fast_lane:
                # used is all-zero here, so slack == budget exactly.
                heap = [(-b, i, name) for i, (name, b) in enumerate(budget.items())]
                heapq.heapify(heap)
                self._slack_heap[p] = heap
        self._end_window_accounting()
        self._schedule_reinjection()

    def local_demand(self) -> Dict[str, float]:
        """Kernel queue lengths plus the incoming-rate estimate — the
        'queue length information' the daemon aggregates."""
        return {
            p: len(self._syn_queues[p]) + self.demand_estimate[p]
            for p in self.principals
        }

    def queue_lengths(self) -> Dict[str, int]:
        return {p: len(q) for p, q in self._syn_queues.items()}

    def sweep_idle(self, now: float) -> int:
        """Expire idle connections *and* their NAT mappings together.

        Expiring conntrack alone leaks NAT entries forever (and keeps
        translating packets for flows the tracker has forgotten) — the
        invariant checker's "NAT entries == open conntrack flows" ledger
        caught exactly that.  Returns how many flows were expired.
        """
        stale = self.conntrack.expire_stale(now)
        for tup in stale:
            if self.nat.remove(tup):
                self._release_port(tup[0], tup[1])
        return len(stale)

    def _end_window_accounting(self) -> None:
        alpha = self.smoothing
        for p in self.principals:
            self.demand_estimate[p] = (
                alpha * self._arrivals[p] + (1.0 - alpha) * self.demand_estimate[p]
            )
            self._arrivals[p] = 0.0

    # -- client adapter ------------------------------------------------------------

    def handle(self, request: Request, done: Optional[Callable[[Request], None]] = None) -> Decision:
        """Admission API used by :class:`repro.cluster.client.ClientMachine`:
        wraps the request in a SYN and runs the packet path.

        A SYN lost to kernel-queue overflow is reported as :class:`Defer`:
        the client's TCP stack would retransmit the SYN after a timeout, and
        the client model's jittered retry emulates that.
        """
        if request.principal not in self._principal_set:
            return Drop()
        if self.fast_lane:
            return self._handle_flow(request, done)
        syn = TcpPacket(
            src_ip=request.client_id,
            src_port=self._free_port(request.client_id),
            dst_ip=self.virtual_ip,
            dst_port=self.virtual_port,
            flags=TcpFlags.SYN,
            request=request,
        )
        accepted = self.on_packet(syn, done=done)
        return Held() if accepted else Defer(self.window.length)

    def _free_port(self, client_ip: str) -> int:
        """Next ephemeral port whose (client, port) tuple is not in use."""
        return self._claim_tuple(client_ip)[1]

    def _claim_tuple(self, client_ip: str) -> FourTuple:
        """Allocate a free (client, port, vip, vport) tuple.

        Freed ports are preferred (LIFO — cache-warm and keeps the cursor
        from wrapping); each candidate is re-checked against live state, so
        a stray double-release can never hand out a port that is still in
        use.  Falls back to a per-client wrapping cursor over the whole
        range and raises :class:`PortSpaceExhausted` after a full wrap —
        the previous fixed-probe-count search degraded linearly under
        pressure and then failed spuriously long before true exhaustion.
        """
        nat, ct, pending = self._nat_live, self._ct_live, self._pending_tuples
        vip, vport = self.virtual_ip, self.virtual_port
        free = self._free_ports.get(client_ip)
        while free:
            port = free.pop()
            tup = (client_ip, port, vip, vport)
            if tup not in nat and tup not in ct and tup not in pending:
                return tup
        start = self._port_cursor.get(client_ip, 0)
        for off in range(_PORT_SPAN):
            idx = start + off
            if idx >= _PORT_SPAN:
                idx -= _PORT_SPAN
            tup = (client_ip, _PORT_LO + idx, vip, vport)
            if tup not in nat and tup not in ct and tup not in pending:
                self._port_cursor[client_ip] = idx + 1 if idx + 1 < _PORT_SPAN else 0
                return tup
        raise PortSpaceExhausted(
            f"all {_PORT_SPAN} ephemeral ports for {client_ip} are in use"
        )

    def _release_port(self, client_ip: str, port: int) -> None:
        """Return a port to the client's free list once its state is gone."""
        free = self._free_ports.get(client_ip)
        if free is None:
            free = self._free_ports[client_ip] = []
        free.append(port)

    # -- fast lane (flow records) ------------------------------------------------

    def _handle_flow(
        self, request: Request, done: Optional[Callable[[Request], None]]
    ) -> Decision:
        """Fast-lane admission: same arithmetic as ``_on_syn``, one
        :class:`FlowRecord` instead of per-segment packets."""
        p = request.principal
        cost = request.cost
        self._arrivals[p] += cost
        if self._try_admit(p, cost):
            flow = FlowRecord(
                self, request, done, self._claim_tuple(request.client_id)
            )
            return self._held if self._admit_flow(flow) else self._defer
        q = self._syn_queues[p]
        if len(q) >= self.max_syn_queue:
            # Overflow drop: no port was claimed yet, nothing to release.
            self.dropped[p] += 1
            return self._defer
        flow = FlowRecord(self, request, done, self._claim_tuple(request.client_id))
        q.append(flow)
        self._pending_tuples.add(flow.tup)
        self.queued[p] += 1
        return self._held

    def _admit_flow(self, flow: FlowRecord) -> bool:
        """Mirror of ``_admit`` over a flow record: same server choice,
        same submit time, no packet rewrites."""
        tup = flow.tup
        self._pending_tuples.discard(tup)
        p = flow.request.principal
        server = self._pick_server(p, tup[0])
        if server is None:
            self.dropped[p] += 1
            self._release_port(tup[0], tup[1])
            return False
        srv = self._server_by_name[server][1]
        now = self.sim.now
        self._nat_install_slot(tup, server, self.virtual_port, now)
        self._ct_open_slot(tup, server, p, now)
        flow.server = server
        # The record itself is the completion callback — no closure.
        if not srv.submit(flow.request, done=flow):
            self._ct_close(tup)
            if self._nat_remove(tup):
                self._release_port(tup[0], tup[1])
            self.dropped[p] += 1
            return False
        self.admitted[p] += 1
        return True

    def _on_response_flow(self, flow: FlowRecord, request: Request) -> None:
        """Server completed a fast-lane flow: tear down and report.

        The scalar path builds a response packet and SNATs it through the
        table; here the rewrite is a counter bump — gated, like the port
        release, on the NAT mapping still existing (a FIN may already have
        torn the flow down)."""
        tup = flow.tup
        flow.response_bytes = request.size_bytes
        self._ct_close(tup)
        if self._nat_remove(tup):
            self.nat.rewrites_out += 1
            self._release_port(tup[0], tup[1])
        if flow.done is not None:
            flow.done(request)

    # -- packet path -----------------------------------------------------------------

    def on_packet(self, pkt: TcpPacket, done: Optional[Callable] = None) -> bool:
        """Process one inbound packet; returns False if it was dropped."""
        if pkt.is_syn:
            return self._on_syn(pkt, done)
        # Data/FIN segment of an (expectedly) admitted connection.
        conn = self.conntrack.touch(pkt.four_tuple, self.sim.now)
        translated = self.nat.translate_in(pkt)
        if conn is None or translated is None:
            return False  # no state: the real switch would RST
        if pkt.flags & TcpFlags.FIN:
            # The port is NOT released here: the server completion for
            # this flow may still be in flight and will reference the
            # tuple; releasing now could hand it to a new flow first.
            # The tuple becomes reusable through the cursor's own
            # liveness check instead.
            self.conntrack.close(pkt.four_tuple)
            self.nat.remove(pkt.four_tuple)
        return True

    def _on_syn(self, pkt: TcpPacket, done: Optional[Callable]) -> bool:
        request = pkt.request
        if request is None or request.principal not in self.quota.principals:
            return False
        p = request.principal
        self._arrivals[p] += request.cost
        if self.quota.try_admit(p, cost=request.cost):
            return self._admit(pkt, done)
        q = self._syn_queues[p]
        if len(q) >= self.max_syn_queue:
            self.dropped[p] += 1
            return False
        q.append((pkt, done))
        self._pending_tuples.add(pkt.four_tuple)
        self.queued[p] += 1
        return True

    def _admit(self, pkt: TcpPacket, done: Optional[Callable]) -> bool:
        request = pkt.request
        assert request is not None
        self._pending_tuples.discard(pkt.four_tuple)
        p = request.principal
        server = self._pick_server(p, pkt.src_ip)
        if server is None:
            self.dropped[p] += 1
            self._release_port(pkt.src_ip, pkt.src_port)
            return False
        owner, srv = self._server_by_name[server]
        self.nat.install(pkt.four_tuple, server, self.virtual_port, self.sim.now)
        self.conntrack.open(pkt.four_tuple, server, p, self.sim.now)
        rewritten = pkt.rewritten(server, self.virtual_port)
        accepted = srv.submit(
            rewritten.request,  # type: ignore[arg-type]
            done=lambda req, t=pkt.four_tuple, d=done: self._on_response(req, t, d),
        )
        if not accepted:
            # Backend refused (crashed or overflowed): tear the flow back
            # down so no NAT/conntrack state leaks for a dead connection.
            self.conntrack.close(pkt.four_tuple)
            if self.nat.remove(pkt.four_tuple):
                self._release_port(pkt.src_ip, pkt.src_port)
            self.dropped[p] += 1
            return False
        self.admitted[p] += 1
        return True

    def _on_response(
        self, request: Request, client_tuple, done: Optional[Callable]
    ) -> None:
        """Server completed: rewrite the response and tear down the flow."""
        server_name = request.served_by or ""
        resp = TcpPacket(
            src_ip=server_name,
            src_port=self.virtual_port,
            dst_ip=client_tuple[0],
            dst_port=client_tuple[1],
            flags=TcpFlags.ACK | TcpFlags.FIN,
            payload_bytes=request.size_bytes,
        )
        self.nat.translate_out(resp)  # restore the virtual source address
        self.conntrack.close(client_tuple)
        if self.nat.remove(client_tuple):
            self._release_port(client_tuple[0], client_tuple[1])
        if done is not None:
            done(request)

    def _usable(self, name: str) -> bool:
        return self.health is None or self.health.is_healthy(name)

    def _pick_server(self, principal: str, client_ip: str) -> Optional[str]:
        budget = self._server_budget.get(principal) or {}
        if not budget:
            return None
        used = self._server_used.get(principal)
        if used is None:
            used = self._server_used[principal] = {}
        if self.affinity_enabled:
            pref = self.conntrack.preferred_server(client_ip, principal)
            # Affinity only "to the extent allowed by the sharing
            # agreements": the preferred server must still have unspent
            # allocation this window, otherwise affinity would skew the
            # LP's per-server split and overload that server.
            if pref is not None:
                u = used.get(pref, 0.0)
                if u < budget.get(pref, 0.0) and self._usable(pref):
                    used[pref] = u + 1.0
                    self.affinity_hits += 1
                    return pref
        if self.fast_lane:
            best = self._pick_from_heap(principal, budget, used)
        else:
            # The server with the most remaining budget this window
            # (deterministic proportional fill across the allocation).
            best = None
            best_slack = 0.0
            for name, b in budget.items():
                if not self._usable(name):
                    continue
                slack = b - used.get(name, 0.0)
                if slack > best_slack:
                    best, best_slack = name, slack
        if best is None:
            # Every budget exhausted (demand burst within a window): spill
            # proportionally to the budgets rather than refuse.
            usable = [n for n in budget if self._usable(n)]
            if not usable:
                return None
            best = max(usable, key=lambda n: budget[n] - used.get(n, 0.0))
        used[best] = used.get(best, 0.0) + 1.0
        return best

    def _pick_from_heap(
        self,
        principal: str,
        budget: Dict[str, float],
        used: Dict[str, float],
    ) -> Optional[str]:
        """Max-slack pick via the precomputed heap, O(log n) amortised.

        Entries are lazily revalidated: ``used`` moves under the heap
        (affinity hits, previous picks), so slack recorded in an entry can
        only *overstate* the truth.  The top therefore bounds the real
        maximum; a stale top is corrected in place and the loop retried.
        Slack is always recomputed from ``budget``/``used`` — never by
        arithmetic on a previous slack — so the comparison keys are
        bit-identical to the scalar scan's, and the ``insertion_idx``
        tie-break reproduces its first-in-dict-order choice exactly.
        """
        heap = self._slack_heap.get(principal)
        if not heap:
            return None
        set_aside: List[Tuple[float, int, str]] = []
        best: Optional[str] = None
        health = self.health
        while heap:
            neg, idx, name = heap[0]
            slack = budget[name] - used.get(name, 0.0)
            if -neg != slack:
                heapq.heapreplace(heap, (-slack, idx, name))
                continue
            if slack <= 0.0:
                break  # true maximum is non-positive -> caller spills
            if health is not None and not health.is_healthy(name):
                set_aside.append(heapq.heappop(heap))
                continue
            best = name
            break
        for entry in set_aside:
            heapq.heappush(heap, entry)
        return best

    # -- reinjection -------------------------------------------------------------------

    def _schedule_reinjection(self) -> None:
        """Kernel thread: reinject queued SYNs as the new window's quota
        allows, oldest first, optionally spread across the window.

        Both lanes consume quota for every release *here*, at install
        time, so the per-window admitted counts are fixed before any
        reinjection fires.  The scalar lane then schedules one engine
        event per SYN; the fast lane coalesces the whole batch into a
        single pump event that re-arms itself along the same release
        times — one outstanding heap entry instead of N.
        """
        if self.fast_lane:
            flows: List[FlowRecord] = []
            for p in self.principals:
                q = self._syn_queues[p]
                while q:
                    flow = q[0]
                    if not self._try_admit(p, flow.request.cost):
                        break
                    q.popleft()
                    self.reinjected[p] += 1
                    flows.append(flow)
            n = len(flows)
            if not n:
                return
            if not self.spread_reinjection:
                self.sim.schedule(0.0, self._pump_reinjection, flows, None, 0)
                return
            # Absolute release times, computed with the exact float
            # expression the scalar lane uses (now + (idx / n) * length),
            # so both lanes admit at bit-identical instants.
            now = self.sim.now
            length = self.window.length
            times = [now + (idx / n) * length for idx in range(n)]
            self.sim.schedule_at(times[0], self._pump_reinjection, flows, times, 0)
            return
        releases: List[Tuple[float, TcpPacket, Optional[Callable]]] = []
        for p in self.principals:
            q = self._syn_queues[p]
            while q:
                pkt, done = q[0]
                req = pkt.request
                assert req is not None
                if not self.quota.try_admit(p, cost=req.cost):
                    break
                q.popleft()
                self.reinjected[p] += 1
                releases.append((0.0, pkt, done))
        n = len(releases)
        for idx, (_, pkt, done) in enumerate(releases):
            delay = (idx / n) * self.window.length if self.spread_reinjection and n else 0.0
            self.sim.schedule(delay, self._reinject, pkt, done)

    def _pump_reinjection(
        self,
        flows: List[FlowRecord],
        times: Optional[List[float]],
        i: int,
    ) -> None:
        """Fast-lane kernel thread: admit every due release, then re-arm
        once at the next release time (coalesced drain)."""
        n = len(flows)
        if times is None:
            while i < n:
                self._admit_flow(flows[i])
                i += 1
            return
        now = self.sim.now
        while i < n and times[i] <= now:
            self._admit_flow(flows[i])
            i += 1
        if i < n:
            self.sim.schedule_at(times[i], self._pump_reinjection, flows, times, i)

    def _reinject(self, pkt: TcpPacket, done: Optional[Callable]) -> None:
        self._admit(pkt, done)
