"""The user-space daemon of the Layer-4 prototype (§4.2).

"The user space daemon periodically collects queue length information from
the kernel module, calculates scheduling decisions by solving the linear
programming models discussed in Section 3, and feeds allocation
information for the next time window into the kernel module."

:class:`L4Daemon` does exactly that: each window it reads the switch's
kernel-queue lengths (plus its incoming-rate estimate), runs the shared
:class:`repro.scheduling.allocator.WindowAllocator` (which consults the
combining tree for global state), and installs the resulting allocation
into the switch.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.coordination.protocol import AggregationNode
from repro.core.access import AccessLevels
from repro.l4.switch import L4Switch
from repro.scheduling.allocator import Allocation, WindowAllocator
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator
from repro.sim.monitor import RateMeter
from repro.sim.stats import StreamingStats

__all__ = ["L4Daemon"]


class L4Daemon:
    """Periodic LP-solving controller for one :class:`L4Switch`."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        switch: L4Switch,
        access: AccessLevels,
        window: WindowConfig = WindowConfig(),
        mode: str = "community",
        prices: Optional[Mapping[str, float]] = None,
        capacity: Optional[float] = None,
        n_redirectors: int = 1,
        backend: str = "auto",
        conntrack_sweep: float = 10.0,
        lp_cache: bool = True,
        stale_after: Optional[float] = None,
    ):
        self.sim = sim
        self.name = name
        self.switch = switch
        self.window = window
        self.allocator = WindowAllocator(
            access,
            window=window,
            mode=mode,
            prices=prices,
            capacity=capacity,
            n_redirectors=n_redirectors,
            backend=backend,
            server_capacities={
                owner: sum(s.capacity for s in pool)
                for owner, pool in switch.servers.items()
            },
            lp_cache=lp_cache,
            stale_after=stale_after,
        )
        self.last_allocation: Optional[Allocation] = None
        self.windows = 0
        # Per-principal admitted/refused accounting through the same
        # bounded-memory stats types the L7 path reports with: a
        # window-binned RateMeter holds the per-window admitted/refused
        # traces (what the paper's Fig 9/10 plot, and what the lane-parity
        # digest hashes), and StreamingStats keeps O(1) moments of the
        # per-window counts instead of an unbounded ad-hoc list.
        self.admission_meter = RateMeter(bin_width=window.length)
        self.admitted_stats: Dict[str, StreamingStats] = {
            p: StreamingStats() for p in switch.principals
        }
        self.refused_stats: Dict[str, StreamingStats] = {
            p: StreamingStats() for p in switch.principals
        }
        self._last_admitted: Dict[str, int] = dict(switch.admitted)
        self._last_dropped: Dict[str, int] = dict(switch.dropped)
        sim.process(self._driver(), name=f"l4d[{name}]")
        if conntrack_sweep > 0:
            sim.every(conntrack_sweep, self._sweep, start=conntrack_sweep)

    def attach(self, node: AggregationNode) -> None:
        """Attach the combining-tree protocol node for this daemon."""
        self.allocator.attach(node)

    def set_access(self, access: AccessLevels) -> None:
        """Adopt renegotiated access levels from the next window on."""
        self.allocator.set_access(access)

    @property
    def used_fallback_windows(self) -> int:
        return self.allocator.fallback_windows

    def local_demand(self) -> Dict[str, float]:
        """Supplier callback for the aggregation protocol."""
        return self.switch.local_demand()

    def admitted_series(self, principal: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-window admitted counts as (window-midpoint times, rates)."""
        return self.admission_meter.series(f"admitted:{principal}")

    def refused_series(self, principal: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-window refused (dropped) counts, same shape as admitted."""
        return self.admission_meter.series(f"refused:{principal}")

    def _driver(self):
        while True:
            yield self.window.length
            # Snapshot the window that just ended *before* install: the
            # install's reinjection drain consumes next-window quota and
            # admits synchronously, so its counts belong to the new window.
            self._account_window()
            alloc = self.allocator.compute(
                self.switch.local_demand(), now=self.sim.now
            )
            self.last_allocation = alloc
            self.windows += 1
            self.switch.install(alloc)

    def _account_window(self) -> None:
        t_mid = self.sim.now - self.window.length / 2.0
        for p in self.switch.principals:
            adm = self.switch.admitted[p]
            ref = self.switch.dropped[p]
            d_adm = adm - self._last_admitted[p]
            d_ref = ref - self._last_dropped[p]
            self._last_admitted[p] = adm
            self._last_dropped[p] = ref
            # Zero-weight records still land so every window appears in
            # the series — the trace's *shape* is part of the digest.
            self.admission_meter.record(f"admitted:{p}", t_mid, weight=d_adm)
            self.admission_meter.record(f"refused:{p}", t_mid, weight=d_ref)
            self.admitted_stats[p].add(float(d_adm))
            self.refused_stats[p].add(float(d_ref))

    def _sweep(self) -> None:
        self.switch.sweep_idle(self.sim.now)
