"""The user-space daemon of the Layer-4 prototype (§4.2).

"The user space daemon periodically collects queue length information from
the kernel module, calculates scheduling decisions by solving the linear
programming models discussed in Section 3, and feeds allocation
information for the next time window into the kernel module."

:class:`L4Daemon` does exactly that: each window it reads the switch's
kernel-queue lengths (plus its incoming-rate estimate), runs the shared
:class:`repro.scheduling.allocator.WindowAllocator` (which consults the
combining tree for global state), and installs the resulting allocation
into the switch.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.coordination.protocol import AggregationNode
from repro.core.access import AccessLevels
from repro.l4.switch import L4Switch
from repro.scheduling.allocator import Allocation, WindowAllocator
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator

__all__ = ["L4Daemon"]


class L4Daemon:
    """Periodic LP-solving controller for one :class:`L4Switch`."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        switch: L4Switch,
        access: AccessLevels,
        window: WindowConfig = WindowConfig(),
        mode: str = "community",
        prices: Optional[Mapping[str, float]] = None,
        capacity: Optional[float] = None,
        n_redirectors: int = 1,
        backend: str = "auto",
        conntrack_sweep: float = 10.0,
        lp_cache: bool = True,
        stale_after: Optional[float] = None,
    ):
        self.sim = sim
        self.name = name
        self.switch = switch
        self.window = window
        self.allocator = WindowAllocator(
            access,
            window=window,
            mode=mode,
            prices=prices,
            capacity=capacity,
            n_redirectors=n_redirectors,
            backend=backend,
            server_capacities={
                owner: sum(s.capacity for s in pool)
                for owner, pool in switch.servers.items()
            },
            lp_cache=lp_cache,
            stale_after=stale_after,
        )
        self.last_allocation: Optional[Allocation] = None
        self.windows = 0
        sim.process(self._driver(), name=f"l4d[{name}]")
        if conntrack_sweep > 0:
            sim.every(conntrack_sweep, self._sweep, start=conntrack_sweep)

    def attach(self, node: AggregationNode) -> None:
        """Attach the combining-tree protocol node for this daemon."""
        self.allocator.attach(node)

    def set_access(self, access: AccessLevels) -> None:
        """Adopt renegotiated access levels from the next window on."""
        self.allocator.set_access(access)

    @property
    def used_fallback_windows(self) -> int:
        return self.allocator.fallback_windows

    def local_demand(self) -> Dict[str, float]:
        """Supplier callback for the aggregation protocol."""
        return self.switch.local_demand()

    def _driver(self):
        while True:
            yield self.window.length
            alloc = self.allocator.compute(
                self.switch.local_demand(), now=self.sim.now
            )
            self.last_allocation = alloc
            self.windows += 1
            self.switch.install(alloc)

    def _sweep(self) -> None:
        self.switch.sweep_idle(self.sim.now)
