"""Columnar lane for the L4 switch: windowed bulk flow admission.

:class:`ColumnarL4Switch` keeps the real :class:`L4Switch` admission state
— quota, per-server budgets/used/heap, EWMA demand, kernel SYN queues —
and replays the fast lane's per-flow decisions from columnar client
batches inside the engine pump, one Python step per *flow* but zero heap
events, zero :class:`Request`/:class:`FlowRecord` objects and zero
NAT/port/conntrack-ring bookkeeping on the hot path.

What is skipped is exactly the unobservable part: NAT slots, ephemeral
ports and the conntrack expiry ring feed no digest (server counters,
meters and per-window admitted/dropped traces never read them), and the
idle sweep over an empty ring is a no-op.  Client-machine affinity *is*
observable (it steers ``_pick_server``), so admissions write the
``(client, principal) -> server`` affinity entry directly — the only
effect ``open_slot`` has on later decisions.

Reinjection becomes data instead of events: the daemon's ``install`` still
drains the SYN queues against next-window quota (so per-window admitted
counts stay fixed at install time, like both other lanes), but the
releases are recorded with their exact scalar-lane times
``now + (idx / n) * length`` and merged into the next pump's arrival
stream.  A release at its install boundary fires *after* arrivals at that
instant (the scalar reinjection event is scheduled at the boundary and so
carries the largest sequence number); all other releases precede
equal-time arrivals.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.l4.switch import L4Switch

__all__ = ["ColumnarL4Switch"]


class _QueuedFlow:
    """A kernel-queued SYN, reduced to what reinjection needs."""

    __slots__ = ("t", "cost", "code")

    def __init__(self, t: float, cost: float, code: int) -> None:
        self.t = t
        self.cost = cost
        self.code = code


class ColumnarL4Switch(L4Switch):
    """Fast-lane switch whose flow path is driven by a ColumnarEngine."""

    def __init__(self, *args, **kwargs):
        kwargs["fast_lane"] = True
        super().__init__(*args, **kwargs)
        self._columnar_engine = None
        # (release time, flow, at_install_boundary), ascending in time;
        # produced by install's queue drain, consumed by the next pump.
        self._columnar_releases: List[Tuple[float, _QueuedFlow, bool]] = []

    # -- ColumnarEngine integration ---------------------------------------

    def columnar_group(self, engine) -> "_L4Group":
        self._columnar_engine = engine
        return _L4Group(engine, self)

    def _schedule_reinjection(self) -> None:
        if self._columnar_engine is None:
            super()._schedule_reinjection()
            return
        flows: List[_QueuedFlow] = []
        for p in self.principals:
            q = self._syn_queues[p]
            while q:
                flow = q[0]
                if not self._try_admit(p, flow.cost):
                    break
                q.popleft()
                self.reinjected[p] += 1
                flows.append(flow)
        n = len(flows)
        if not n:
            return
        now = self.sim.now
        rel = self._columnar_releases
        if not self.spread_reinjection:
            for flow in flows:
                rel.append((now, flow, True))
            return
        length = self.window.length
        for idx, flow in enumerate(flows):
            # Same float expression as both event lanes.
            rel.append((now + (idx / n) * length, flow, idx == 0))


class _L4Group:
    """Columnar drive of one :class:`ColumnarL4Switch`.

    Per-flow admission shares too much window state to vectorise safely
    (budgets/used move under affinity and spill picks, queues bound at 256)
    so flows replay through the *live* ``_try_admit``/``_pick_server`` in
    merged event order — exact by construction, and still ~an order of
    magnitude cheaper than the slotted lane's per-flow heap events.
    """

    def __init__(self, engine, switch: ColumnarL4Switch) -> None:
        self.engine = engine
        self.switch = switch
        self._order: List = []

    def add_client(self, client) -> None:
        if client.principal not in self.switch._principal_set:
            raise ValueError(
                f"unknown principal {client.principal!r} for {self.switch.name}"
            )
        self._order.append(client)

    def advance(self, hi: float, closed: bool) -> None:
        sw = self.switch
        engine = self.engine
        parts: List[np.ndarray] = []
        codes: List[np.ndarray] = []
        cost_parts: List[Optional[np.ndarray]] = []
        any_costs = False
        total = 0
        for c in self._order:
            t, cost = c.take_until(hi, closed)
            n = t.shape[0]
            if not n:
                continue
            c.issued += n
            parts.append(t)
            codes.append(np.full(n, c._code, dtype=np.int64))
            cost_parts.append(cost)
            if cost is not None:
                any_costs = True
            total += n
        releases = sw._columnar_releases
        if not total and not releases:
            return
        engine.requests += total
        if total:
            ts = np.concatenate(parts) if len(parts) > 1 else parts[0]
            cl = np.concatenate(codes) if len(codes) > 1 else codes[0]
            if any_costs:
                costs = np.concatenate([
                    cp if cp is not None else np.ones(pp.shape[0])
                    for cp, pp in zip(cost_parts, parts)
                ]) if len(parts) > 1 else (
                    cost_parts[0] if cost_parts[0] is not None
                    else np.ones(parts[0].shape[0])
                )
            else:
                costs = np.ones(total)
            if len(parts) > 1:
                order = np.argsort(ts, kind="stable")
                ts = ts[order]
                cl = cl[order]
                costs = costs[order]
            tl = ts.tolist()
            cll = cl.tolist()
            col = costs.tolist()
        else:
            tl = []
            cll = []
            col = []
        clients = engine.clients_by_code
        arrivals = sw._arrivals
        try_admit = sw._try_admit
        pick = sw._pick_server
        by_name = sw._server_by_name
        affinity = sw.conntrack._affinity
        syn_queues = sw._syn_queues
        max_q = sw.max_syn_queue
        admitted = sw.admitted
        dropped = sw.dropped
        queued = sw.queued
        # server name -> [server, times, costs, created, client codes,
        # principal codes]; insertion (= first submission) order.
        subs: dict = {}

        def _submit(server: str, t: float, cost: float, created: float,
                    code: int, pcode: int) -> None:
            rec = subs.get(server)
            if rec is None:
                rec = subs[server] = [by_name[server][1], [], [], [], [], []]
            rec[1].append(t)
            rec[2].append(cost)
            rec[3].append(created)
            rec[4].append(code)
            rec[5].append(pcode)

        na = len(tl)
        nrel = len(releases)
        ai = 0
        ri = 0
        while True:
            due = ri < nrel
            if due:
                rt, flow, at_boundary = releases[ri]
                if (rt > hi) if closed else (rt >= hi):
                    due = False
            if due and ai < na:
                at = tl[ai]
                fire_release = rt < at or (rt == at and not at_boundary)
            elif due:
                fire_release = True
            elif ai < na:
                fire_release = False
            else:
                break
            if fire_release:
                cli = clients[flow.code]
                p = cli.principal
                server = pick(p, cli.name)
                if server is None:
                    # Quota was consumed at install; the flow vanishes
                    # (the client already counted it at queue time).
                    dropped[p] += 1
                else:
                    affinity[(cli.name, p)] = server
                    admitted[p] += 1
                    _submit(server, rt, flow.cost, flow.t,
                            flow.code, cli._pcode)
                ri += 1
                continue
            code = cll[ai]
            cost = col[ai]
            cli = clients[code]
            p = cli.principal
            arrivals[p] += cost
            if try_admit(p, cost):
                server = pick(p, cli.name)
                if server is None:
                    dropped[p] += 1
                    cli.deferred += 1
                    cli.dropped += 1
                else:
                    affinity[(cli.name, p)] = server
                    admitted[p] += 1
                    cli.admitted += 1
                    _submit(server, tl[ai], cost, tl[ai], code, cli._pcode)
            else:
                q = syn_queues[p]
                if len(q) >= max_q:
                    dropped[p] += 1
                    cli.deferred += 1
                    cli.dropped += 1
                else:
                    q.append(_QueuedFlow(tl[ai], cost, code))
                    queued[p] += 1
                    cli.admitted += 1
            ai += 1
        if ri:
            del releases[:ri]
        for rec in subs.values():
            srv, t_l, c_l, cr_l, cd_l, pc_l = rec
            t_a = np.asarray(t_l)
            c_a = np.asarray(c_l)
            engine.lane(srv).push(
                t_a,
                c_a if bool(np.any(c_a != 1.0)) else None,
                np.asarray(cr_l),
                np.asarray(cd_l, dtype=np.int64),
                np.asarray(pc_l, dtype=np.int64),
            )
