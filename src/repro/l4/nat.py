"""Network address translation table.

The paper's switch "rewrites the destination address and the port of the
packet to those of the selected server, forwards the packet ..., and
records current connection information"; responses are rewritten back so
clients only ever see the virtual service address.  :class:`NatTable`
implements exactly that pair of rewrites keyed on the client-side 4-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.l4.packets import FourTuple, TcpPacket

__all__ = ["NatTable", "ArenaNatTable", "NatEntry"]


@dataclass(frozen=True)
class NatEntry:
    virtual: Tuple[str, int]   # the advertised service address
    server: Tuple[str, int]    # the chosen real server
    created_at: float


class NatTable:
    """Bidirectional NAT mappings keyed by client-side 4-tuples."""

    def __init__(self) -> None:
        self._fwd: Dict[FourTuple, NatEntry] = {}
        # Reverse index: (server_ip, server_port, client_ip, client_port)
        # -> client-side tuple, so response rewriting is O(1).
        self._rev: Dict[Tuple[str, int, str, int], FourTuple] = {}
        # Read-only alias for hot-path membership tests (the switch's port
        # allocator probes it directly, skipping a __contains__ frame).
        self.live: Dict[FourTuple, NatEntry] = self._fwd
        self.rewrites_in = 0
        self.rewrites_out = 0

    def __len__(self) -> int:
        return len(self._fwd)

    def __contains__(self, client_tuple: FourTuple) -> bool:
        return client_tuple in self._fwd

    def install(
        self,
        client_tuple: FourTuple,
        server_ip: str,
        server_port: int,
        now: float,
    ) -> NatEntry:
        if client_tuple in self._fwd:
            raise ValueError(f"mapping for {client_tuple} already exists")
        entry = NatEntry(
            virtual=(client_tuple[2], client_tuple[3]),
            server=(server_ip, server_port),
            created_at=now,
        )
        self._fwd[client_tuple] = entry
        self._rev[(server_ip, server_port, client_tuple[0], client_tuple[1])] = client_tuple
        return entry

    def lookup(self, client_tuple: FourTuple) -> Optional[NatEntry]:
        return self._fwd.get(client_tuple)

    def remove(self, client_tuple: FourTuple) -> Optional[NatEntry]:
        """Remove a mapping; returns it (or None) so callers can gate
        follow-up teardown — e.g. ephemeral-port release — on whether the
        mapping actually existed."""
        entry = self._fwd.pop(client_tuple, None)
        if entry is not None:
            self._rev.pop(
                (entry.server[0], entry.server[1], client_tuple[0], client_tuple[1]),
                None,
            )
        return entry

    def translate_in(self, pkt: TcpPacket) -> Optional[TcpPacket]:
        """Client -> server rewrite; None if no mapping exists."""
        entry = self._fwd.get(pkt.four_tuple)
        if entry is None:
            return None
        self.rewrites_in += 1
        return pkt.rewritten(*entry.server)

    def translate_out(self, pkt: TcpPacket) -> Optional[TcpPacket]:
        """Server -> client rewrite: restore the virtual source address.

        ``pkt`` is addressed server -> client; the matching entry is found
        through the reverse index on (server, client) addresses.
        """
        key = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        client_tuple = self._rev.get(key)
        if client_tuple is None:
            return None
        entry = self._fwd[client_tuple]
        self.rewrites_out += 1
        return pkt.rewritten_source(*entry.virtual)


class ArenaNatTable:
    """Slotted :class:`NatTable` for the L4 fast lane.

    Mapping fields live in parallel slot arrays behind one
    ``tuple -> slot`` dict (plus the same reverse index the scalar table
    keeps for response rewriting), so installing a flow writes a few list
    cells instead of constructing a :class:`NatEntry`.  The packet-facing
    API (``translate_in``/``translate_out``/``lookup``) is scalar-compat —
    views are synthesized on demand; the switch's flow path uses
    :meth:`install_slot` and the counters directly and never builds one.
    """

    def __init__(self) -> None:
        self._index: Dict[FourTuple, int] = {}
        # Read-only alias mirroring :attr:`NatTable.live`.
        self.live: Dict[FourTuple, int] = self._index
        self._server_ip: List[str] = []
        self._server_port: List[int] = []
        self._virtual_ip: List[str] = []
        self._virtual_port: List[int] = []
        self._created: List[float] = []
        self._free: List[int] = []
        self._rev: Dict[Tuple[str, int, str, int], FourTuple] = {}
        self.rewrites_in = 0
        self.rewrites_out = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, client_tuple: FourTuple) -> bool:
        return client_tuple in self._index

    def install_slot(
        self,
        client_tuple: FourTuple,
        server_ip: str,
        server_port: int,
        now: float,
    ) -> int:
        """Fast-path install: record the mapping, return its slot.

        The reverse (response-rewrite) index is *not* written here: flows
        installed through the slot API complete through the switch's flow
        record, which never response-SNATs a packet.  Only the
        scalar-compat :meth:`install` pays for reverse-index maintenance,
        keeping this path to two dict/list writes.
        """
        if client_tuple in self._index:
            raise ValueError(f"mapping for {client_tuple} already exists")
        free = self._free
        if free:
            slot = free.pop()
            self._server_ip[slot] = server_ip
            self._server_port[slot] = server_port
            self._virtual_ip[slot] = client_tuple[2]
            self._virtual_port[slot] = client_tuple[3]
            self._created[slot] = now
        else:
            slot = len(self._server_ip)
            self._server_ip.append(server_ip)
            self._server_port.append(server_port)
            self._virtual_ip.append(client_tuple[2])
            self._virtual_port.append(client_tuple[3])
            self._created.append(now)
        self._index[client_tuple] = slot
        return slot

    def install(
        self,
        client_tuple: FourTuple,
        server_ip: str,
        server_port: int,
        now: float,
    ) -> NatEntry:
        slot = self.install_slot(client_tuple, server_ip, server_port, now)
        self._rev[(server_ip, server_port, client_tuple[0], client_tuple[1])] = client_tuple
        return self._view(slot)

    def _view(self, slot: int) -> NatEntry:
        return NatEntry(
            virtual=(self._virtual_ip[slot], self._virtual_port[slot]),
            server=(self._server_ip[slot], self._server_port[slot]),
            created_at=self._created[slot],
        )

    def lookup(self, client_tuple: FourTuple) -> Optional[NatEntry]:
        slot = self._index.get(client_tuple)
        return None if slot is None else self._view(slot)

    def remove(self, client_tuple: FourTuple) -> bool:
        """Remove a mapping; truthy iff one existed (scalar-compat with
        :meth:`NatTable.remove`, which returns the entry)."""
        slot = self._index.pop(client_tuple, None)
        if slot is None:
            return False
        if self._rev:
            self._rev.pop(
                (self._server_ip[slot], self._server_port[slot],
                 client_tuple[0], client_tuple[1]),
                None,
            )
        self._free.append(slot)
        return True

    def translate_in(self, pkt: TcpPacket) -> Optional[TcpPacket]:
        """Client -> server rewrite; None if no mapping exists."""
        slot = self._index.get(pkt.four_tuple)
        if slot is None:
            return None
        self.rewrites_in += 1
        return pkt.rewritten(self._server_ip[slot], self._server_port[slot])

    def translate_out(self, pkt: TcpPacket) -> Optional[TcpPacket]:
        """Server -> client rewrite: restore the virtual source address."""
        key = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        client_tuple = self._rev.get(key)
        if client_tuple is None:
            return None
        slot = self._index[client_tuple]
        self.rewrites_out += 1
        return pkt.rewritten_source(
            self._virtual_ip[slot], self._virtual_port[slot]
        )
