"""Network address translation table.

The paper's switch "rewrites the destination address and the port of the
packet to those of the selected server, forwards the packet ..., and
records current connection information"; responses are rewritten back so
clients only ever see the virtual service address.  :class:`NatTable`
implements exactly that pair of rewrites keyed on the client-side 4-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.l4.packets import FourTuple, TcpPacket

__all__ = ["NatTable", "NatEntry"]


@dataclass(frozen=True)
class NatEntry:
    virtual: Tuple[str, int]   # the advertised service address
    server: Tuple[str, int]    # the chosen real server
    created_at: float


class NatTable:
    """Bidirectional NAT mappings keyed by client-side 4-tuples."""

    def __init__(self) -> None:
        self._fwd: Dict[FourTuple, NatEntry] = {}
        # Reverse index: (server_ip, server_port, client_ip, client_port)
        # -> client-side tuple, so response rewriting is O(1).
        self._rev: Dict[Tuple[str, int, str, int], FourTuple] = {}
        self.rewrites_in = 0
        self.rewrites_out = 0

    def __len__(self) -> int:
        return len(self._fwd)

    def install(
        self,
        client_tuple: FourTuple,
        server_ip: str,
        server_port: int,
        now: float,
    ) -> NatEntry:
        if client_tuple in self._fwd:
            raise ValueError(f"mapping for {client_tuple} already exists")
        entry = NatEntry(
            virtual=(client_tuple[2], client_tuple[3]),
            server=(server_ip, server_port),
            created_at=now,
        )
        self._fwd[client_tuple] = entry
        self._rev[(server_ip, server_port, client_tuple[0], client_tuple[1])] = client_tuple
        return entry

    def lookup(self, client_tuple: FourTuple) -> Optional[NatEntry]:
        return self._fwd.get(client_tuple)

    def remove(self, client_tuple: FourTuple) -> None:
        entry = self._fwd.pop(client_tuple, None)
        if entry is not None:
            self._rev.pop(
                (entry.server[0], entry.server[1], client_tuple[0], client_tuple[1]),
                None,
            )

    def translate_in(self, pkt: TcpPacket) -> Optional[TcpPacket]:
        """Client -> server rewrite; None if no mapping exists."""
        entry = self._fwd.get(pkt.four_tuple)
        if entry is None:
            return None
        self.rewrites_in += 1
        return pkt.rewritten(*entry.server)

    def translate_out(self, pkt: TcpPacket) -> Optional[TcpPacket]:
        """Server -> client rewrite: restore the virtual source address.

        ``pkt`` is addressed server -> client; the matching entry is found
        through the reverse index on (server, client) addresses.
        """
        key = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        client_tuple = self._rev.get(key)
        if client_tuple is None:
            return None
        entry = self._fwd[client_tuple]
        self.rewrites_out += 1
        return pkt.rewritten_source(*entry.virtual)
