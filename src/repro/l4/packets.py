"""TCP packet records for the Layer-4 switch model.

Only what the redirector inspects is modelled: the 4-tuple, TCP flags and
an opaque payload.  In the simulation the SYN of each connection carries
the :class:`repro.cluster.request.Request` it initiates (the paper's
switch likewise classifies on the connection-establishment packet; the
request URL identifies the principal owning the target service).

Two representations coexist:

- :class:`TcpPacket` — one immutable record per segment; the scalar A/B
  path builds a SYN, a rewritten SYN and a response packet per flow.
- :class:`FlowRecord` — the fast lane's whole-flow object: SYN
  classification, payload and response sizes ride in one slotted,
  callable record that doubles as the server completion callback, so an
  admitted flow costs one allocation instead of four packets plus a
  closure.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Tuple

from repro.cluster.request import Request

__all__ = ["TcpFlags", "TcpPacket", "FlowRecord", "FourTuple"]

FourTuple = Tuple[str, int, str, int]

_packet_ids = itertools.count(1)


class TcpFlags(enum.Flag):
    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()


@dataclass(frozen=True)
class TcpPacket:
    """One TCP segment.

    ``request`` rides on the SYN only; data segments reference the
    connection through their 4-tuple.
    """

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    flags: TcpFlags = TcpFlags.NONE
    payload_bytes: int = 0
    request: Optional[Request] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 < port < 65536:
                raise ValueError(f"invalid port {port}")
        if self.payload_bytes < 0:
            raise ValueError("payload must be non-negative")

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not (self.flags & TcpFlags.ACK)

    @property
    def four_tuple(self) -> FourTuple:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    @property
    def reverse_tuple(self) -> FourTuple:
        return (self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def rewritten(self, dst_ip: str, dst_port: int) -> "TcpPacket":
        """Destination NAT: the switch's inbound rewrite."""
        return replace(self, dst_ip=dst_ip, dst_port=dst_port)

    def rewritten_source(self, src_ip: str, src_port: int) -> "TcpPacket":
        """Source NAT: the switch's outbound (response) rewrite."""
        return replace(self, src_ip=src_ip, src_port=src_port)


class FlowRecord:
    """One admitted (or queued) flow, aggregated to a single object.

    The scalar path materialises four :class:`TcpPacket` instances per
    flow — the SYN, its DNAT rewrite, the response and its SNAT rewrite —
    plus a per-flow closure to route the server completion back to the
    switch.  A ``FlowRecord`` collapses all of that: the client 4-tuple,
    the request (the SYN's payload), the chosen server and the response
    size live in one ``__slots__`` object, and the record itself is the
    server's ``done`` callback (``__call__`` forwards to the switch's
    flow teardown), so admission allocates nothing else.

    Only representation changes; the admission arithmetic (quota draws,
    queue checks, server choice) is byte-for-byte the scalar path's, which
    is what keeps the two lanes' traces bit-identical.
    """

    __slots__ = ("switch", "request", "done", "tup", "server",
                 "response_bytes")

    def __init__(
        self,
        switch: Any,
        request: Request,
        done: Optional[Callable[[Request], None]],
        tup: FourTuple,
    ) -> None:
        self.switch = switch
        self.request = request
        self.done = done
        self.tup = tup
        self.server: Optional[str] = None
        self.response_bytes = 0

    @property
    def principal(self) -> str:
        return self.request.principal

    @property
    def src_ip(self) -> str:
        return self.tup[0]

    @property
    def src_port(self) -> int:
        return self.tup[1]

    @property
    def four_tuple(self) -> FourTuple:
        return self.tup

    @property
    def payload_bytes(self) -> int:
        return self.request.size_bytes

    def __call__(self, request: Request) -> None:
        """Server completion: the record *is* the ``done`` callback."""
        self.switch._on_response_flow(self, request)

    def __repr__(self) -> str:
        return (f"FlowRecord({self.tup!r}, principal={self.principal!r}, "
                f"server={self.server!r})")
