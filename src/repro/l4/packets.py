"""TCP packet records for the Layer-4 switch model.

Only what the redirector inspects is modelled: the 4-tuple, TCP flags and
an opaque payload.  In the simulation the SYN of each connection carries
the :class:`repro.cluster.request.Request` it initiates (the paper's
switch likewise classifies on the connection-establishment packet; the
request URL identifies the principal owning the target service).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.cluster.request import Request

__all__ = ["TcpFlags", "TcpPacket", "FourTuple"]

FourTuple = Tuple[str, int, str, int]

_packet_ids = itertools.count(1)


class TcpFlags(enum.Flag):
    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()


@dataclass(frozen=True)
class TcpPacket:
    """One TCP segment.

    ``request`` rides on the SYN only; data segments reference the
    connection through their 4-tuple.
    """

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    flags: TcpFlags = TcpFlags.NONE
    payload_bytes: int = 0
    request: Optional[Request] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 < port < 65536:
                raise ValueError(f"invalid port {port}")
        if self.payload_bytes < 0:
            raise ValueError("payload must be non-negative")

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not (self.flags & TcpFlags.ACK)

    @property
    def four_tuple(self) -> FourTuple:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    @property
    def reverse_tuple(self) -> FourTuple:
        return (self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def rewritten(self, dst_ip: str, dst_port: int) -> "TcpPacket":
        """Destination NAT: the switch's inbound rewrite."""
        return replace(self, dst_ip=dst_ip, dst_port=dst_port)

    def rewritten_source(self, src_ip: str, src_port: int) -> "TcpPacket":
        """Source NAT: the switch's outbound (response) rewrite."""
        return replace(self, src_ip=src_ip, src_port=src_port)
