"""Declarative fault plans.

A :class:`FaultPlan` is a list of timestamped fault events — link
impairment, network partition, node/server/redirector crash — that is
independent of any particular run: it can be serialised to JSON, hashed
(:meth:`FaultPlan.digest`), shipped to CI, and replayed bit-identically
against the same scenario seed.  The plan carries no randomness of its
own; stochastic impairments (loss/duplication/reorder/jitter) are
*probabilities* whose draws come from per-link spawned RNG substreams
inside :class:`repro.sim.network.Link`, and :func:`random_plan` derives a
random plan from an explicit generator (normally the scenario's
``streams.get("faults:plan")`` substream).

Event semantics:

- :class:`LinkDegrade` — set loss/duplicate/reorder/delay/jitter on a
  directed coordination link at ``at``; ``symmetric=True`` also applies to
  the reverse link; ``until`` reverts to the pre-fault values.
- :class:`PartitionFault` — cut every link whose endpoints fall in
  different ``groups`` during ``[at, until)``; nodes not named in any
  group are unaffected.  Overlapping partitions compose (a link stays cut
  while *any* active partition crosses it).
- :class:`NodeCrash` — fail-stop an aggregation-protocol node; ``until``
  restarts it (with amnesia).
- :class:`ServerCrash` — fail-stop a backend server (queue and in-service
  request are lost); ``until`` restarts it empty.
- :class:`RedirectorCrash` — the redirector process itself: clients get
  no answer and its protocol node goes silent; ``until`` restarts both.
- :class:`ShardRevoke` — spot-style revocation of a sharded-lane worker
  process at ``at`` (``mode``: ``"exit"`` hard ``os._exit``, ``"exc"``
  clean in-worker exception, ``"kill"`` SIGKILL).  Targets the execution
  substrate rather than a simulated component, so it is executed by
  :class:`repro.experiments.sharded.ShardedRunner` (``repro chaos
  --shards``), not by the event-lane injector.

Validation failures raise :class:`FaultPlanError` (a ``ValueError``), so
callers — the CLI in particular — can distinguish a malformed plan from
an infrastructure fault.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "LinkDegrade",
    "PartitionFault",
    "NodeCrash",
    "ServerCrash",
    "RedirectorCrash",
    "ShardRevoke",
    "FaultPlan",
    "FaultPlanError",
    "random_plan",
]

# Worker-death modes a ShardRevoke may request (mirrored by the
# REPRO_SHARD_FAULT env hook in repro.experiments.sharded).
SHARD_REVOKE_MODES = ("exit", "exc", "kill")


class FaultPlanError(ValueError):
    """A fault plan failed validation (malformed event, bad target)."""


@dataclass(frozen=True)
class LinkDegrade:
    at: float
    src: str
    dst: str
    loss: Optional[float] = None
    duplicate: Optional[float] = None
    reorder: Optional[float] = None
    delay: Optional[float] = None
    jitter: Optional[float] = None
    until: Optional[float] = None
    symmetric: bool = True


@dataclass(frozen=True)
class PartitionFault:
    at: float
    until: float
    groups: Tuple[Tuple[str, ...], ...]

    def group_of(self, node: str) -> Optional[int]:
        for i, grp in enumerate(self.groups):
            if node in grp:
                return i
        return None

    def crosses(self, src: str, dst: str) -> bool:
        a, b = self.group_of(src), self.group_of(dst)
        return a is not None and b is not None and a != b


@dataclass(frozen=True)
class NodeCrash:
    at: float
    node: str
    until: Optional[float] = None


@dataclass(frozen=True)
class ServerCrash:
    at: float
    server: str
    until: Optional[float] = None


@dataclass(frozen=True)
class RedirectorCrash:
    at: float
    redirector: str
    until: Optional[float] = None


@dataclass(frozen=True)
class ShardRevoke:
    """Revoke a sharded-lane worker process (spot-instance style)."""

    at: float
    shard: int
    mode: str = "kill"


FaultEvent = Union[LinkDegrade, PartitionFault, NodeCrash, ServerCrash,
                   RedirectorCrash, ShardRevoke]

_KINDS: Dict[str, type] = {
    "link": LinkDegrade,
    "partition": PartitionFault,
    "node_crash": NodeCrash,
    "server_crash": ServerCrash,
    "redirector_crash": RedirectorCrash,
    "revoke_shard": ShardRevoke,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}


@dataclass
class FaultPlan:
    """An ordered, serialisable set of fault events."""

    events: List[FaultEvent] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for ev in self.events:
            if ev.at < 0:
                raise FaultPlanError(f"event time must be >= 0: {ev}")
            until = getattr(ev, "until", None)
            if until is not None and until <= ev.at:
                raise FaultPlanError(f"until must be > at: {ev}")
            if isinstance(ev, PartitionFault):
                if len(ev.groups) < 2:
                    raise FaultPlanError("partition needs at least two groups")
                seen: set = set()
                for grp in ev.groups:
                    for n in grp:
                        if n in seen:
                            raise FaultPlanError(
                                f"node {n!r} in two partition groups"
                            )
                        seen.add(n)
            if isinstance(ev, LinkDegrade):
                for label in ("loss", "duplicate", "reorder"):
                    p = getattr(ev, label)
                    if p is not None and not 0.0 <= p < 1.0:
                        raise FaultPlanError(f"{label} must be in [0, 1): {ev}")
            if isinstance(ev, ShardRevoke):
                if ev.shard < 0:
                    raise FaultPlanError(
                        f"revoke_shard: shard index must be >= 0: {ev}"
                    )
                if ev.mode not in SHARD_REVOKE_MODES:
                    raise FaultPlanError(
                        f"revoke_shard: mode must be one of "
                        f"{SHARD_REVOKE_MODES}, got {ev.mode!r}"
                    )

    def sorted_events(self) -> List[FaultEvent]:
        """Events by time, stable on plan order for ties."""
        return sorted(self.events, key=lambda ev: ev.at)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled action (including heals/restarts)."""
        times = [ev.at for ev in self.events]
        times += [
            ev.until for ev in self.events
            if getattr(ev, "until", None) is not None
        ]
        return max(times, default=0.0)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out = []
        for ev in self.events:
            d = asdict(ev)
            if isinstance(ev, PartitionFault):
                d["groups"] = [list(g) for g in ev.groups]
            d["kind"] = _KIND_OF[type(ev)]
            out.append(d)
        return {"name": self.name, "events": out}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        events: List[FaultEvent] = []
        for d in data.get("events", []):
            d = dict(d)
            kind = d.pop("kind")
            ev_cls = _KINDS.get(kind)
            if ev_cls is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            if ev_cls is PartitionFault:
                d["groups"] = tuple(tuple(g) for g in d["groups"])
            events.append(ev_cls(**d))
        return cls(events=events, name=data.get("name", ""))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — names a plan exactly."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


def random_plan(
    rng: np.random.Generator,
    duration: float,
    nodes: Sequence[str] = (),
    servers: Sequence[str] = (),
    links: Sequence[Tuple[str, str]] = (),
    n_faults: int = 5,
    min_gap: float = 1.0,
    mean_outage: float = 3.0,
    name: str = "random",
) -> FaultPlan:
    """Chaos-mode plan: ``n_faults`` random faults over ``[min_gap, duration)``.

    All draws come from ``rng`` — pass a named substream (e.g.
    ``streams.get("faults:plan")``) so plan generation is reproducible and
    independent of every other consumer of the seed.
    """
    kinds: List[str] = []
    if links:
        kinds.append("link")
    if nodes:
        kinds.append("node_crash")
    if len(nodes) >= 2:
        kinds.append("partition")
    if servers:
        kinds.append("server_crash")
    if not kinds:
        raise ValueError("no fault targets given")
    events: List[FaultEvent] = []
    for _ in range(int(n_faults)):
        at = float(rng.uniform(min_gap, max(min_gap * 2, duration * 0.7)))
        outage = float(rng.exponential(mean_outage)) + min_gap
        until = min(at + outage, duration - min_gap)
        if until <= at:
            until = at + min_gap
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "link":
            src, dst = links[int(rng.integers(len(links)))]
            events.append(LinkDegrade(
                at=at, src=src, dst=dst, until=until,
                loss=round(float(rng.uniform(0.05, 0.5)), 3),
            ))
        elif kind == "node_crash":
            events.append(NodeCrash(
                at=at, node=nodes[int(rng.integers(len(nodes)))], until=until,
            ))
        elif kind == "server_crash":
            events.append(ServerCrash(
                at=at, server=servers[int(rng.integers(len(servers)))],
                until=until,
            ))
        else:
            cut = nodes[int(rng.integers(len(nodes)))]
            rest = tuple(n for n in nodes if n != cut)
            events.append(PartitionFault(
                at=at, until=until, groups=((cut,), rest),
            ))
    return FaultPlan(events=events, name=name)
