"""Deterministic fault injection for the resource-sharing simulation.

``plan`` declares *what* goes wrong and when (a seeded, serialisable
:class:`FaultPlan`); ``inject`` binds a plan to a running
:class:`repro.experiments.harness.Scenario` and executes it through the
event kernel.  Same seed + same plan => bit-identical run.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    LinkDegrade,
    NodeCrash,
    PartitionFault,
    RedirectorCrash,
    ServerCrash,
    ShardRevoke,
    random_plan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "LinkDegrade",
    "NodeCrash",
    "PartitionFault",
    "RedirectorCrash",
    "ServerCrash",
    "ShardRevoke",
    "random_plan",
]
