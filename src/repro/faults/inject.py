"""Bind a :class:`FaultPlan` to a scenario and execute it.

:class:`FaultInjector` translates plan events into kernel-scheduled state
changes on the scenario's components:

- link events hit the registered coordination links
  (``scenario.protocol_links``), saving pre-fault values for the revert;
- partitions cut every crossing link and — when the scenario has a
  :class:`repro.coordination.membership.ResilientTree` — install a
  ``link_filter`` so links created *by healing* while the partition is
  still active are cut too (a healed overlay cannot tunnel through a
  partition);
- crashes call the target's own ``crash``/``restart`` (protocol node,
  server, redirector), routing through the membership layer when present.

The injector itself draws no randomness: every event fires at its planned
time via ``sim.schedule_at``, and the stochastic impairments it configures
draw from the links' own per-link substreams.  Injecting the same plan
into the same seeded scenario therefore replays bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    LinkDegrade,
    NodeCrash,
    PartitionFault,
    RedirectorCrash,
    ServerCrash,
    ShardRevoke,
)
from repro.sim.network import Link

__all__ = ["FaultInjector"]

LinkKey = Tuple[str, str]


class FaultInjector:
    """Executes a fault plan against a built scenario.

    Construct *after* ``scenario.connect_tree()`` (the injector needs the
    link registry) and before ``scenario.run()``.
    """

    def __init__(self, scenario, plan: FaultPlan) -> None:
        for ev in plan.events:
            if isinstance(ev, ShardRevoke):
                # Worker revocation is an execution-substrate fault, not a
                # simulated-component one; only the sharded runner can
                # honour it deterministically.
                raise FaultPlanError(
                    "revoke_shard targets the sharded execution lane; "
                    "run this plan via `repro chaos --shards R`"
                )
        if not getattr(scenario, "_tree_built", False) and any(
            isinstance(ev, (LinkDegrade, PartitionFault, NodeCrash))
            for ev in plan.events
        ):
            raise RuntimeError("connect_tree() must run before FaultInjector")
        self.scenario = scenario
        self.sim = scenario.sim
        self.plan = plan
        self.links: Dict[LinkKey, Link] = getattr(scenario, "protocol_links", {})
        self.membership = getattr(scenario, "membership", None)
        # Which active partitions currently cut each link (a link heals
        # only when no active partition crosses it any more).
        self._cut_by: Dict[LinkKey, Set[int]] = {}
        self._active: Dict[int, PartitionFault] = {}
        self._saved: Dict[LinkKey, Dict[str, float]] = {}
        self.log: List[Tuple[float, str, str]] = []
        self._validate_targets()
        if self.membership is not None:
            self.membership.link_filter = self._on_new_link
        for ev in plan.sorted_events():
            self._schedule(ev)

    # -- setup -------------------------------------------------------------

    def _validate_targets(self) -> None:
        nodes = getattr(self.scenario, "protocol_nodes", {})
        for ev in self.plan.events:
            if isinstance(ev, NodeCrash) and ev.node not in nodes:
                raise ValueError(f"unknown protocol node {ev.node!r}")
            if isinstance(ev, ServerCrash) and ev.server not in self.scenario.servers:
                raise ValueError(f"unknown server {ev.server!r}")
            if isinstance(ev, RedirectorCrash):
                if ev.redirector not in self.scenario.l7_redirectors:
                    raise ValueError(f"unknown redirector {ev.redirector!r}")
            if isinstance(ev, LinkDegrade):
                if (ev.src, ev.dst) not in self.links:
                    raise ValueError(f"unknown link {ev.src!r}->{ev.dst!r}")

    def _schedule(self, ev) -> None:
        if isinstance(ev, LinkDegrade):
            self.sim.schedule_at(ev.at, self._apply_link, ev)
            if ev.until is not None:
                self.sim.schedule_at(ev.until, self._revert_link, ev)
        elif isinstance(ev, PartitionFault):
            pid = id(ev)
            self.sim.schedule_at(ev.at, self._apply_partition, pid, ev)
            self.sim.schedule_at(ev.until, self._heal_partition, pid, ev)
        elif isinstance(ev, NodeCrash):
            self.sim.schedule_at(ev.at, self._node, ev.node, True)
            if ev.until is not None:
                self.sim.schedule_at(ev.until, self._node, ev.node, False)
        elif isinstance(ev, ServerCrash):
            self.sim.schedule_at(ev.at, self._server, ev.server, True)
            if ev.until is not None:
                self.sim.schedule_at(ev.until, self._server, ev.server, False)
        elif isinstance(ev, RedirectorCrash):
            self.sim.schedule_at(ev.at, self._redirector, ev.redirector, True)
            if ev.until is not None:
                self.sim.schedule_at(ev.until, self._redirector, ev.redirector, False)
        else:  # pragma: no cover - plan.validate rejects unknown kinds
            raise TypeError(f"unknown fault event {ev!r}")

    # -- link impairment ---------------------------------------------------

    def _link_pairs(self, ev: LinkDegrade) -> List[LinkKey]:
        keys = [(ev.src, ev.dst)]
        if ev.symmetric and (ev.dst, ev.src) in self.links:
            keys.append((ev.dst, ev.src))
        return keys

    def _apply_link(self, ev: LinkDegrade) -> None:
        for key in self._link_pairs(ev):
            link = self.links[key]
            if key not in self._saved:
                self._saved[key] = {
                    "loss": link.loss, "duplicate": link.duplicate,
                    "reorder": link.reorder, "delay": link.delay,
                    "jitter": link.jitter,
                }
            link.set_impairment(
                loss=ev.loss, duplicate=ev.duplicate, reorder=ev.reorder,
            )
            if ev.delay is not None or ev.jitter is not None:
                link.set_delay(
                    ev.delay if ev.delay is not None else link.delay,
                    jitter=ev.jitter,
                )
        self.log.append((self.sim.now, "link_degrade", f"{ev.src}->{ev.dst}"))

    def _revert_link(self, ev: LinkDegrade) -> None:
        for key in self._link_pairs(ev):
            saved = self._saved.pop(key, None)
            if saved is None:
                continue
            link = self.links[key]
            link.set_impairment(
                loss=saved["loss"], duplicate=saved["duplicate"],
                reorder=saved["reorder"],
            )
            link.set_delay(saved["delay"], jitter=saved["jitter"])
        self.log.append((self.sim.now, "link_restore", f"{ev.src}->{ev.dst}"))

    # -- partitions --------------------------------------------------------

    def _apply_partition(self, pid: int, ev: PartitionFault) -> None:
        self._active[pid] = ev
        for key, link in self.links.items():
            if ev.crosses(*key):
                self._cut(key, link, pid)
        self.log.append((
            self.sim.now, "partition",
            "|".join(",".join(g) for g in ev.groups),
        ))

    def _heal_partition(self, pid: int, ev: PartitionFault) -> None:
        self._active.pop(pid, None)
        for key in list(self._cut_by):
            cutters = self._cut_by[key]
            cutters.discard(pid)
            if not cutters:
                del self._cut_by[key]
                link = self.links.get(key)
                if link is not None:
                    link.restore()
        self.log.append((self.sim.now, "heal", ""))

    def _cut(self, key: LinkKey, link: Link, pid: int) -> None:
        self._cut_by.setdefault(key, set()).add(pid)
        link.cut()

    def _on_new_link(self, link: Link, src: str, dst: str) -> None:
        """Membership hook: a heal-created link must respect active cuts."""
        for pid, ev in self._active.items():
            if ev.crosses(src, dst):
                self._cut((src, dst), link, pid)

    # -- crashes -----------------------------------------------------------

    def _node(self, node: str, down: bool) -> None:
        if self.membership is not None:
            (self.membership.crash if down else self.membership.restart)(node)
        else:
            target = self.scenario.protocol_nodes[node]
            (target.crash if down else target.restart)()
        self.log.append((self.sim.now, "node_crash" if down else "node_restart", node))

    def _server(self, server: str, down: bool) -> None:
        target = self.scenario.servers[server]
        (target.crash if down else target.restart)()
        self.log.append((
            self.sim.now, "server_crash" if down else "server_restart", server,
        ))

    def _redirector(self, name: str, down: bool) -> None:
        red = self.scenario.l7_redirectors[name]
        (red.crash if down else red.restart)()
        # The redirector host dying takes its protocol node with it.
        if name in getattr(self.scenario, "protocol_nodes", {}):
            self._node(name, down)
        self.log.append((
            self.sim.now,
            "redirector_crash" if down else "redirector_restart",
            name,
        ))
