"""Per-principal access levels consumed by the schedulers (paper §3.1.1).

:class:`AccessLevels` packages the mandatory/optional request-processing
rates (``MC_i`` / ``OC_i``) and the per-pair entitlement matrices
(``MI_ki`` / ``OI_ki``) in the form the LP models need, with helpers to
rescale from per-second rates to per-time-window request counts — the paper
schedules over 100 ms windows, so a 320 req/s server admits 32 requests per
window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.agreements import AgreementGraph
from repro.core.flows import FlowMatrices, closed_form_flows, path_flows

__all__ = ["AccessLevels", "compute_access_levels"]


@dataclass(frozen=True)
class AccessLevels:
    """Access levels of every principal, in request-units per second.

    ``MI[i, k]`` is principal i's mandatory entitlement on k's server
    (the paper's ``MI_ki``); ``OI`` likewise for optional entitlements.
    """

    names: Tuple[str, ...]
    V: np.ndarray
    MC: np.ndarray
    OC: np.ndarray
    MI: np.ndarray
    OI: np.ndarray

    @classmethod
    def from_flows(cls, flows: FlowMatrices) -> "AccessLevels":
        return cls(
            names=flows.names,
            V=flows.V.copy(),
            MC=flows.MC.copy(),
            OC=flows.OC.copy(),
            MI=flows.MI.copy(),
            OI=flows.OI.copy(),
        )

    @property
    def n(self) -> int:
        return len(self.names)

    def index(self, name: str) -> int:
        return self.names.index(name)

    def mandatory(self, name: str) -> float:
        return float(self.MC[self.index(name)])

    def optional(self, name: str) -> float:
        return float(self.OC[self.index(name)])

    def entitlement(self, holder: str, owner: str) -> Tuple[float, float]:
        i, k = self.index(holder), self.index(owner)
        return float(self.MI[i, k]), float(self.OI[i, k])

    def scaled(self, factor: float) -> "AccessLevels":
        """Rescale all levels, e.g. by the window length in seconds."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return AccessLevels(
            names=self.names,
            V=self.V * factor,
            MC=self.MC * factor,
            OC=self.OC * factor,
            MI=self.MI * factor,
            OI=self.OI * factor,
        )

    def per_window(self, window_seconds: float) -> "AccessLevels":
        """Access levels expressed in requests per scheduling window."""
        return self.scaled(window_seconds)

    def as_dict(self) -> Dict[str, Tuple[float, float]]:
        return {name: (self.mandatory(name), self.optional(name)) for name in self.names}


def compute_access_levels(graph: AgreementGraph, method: str = "closed") -> AccessLevels:
    """Reduce an agreement graph to access levels.

    ``method`` selects the flow computation: ``"closed"`` (linear solves,
    default) or ``"paths"`` (the paper's literal simple-path enumeration).
    """
    if method == "closed":
        flows = closed_form_flows(graph)
    elif method == "paths":
        flows = path_flows(graph)
    else:
        raise ValueError(f"unknown method {method!r}; use 'closed' or 'paths'")
    return AccessLevels.from_flows(flows)
