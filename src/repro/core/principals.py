"""Principals: the parties to resource sharing agreements.

A principal owns *rate resources* (paper §2): CPU share, network bandwidth,
or — in all of the paper's experiments — server transaction rate, expressed
as an aggregate capacity scaled in average-request units per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Principal"]


@dataclass(frozen=True)
class Principal:
    """A party owning (possibly zero) rate resources.

    Attributes:
        name: unique identifier.
        capacity: aggregate resource in request-units per second (``V_i``).
            Zero for pure consumers (e.g. principal C in the paper's Fig 3).
        face_value: face value of the principal's currency.  Agreements are
            denominated as fractions of this; the paper notes the face value
            is arbitrary and can be inflated/deflated to renegotiate.
    """

    name: str
    capacity: float = 0.0
    face_value: float = 100.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("principal name must be non-empty")
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if self.face_value <= 0:
            raise ValueError(f"face value must be > 0, got {self.face_value}")

    def __str__(self) -> str:
        return self.name
