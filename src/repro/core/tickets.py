"""Tickets and currencies (paper §2.3).

An agreement between principals A and B is represented by a flow of tickets
from A to B, denominated in A's currency.  Two ticket kinds encode the
``[lb, ub]`` agreement form:

- a *mandatory* ticket carries face value ``lb * face(A)`` — the guaranteed
  reservation during overload;
- an *optional* ticket carries ``(ub - lb) * face(A)`` — the additional
  best-effort entitlement.

A ticket's *real* value is computed from the real value of its issuing
currency (see :mod:`repro.core.valuation`); this module only models the
face-value bookkeeping.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["TicketKind", "Ticket", "Currency"]

_ticket_ids = itertools.count(1)


class TicketKind(enum.Enum):
    MANDATORY = "mandatory"
    OPTIONAL = "optional"


@dataclass(frozen=True)
class Ticket:
    """A transfer of rights from ``issuer`` to ``holder``.

    ``amount`` is a face value denominated in the issuer's currency; the
    fraction of the issuer's currency it represents is
    ``amount / issuer_face_value``.
    """

    kind: TicketKind
    issuer: str
    holder: str
    amount: float
    ticket_id: int = field(default_factory=lambda: next(_ticket_ids))

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError(f"ticket amount must be >= 0, got {self.amount}")
        if self.issuer == self.holder:
            raise ValueError("a principal cannot issue tickets to itself")

    def fraction(self, issuer_face_value: float) -> float:
        """The fraction of the issuing currency this ticket represents."""
        return self.amount / issuer_face_value


class Currency:
    """A principal's currency: denominates the tickets it issues.

    The currency's *value* is dynamic — determined by physical resources plus
    inflows from held tickets (computed in :mod:`repro.core.valuation`).
    This class tracks issuance so the face-value budget cannot be exceeded:
    the sum of mandatory ticket fractions must stay <= 1 (a principal cannot
    guarantee more than 100% of its resources).
    """

    def __init__(self, owner: str, face_value: float = 100.0):
        if face_value <= 0:
            raise ValueError("face value must be positive")
        self.owner = owner
        self.face_value = float(face_value)
        self.issued: List[Ticket] = []
        self.held: List[Ticket] = []

    def issue(self, kind: TicketKind, holder: str, amount: float) -> Ticket:
        ticket = Ticket(kind=kind, issuer=self.owner, holder=holder, amount=amount)
        if kind is TicketKind.MANDATORY:
            total = self.mandatory_issued_fraction() + ticket.fraction(self.face_value)
            if total > 1.0 + 1e-12:
                raise ValueError(
                    f"{self.owner}: mandatory issuance would reach "
                    f"{total:.3f} > 1.0 of the currency"
                )
        self.issued.append(ticket)
        return ticket

    def receive(self, ticket: Ticket) -> None:
        if ticket.holder != self.owner:
            raise ValueError(
                f"ticket held by {ticket.holder!r} cannot fund {self.owner!r}"
            )
        self.held.append(ticket)

    def mandatory_issued_fraction(self) -> float:
        return (
            sum(t.amount for t in self.issued if t.kind is TicketKind.MANDATORY)
            / self.face_value
        )

    def issued_fractions(self) -> Dict[str, Dict[TicketKind, float]]:
        """Per-holder {kind: fraction} of this currency given away."""
        out: Dict[str, Dict[TicketKind, float]] = {}
        for t in self.issued:
            out.setdefault(t.holder, {}).setdefault(t.kind, 0.0)
            out[t.holder][t.kind] += t.fraction(self.face_value)
        return out

    def inflate(self, factor: float) -> None:
        """Scale the face value (the paper's agreement-renegotiation knob).

        Existing tickets keep their face amounts, so inflation dilutes every
        outstanding agreement proportionally.
        """
        if factor <= 0:
            raise ValueError("inflation factor must be positive")
        self.face_value *= factor
