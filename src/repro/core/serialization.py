"""JSON (de)serialisation of agreement graphs.

Lets deployments keep their agreement structures in version-controlled
files and lets the CLI operate on them (``python -m repro inspect
--file agreements.json``).  The format is deliberately boring::

    {
      "principals": [
        {"name": "A", "capacity": 1000.0, "face_value": 100.0},
        {"name": "B", "capacity": 1500.0}
      ],
      "agreements": [
        {"grantor": "A", "grantee": "B", "lb": 0.4, "ub": 0.6}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from repro.core.agreements import Agreement, AgreementError, AgreementGraph

__all__ = ["graph_to_dict", "graph_from_dict", "dump_graph", "load_graph"]


def graph_to_dict(graph: AgreementGraph) -> Dict[str, Any]:
    return {
        "principals": [
            {
                "name": name,
                "capacity": graph.principal(name).capacity,
                "face_value": graph.principal(name).face_value,
            }
            for name in graph.names
        ],
        "agreements": [
            {"grantor": a.grantor, "grantee": a.grantee, "lb": a.lb, "ub": a.ub}
            for a in graph.agreements()
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> AgreementGraph:
    if not isinstance(data, dict):
        raise AgreementError("agreement document must be a JSON object")
    g = AgreementGraph()
    for p in data.get("principals", []):
        try:
            g.add_principal(
                p["name"],
                capacity=float(p.get("capacity", 0.0)),
                face_value=float(p.get("face_value", 100.0)),
            )
        except (KeyError, TypeError) as exc:
            raise AgreementError(f"malformed principal entry {p!r}") from exc
    for a in data.get("agreements", []):
        try:
            g.add_agreement(
                Agreement(a["grantor"], a["grantee"], float(a["lb"]), float(a["ub"]))
            )
        except (KeyError, TypeError) as exc:
            raise AgreementError(f"malformed agreement entry {a!r}") from exc
    return g


def dump_graph(graph: AgreementGraph, path: Union[str, "object"]) -> None:
    """Write a graph to a JSON file (path or open file object)."""
    payload = json.dumps(graph_to_dict(graph), indent=2) + "\n"
    if hasattr(path, "write"):
        path.write(payload)  # type: ignore[union-attr]
    else:
        with open(path, "w") as fh:  # type: ignore[arg-type]
            fh.write(payload)


def load_graph(path: Union[str, "object"]) -> AgreementGraph:
    """Read a graph from a JSON file (path or open file object)."""
    if hasattr(path, "read"):
        data = json.load(path)  # type: ignore[arg-type]
    else:
        with open(path) as fh:  # type: ignore[arg-type]
            data = json.load(fh)
    return graph_from_dict(data)
