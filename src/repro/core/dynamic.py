"""Dynamic agreement interpretation (paper §2.2).

"In addition, agreements are interpreted dynamically: changes in a
principal's resource levels affect the amount available to others via
agreements."  The paper also notes the currency face value "gives
flexibility to change agreements by inflating or deflating the value of a
currency".

:class:`DynamicAccessManager` owns a mutable agreement graph and provides
versioned, lazily recomputed access levels.  Consumers (redirector
allocators) subscribe and are pushed fresh levels whenever capacities or
agreements change — the quasi-static precomputation of §3.1.1, re-run on
demand.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.access import AccessLevels, compute_access_levels
from repro.core.agreements import Agreement, AgreementError, AgreementGraph

__all__ = ["DynamicAccessManager"]

Subscriber = Callable[[AccessLevels], None]


class DynamicAccessManager:
    """Versioned access levels over a mutable agreement graph."""

    def __init__(self, graph: AgreementGraph, method: str = "closed"):
        self._graph = graph
        self._method = method
        self._version = 0
        self._computed_version = -1
        self._access: Optional[AccessLevels] = None
        self._subscribers: List[Subscriber] = []

    # -- reads ---------------------------------------------------------------

    @property
    def graph(self) -> AgreementGraph:
        return self._graph

    @property
    def version(self) -> int:
        return self._version

    @property
    def access(self) -> AccessLevels:
        if self._computed_version != self._version or self._access is None:
            self._access = compute_access_levels(self._graph, method=self._method)
            self._computed_version = self._version
        return self._access

    # -- subscriptions ----------------------------------------------------------

    def subscribe(self, fn: Subscriber) -> None:
        """``fn`` is called with fresh access levels after every change
        (and immediately on subscription)."""
        self._subscribers.append(fn)
        fn(self.access)

    def _notify(self) -> None:
        self._version += 1
        levels = self.access
        for fn in self._subscribers:
            fn(levels)

    # -- mutations ------------------------------------------------------------------

    def set_capacity(self, name: str, capacity: float) -> None:
        """A principal's physical resources changed (nodes added/failed)."""
        self._graph.set_capacity(name, capacity)
        self._notify()

    def add_principal(self, name: str, capacity: float = 0.0) -> None:
        self._graph.add_principal(name, capacity=capacity)
        self._notify()

    def add_agreement(self, agreement: Agreement) -> None:
        self._graph.add_agreement(agreement)
        self._notify()

    def remove_agreement(self, grantor: str, grantee: str) -> None:
        self._graph.remove_agreement(grantor, grantee)
        self._notify()

    def renegotiate(self, grantor: str, grantee: str, lb: float, ub: float) -> None:
        """Replace an existing agreement's bounds atomically."""
        existing = self._graph.agreement(grantor, grantee)
        if existing is None:
            raise AgreementError(f"no agreement {grantor}->{grantee}")
        self._graph.remove_agreement(grantor, grantee)
        try:
            self._graph.add_agreement(Agreement(grantor, grantee, lb, ub))
        except AgreementError:
            self._graph.add_agreement(existing)  # roll back
            raise
        self._notify()
