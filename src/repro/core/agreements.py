"""`[lb, ub]` agreements and the agreement graph (paper §2.2).

An agreement gives principal ``grantee`` access to a fraction of
``grantor``'s resources over a time window, modelled as a tuple
``[lb, ub]``: the lower bound is a guaranteed reservation during overload,
the upper bound a best-effort ceiling.  Unlike classical reservation
systems, resources reserved for the grantee may be used by others when the
grantee is idle — the calculus in :mod:`repro.core.flows` encodes this by
crediting unclaimed mandatory outflow back as *optional* value.

:class:`AgreementGraph` is the container the rest of the system consumes:
it validates agreements (a grantor may not guarantee more than 100% of its
currency) and exposes the matrices L (lower bounds), U (upper bounds) and
the capacity vector V used by the flow computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.principals import Principal
from repro.core.tickets import Currency, TicketKind

__all__ = ["Agreement", "AgreementGraph", "AgreementError"]

_EPS = 1e-9


class AgreementError(ValueError):
    """Raised when an agreement or graph is structurally invalid."""


@dataclass(frozen=True)
class Agreement:
    """grantor grants grantee access to [lb, ub] of its resources."""

    grantor: str
    grantee: str
    lb: float
    ub: float

    def __post_init__(self) -> None:
        if self.grantor == self.grantee:
            raise AgreementError("self-agreements are meaningless")
        if not (0.0 <= self.lb <= self.ub):
            raise AgreementError(
                f"need 0 <= lb <= ub, got [{self.lb}, {self.ub}]"
            )
        if self.ub > 1.0 + _EPS:
            raise AgreementError(f"upper bound cannot exceed 1.0, got {self.ub}")

    @property
    def optional(self) -> float:
        """Face fraction of the optional ticket: ub - lb."""
        return self.ub - self.lb

    def __str__(self) -> str:
        return f"{self.grantor}->{self.grantee} [{self.lb}, {self.ub}]"


class AgreementGraph:
    """Principals + agreements; the input to every scheduler in the system.

    >>> g = AgreementGraph()
    >>> g.add_principal("A", capacity=1000.0)
    >>> g.add_principal("B", capacity=1500.0)
    >>> _ = g.add_agreement(Agreement("A", "B", 0.4, 0.6))
    >>> g.lower_bounds()[g.index("A"), g.index("B")]
    0.4
    """

    def __init__(self, principals: Iterable[Principal] = ()):
        self._principals: Dict[str, Principal] = {}
        self._order: List[str] = []
        self._agreements: Dict[Tuple[str, str], Agreement] = {}
        for p in principals:
            self.add(p)

    # -- construction ------------------------------------------------------

    def add(self, principal: Principal) -> Principal:
        if principal.name in self._principals:
            raise AgreementError(f"duplicate principal {principal.name!r}")
        self._principals[principal.name] = principal
        self._order.append(principal.name)
        return principal

    def add_principal(
        self, name: str, capacity: float = 0.0, face_value: float = 100.0
    ) -> Principal:
        return self.add(Principal(name, capacity=capacity, face_value=face_value))

    def add_agreement(self, agreement: Agreement) -> Agreement:
        for who in (agreement.grantor, agreement.grantee):
            if who not in self._principals:
                raise AgreementError(f"unknown principal {who!r}")
        key = (agreement.grantor, agreement.grantee)
        if key in self._agreements:
            raise AgreementError(f"duplicate agreement {key[0]}->{key[1]}")
        total_lb = self.total_granted_lb(agreement.grantor) + agreement.lb
        if total_lb > 1.0 + _EPS:
            raise AgreementError(
                f"{agreement.grantor!r} would guarantee {total_lb:.3f} > 100% "
                "of its resources"
            )
        self._agreements[key] = agreement
        return agreement

    def set_capacity(self, name: str, capacity: float) -> None:
        """Update a principal's physical resources (dynamic interpretation,
        §2.2: capacity changes flow through agreements on recompute)."""
        old = self.principal(name)
        self._principals[name] = Principal(
            name, capacity=capacity, face_value=old.face_value
        )

    def remove_agreement(self, grantor: str, grantee: str) -> None:
        try:
            del self._agreements[(grantor, grantee)]
        except KeyError:
            raise AgreementError(f"no agreement {grantor}->{grantee}") from None

    # -- queries -----------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return list(self._order)

    @property
    def n(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._principals

    def __len__(self) -> int:
        return len(self._order)

    def principal(self, name: str) -> Principal:
        return self._principals[name]

    def index(self, name: str) -> int:
        try:
            return self._order.index(name)
        except ValueError:
            raise AgreementError(f"unknown principal {name!r}") from None

    def agreements(self) -> List[Agreement]:
        return list(self._agreements.values())

    def agreement(self, grantor: str, grantee: str) -> Optional[Agreement]:
        return self._agreements.get((grantor, grantee))

    def total_granted_lb(self, grantor: str) -> float:
        return sum(
            a.lb for (g, _), a in self._agreements.items() if g == grantor
        )

    # -- matrix views (consumed by repro.core.flows) -------------------------

    def capacities(self) -> np.ndarray:
        """V: aggregate capacity per principal, in request-units/sec."""
        return np.array(
            [self._principals[p].capacity for p in self._order], dtype=float
        )

    def lower_bounds(self) -> np.ndarray:
        """L[i, j] = lb of the agreement i -> j (0 where none)."""
        n = self.n
        L = np.zeros((n, n))
        for (g, e), a in self._agreements.items():
            L[self.index(g), self.index(e)] = a.lb
        return L

    def upper_bounds(self) -> np.ndarray:
        """U[i, j] = ub of the agreement i -> j (0 where none)."""
        n = self.n
        U = np.zeros((n, n))
        for (g, e), a in self._agreements.items():
            U[self.index(g), self.index(e)] = a.ub
        return U

    # -- ticket materialisation (paper §2.3) --------------------------------

    def mint(self) -> Dict[str, Currency]:
        """Materialise each agreement as mandatory/optional tickets.

        Returns one :class:`Currency` per principal with the tickets it has
        issued and holds — the concrete object model of the paper's Fig 3.
        """
        currencies = {
            name: Currency(name, self._principals[name].face_value)
            for name in self._order
        }
        for a in self._agreements.values():
            cur = currencies[a.grantor]
            face = cur.face_value
            if a.lb > 0:
                t = cur.issue(TicketKind.MANDATORY, a.grantee, a.lb * face)
                currencies[a.grantee].receive(t)
            if a.optional > 0:
                t = cur.issue(TicketKind.OPTIONAL, a.grantee, a.optional * face)
                currencies[a.grantee].receive(t)
        return currencies

    def validate(self) -> None:
        """Re-check global invariants (useful after manual edits)."""
        for name in self._order:
            total = self.total_granted_lb(name)
            if total > 1.0 + _EPS:
                raise AgreementError(
                    f"{name!r} guarantees {total:.3f} > 100% of its resources"
                )

    def copy(self) -> "AgreementGraph":
        g = AgreementGraph()
        for name in self._order:
            g.add(self._principals[name])
        for a in self._agreements.values():
            g._agreements[(a.grantor, a.grantee)] = a
        return g
