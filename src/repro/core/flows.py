"""Transitive mandatory/optional resource flows (paper §3.1.1, Formulae 1–4).

Given the agreement graph with lower-bound matrix ``L``, upper-bound matrix
``U`` (``Opt = U - L``) and capacity vector ``V``, the paper reduces any
agreement structure — including transitive chains — to per-principal access
levels.  Two equivalent computations are provided:

**Closed form** (:func:`closed_form_flows`, the default).  Mandatory value
flows along mandatory tickets, so gross currency values satisfy the linear
fixed point ``M = V + L^T M``; the Neumann series of ``(I - L^T)^{-1}`` is
exactly the paper's Formula 1 summed over all path lengths.  With
``R = (I - L)^{-1}`` and ``l_i = sum_j L[i, j]``:

- gross mandatory currency value   ``M = R^T V``
- retained mandatory access        ``MC_i = M_i (1 - l_i)``           (Formula 3)
- optional inflow                  ``Obar = (I - U^T)^{-1} Opt^T M``
- optional access                  ``OC_i = Obar_i + M_i l_i``        (Formula 4)
- per-pair mandatory entitlement   ``MI[i, k] = V_k R[k, i] (1 - l_i)``
- per-pair optional entitlement
  ``OI[i, k] = V_k ([R Opt (I-U)^{-1}]_{k i} + R[k, i] l_i)``

``MI[i, k]`` / ``OI[i, k]`` are the paper's ``MI_ki`` / ``OI_ki`` — the
entitlement of principal *i* on principal *k*'s physical server, the
quantities bounding ``x_ik`` in the community LP.

**Simple-path enumeration** (:func:`path_flows`).  The paper's Formulae 1–2
literally sum over cycle-free transitive paths of length <= m.  We enumerate
simple paths by DFS.  On DAGs this agrees with the closed form to machine
precision (tested); on cyclic graphs the closed form additionally counts
cycle traversals (a geometric series), which the paper's summation
constraints exclude — both behaviours are exposed.

Conservation invariants (property-tested in ``tests/core/test_flows.py``):

- ``sum_i MI[i, k] = V_k`` — mandatory entitlements exactly partition every
  server's capacity;
- ``sum_k MI[i, k] = MC_i`` and ``sum_k OI[i, k] = OC_i``.

Verified against the paper's Fig 3 worked example:
final (mandatory, optional) = A (600, 400), B (760, 1340), C (1140, 960).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.agreements import AgreementError, AgreementGraph

__all__ = ["FlowMatrices", "closed_form_flows", "path_flows", "spectral_radius"]

_EPS = 1e-9


@dataclass(frozen=True)
class FlowMatrices:
    """Result of a flow computation over an agreement graph.

    All arrays are indexed in graph order (``names``).  ``MI[i, k]`` is
    principal i's mandatory entitlement on k's server (the paper's
    ``MI_ki``); likewise ``OI``.
    """

    names: Tuple[str, ...]
    V: np.ndarray        # capacities
    L: np.ndarray        # lower bounds
    U: np.ndarray        # upper bounds
    M: np.ndarray        # gross mandatory currency values
    Obar: np.ndarray     # optional inflow per currency
    MC: np.ndarray       # retained mandatory access (Formula 3)
    OC: np.ndarray       # optional access (Formula 4)
    MI: np.ndarray       # MI[i, k]: i's mandatory entitlement on server k
    OI: np.ndarray       # OI[i, k]: i's optional entitlement on server k

    def index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise AgreementError(f"unknown principal {name!r}") from None

    def mandatory(self, name: str) -> float:
        return float(self.MC[self.index(name)])

    def optional(self, name: str) -> float:
        return float(self.OC[self.index(name)])

    def entitlement(self, holder: str, owner: str) -> Tuple[float, float]:
        """(mandatory, optional) entitlement of ``holder`` on ``owner``'s server."""
        i, k = self.index(holder), self.index(owner)
        return float(self.MI[i, k]), float(self.OI[i, k])

    def check_conservation(self, atol: float = 1e-6) -> None:
        """Assert the conservation invariants; raises AssertionError if violated."""
        np.testing.assert_allclose(self.MI.sum(axis=0), self.V, atol=atol)
        np.testing.assert_allclose(self.MI.sum(axis=1), self.MC, atol=atol)
        np.testing.assert_allclose(self.OI.sum(axis=1), self.OC, atol=atol)


def spectral_radius(A: np.ndarray) -> float:
    """Largest absolute eigenvalue (convergence test for the Neumann series)."""
    if A.size == 0:
        return 0.0
    return float(np.max(np.abs(np.linalg.eigvals(A))))


def _matrices(graph: AgreementGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return graph.capacities(), graph.lower_bounds(), graph.upper_bounds()


def closed_form_flows(graph: AgreementGraph) -> FlowMatrices:
    """Exact flow computation via linear solves (the production path).

    Raises :class:`AgreementError` when a cyclic agreement structure
    transfers 100% of value around a loop (the fixed point diverges); use
    :func:`path_flows` — the paper's cycle-excluding formulation — there.
    """
    V, L, U = _matrices(graph)
    n = graph.n
    if n == 0:
        z = np.zeros(0)
        zz = np.zeros((0, 0))
        return FlowMatrices((), z, zz, zz, z, z, z, z, zz, zz)

    eye = np.eye(n)
    for name, mat in (("lower-bound", L), ("upper-bound", U)):
        rho = spectral_radius(mat)
        if rho >= 1.0 - _EPS:
            raise AgreementError(
                f"{name} agreement cycle has spectral radius {rho:.4f} >= 1; "
                "the transitive flow diverges — use path_flows() instead"
            )

    leak = L.sum(axis=1)                      # l_i: mandatory fraction granted away
    R = np.linalg.solve(eye - L, eye)         # (I - L)^{-1}
    M = R.T @ V                               # gross mandatory currency values
    Opt = U - L
    Obar = np.linalg.solve(eye - U.T, Opt.T @ M)
    MC = M * (1.0 - leak)
    OC = Obar + M * leak

    # Per-pair entitlement matrices (see module docstring for derivation).
    S = R @ Opt @ np.linalg.solve(eye - U, eye)
    MI = (1.0 - leak)[:, None] * R.T * V[None, :]
    OI = S.T * V[None, :] + R.T * V[None, :] * leak[:, None]
    return FlowMatrices(
        tuple(graph.names), V, L, U, M, Obar, MC, OC, MI, OI
    )


def path_flows(graph: AgreementGraph, max_len: Optional[int] = None) -> FlowMatrices:
    """The paper's literal Formulae 1–4: sum over *simple* transitive paths.

    ``max_len`` bounds path length (the paper's ``m``); default ``n - 1``
    covers every simple path.  Exponential in the worst case — intended for
    the small principal counts the paper targets ("this latter number is
    expected to be small", §3.1.2) and for cross-validation of the closed
    form.
    """
    V, L, U = _matrices(graph)
    n = graph.n
    if max_len is None:
        max_len = max(n - 1, 0)
    Opt = U - L
    # Adjacency: an edge exists wherever any agreement exists.
    adj: List[List[int]] = [
        [k for k in range(n) if U[j, k] > 0.0 or L[j, k] > 0.0] for j in range(n)
    ]

    # P[j, i]: sum over simple paths j->i of the product of lbs (Formula 1).
    # Q[j, i]: sum over simple paths and switch positions of
    #          lb...lb * opt * ub...ub (Formula 2).
    P = np.eye(n)
    Q = np.zeros((n, n))

    def dfs(start: int, node: int, lb_prod: float,
            switch_prods: List[float], visited: int, depth: int) -> None:
        # switch_prods[r] accumulates, for each already-switched position,
        # the running product continued along ub edges.
        if depth >= max_len:
            return
        for nxt in adj[node]:
            if visited & (1 << nxt):
                continue  # the paper's summation constraints: simple paths only
            lb_e, ub_e, opt_e = L[node, nxt], U[node, nxt], Opt[node, nxt]
            # Paths that already switched to optional continue along ub edges;
            # a switch at this edge contributes lb-prefix * opt (Formula 2).
            new_switch = [s * ub_e for s in switch_prods if s * ub_e > 0.0]
            if opt_e > 0.0 and lb_prod > 0.0:
                new_switch.append(lb_prod * opt_e)
            new_lb = lb_prod * lb_e
            if new_lb > 0.0:
                P[start, nxt] += new_lb
            if new_switch:
                Q[start, nxt] += sum(new_switch)
            if new_lb > 0.0 or new_switch:
                dfs(start, nxt, new_lb, new_switch, visited | (1 << nxt), depth + 1)

    for j in range(n):
        dfs(j, j, 1.0, [], 1 << j, 0)

    leak = L.sum(axis=1)
    M = P.T @ V
    Obar = Q.T @ V
    MC = M * (1.0 - leak)
    OC = Obar + M * leak
    MI = (1.0 - leak)[:, None] * P.T * V[None, :]
    OI = Q.T * V[None, :] + P.T * V[None, :] * leak[:, None]
    return FlowMatrices(
        tuple(graph.names), V, L, U, M, Obar, MC, OC, MI, OI
    )
