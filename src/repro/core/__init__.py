"""The paper's primary contribution: the agreement calculus (§2) and the
flow computations that reduce an arbitrary agreement graph to per-principal
mandatory/optional access levels (§3.1.1).

Modules:

- :mod:`repro.core.principals` — principals owning rate resources.
- :mod:`repro.core.tickets` — tickets (mandatory/optional) and currencies.
- :mod:`repro.core.agreements` — `[lb, ub]` agreements and the agreement graph.
- :mod:`repro.core.flows` — transitive mandatory/optional resource flows
  (paper Formulae 1–4), via simple-path enumeration and closed-form matrices.
- :mod:`repro.core.valuation` — real currency values (the Fig 3 arithmetic).
- :mod:`repro.core.access` — MC/OC access levels and MI/OI entitlement
  matrices consumed by the LP schedulers.
"""

from repro.core.access import AccessLevels, compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph, AgreementError
from repro.core.dynamic import DynamicAccessManager
from repro.core.flows import FlowMatrices, closed_form_flows, path_flows
from repro.core.hierarchy import Tier, build_hierarchy, effective_entitlements
from repro.core.multiresource import MultiResourceAccess, compute_multiresource_access
from repro.core.principals import Principal
from repro.core.serialization import dump_graph, graph_from_dict, graph_to_dict, load_graph
from repro.core.tickets import Currency, Ticket, TicketKind
from repro.core.valuation import CurrencyValuation, value_currencies

__all__ = [
    "Principal",
    "Currency",
    "Ticket",
    "TicketKind",
    "Agreement",
    "AgreementGraph",
    "AgreementError",
    "FlowMatrices",
    "closed_form_flows",
    "path_flows",
    "CurrencyValuation",
    "value_currencies",
    "AccessLevels",
    "compute_access_levels",
    "DynamicAccessManager",
    "MultiResourceAccess",
    "compute_multiresource_access",
    "Tier",
    "build_hierarchy",
    "effective_entitlements",
    "graph_to_dict",
    "graph_from_dict",
    "dump_graph",
    "load_graph",
]
