"""Real currency and ticket values (the paper's Fig 3 arithmetic, §2.3).

A ticket's *real* value is computed from the real value of its issuing
currency: a mandatory ticket with face fraction ``lb`` issued by *i* is
worth ``lb * M_i`` (``M_i`` the gross mandatory value of i's currency);
an optional ticket ``[lb, ub]`` is worth ``(ub - lb) * M_i + ub * Obar_i``
— it carries the optional slice of the mandatory currency value plus the
pass-through of optional value that reached *i* (up to the upper bound).

Worked example (paper Fig 3, reproduced in tests):

- M-Ticket1 (A->B, 0.4):  400      - O-Ticket2 (A->B, 0.2):  200
- M-Ticket3 (B->C, 0.6): 1140      - O-Ticket4 (B->C, 0.4):  960
- final (mandatory, optional): A (600, 400), B (760, 1340), C (1140, 960)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.agreements import AgreementError, AgreementGraph
from repro.core.flows import FlowMatrices, closed_form_flows
from repro.core.tickets import TicketKind

__all__ = ["CurrencyValuation", "value_currencies"]


@dataclass(frozen=True)
class CurrencyValuation:
    """Name-indexed view over a :class:`FlowMatrices` result."""

    graph: AgreementGraph
    flows: FlowMatrices

    def gross(self, name: str) -> float:
        """Gross mandatory value of the currency (paper: 'real value')."""
        return float(self.flows.M[self.flows.index(name)])

    def optional_inflow(self, name: str) -> float:
        """Optional value flowing into the currency from held tickets."""
        return float(self.flows.Obar[self.flows.index(name)])

    def final(self, name: str) -> Tuple[float, float]:
        """Final remaining (mandatory, optional) value — Fig 3's bottom line."""
        i = self.flows.index(name)
        return float(self.flows.MC[i]), float(self.flows.OC[i])

    def ticket_value(self, grantor: str, grantee: str, kind: TicketKind) -> float:
        """Real value of the (grantor -> grantee) ticket of the given kind."""
        agreement = self.graph.agreement(grantor, grantee)
        if agreement is None:
            raise AgreementError(f"no agreement {grantor}->{grantee}")
        m = self.gross(grantor)
        if kind is TicketKind.MANDATORY:
            return agreement.lb * m
        return agreement.optional * m + agreement.ub * self.optional_inflow(grantor)

    def as_dict(self) -> Dict[str, Tuple[float, float]]:
        return {name: self.final(name) for name in self.flows.names}


def value_currencies(graph: AgreementGraph) -> CurrencyValuation:
    """Value every currency in the graph via the closed-form flow solve."""
    return CurrencyValuation(graph=graph, flows=closed_form_flows(graph))
