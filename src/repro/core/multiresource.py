"""Multiple resource types (paper §3.1.1's vector extension).

The paper describes the calculus for a single rate resource and notes that
with multiple resource types (CPU share, network bandwidth, transaction
rate) "above quantities should be represented as vectors".  This module
implements that extension.

Agreements stay *scalar* — a `[lb, ub]` fraction of the grantor's currency
covers the same fraction of **every** resource the grantor owns (that is
what a currency means: a claim on the principal's whole resource bundle).
Capacities become vectors ``V[i, r]`` over resource types, and because the
transitive-flow solution is linear in ``V``, one structure factorisation
serves all types:

    MI[i, k, r] = V[k, r] * R[k, i] * (1 - l_i)
    OI[i, k, r] = V[k, r] * (S[k, i] + R[k, i] * l_i)

with the same ``R = (I - L)^{-1}`` and ``S = R (U - L) (I - U)^{-1}``
matrices as the scalar calculus.  The conservation invariant holds per
type: ``sum_i MI[i, k, r] = V[k, r]``.

Requests carry a *demand profile* — units of each resource consumed per
request — so a principal's request-rate entitlement on a server is the
bottleneck across types: ``min_r entitlement[r] / profile[r]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.core.agreements import AgreementError, AgreementGraph
from repro.core.flows import spectral_radius

__all__ = ["MultiResourceAccess", "compute_multiresource_access", "bottleneck_rate"]

_EPS = 1e-9


@dataclass(frozen=True)
class MultiResourceAccess:
    """Vector access levels: everything indexed [principal, (owner,) type].

    Attributes:
        names: principals, graph order.
        resources: resource-type names.
        V: capacities, shape (n, m).
        MC/OC: mandatory/optional access levels, shape (n, m).
        MI/OI: per-pair entitlements, shape (n, n, m) indexed
            [holder, owner, type].
    """

    names: Tuple[str, ...]
    resources: Tuple[str, ...]
    V: np.ndarray
    MC: np.ndarray
    OC: np.ndarray
    MI: np.ndarray
    OI: np.ndarray

    @property
    def n(self) -> int:
        return len(self.names)

    @property
    def m(self) -> int:
        return len(self.resources)

    def index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise AgreementError(f"unknown principal {name!r}") from None

    def rindex(self, resource: str) -> int:
        try:
            return self.resources.index(resource)
        except ValueError:
            raise AgreementError(f"unknown resource {resource!r}") from None

    def mandatory(self, name: str, resource: str) -> float:
        return float(self.MC[self.index(name), self.rindex(resource)])

    def optional(self, name: str, resource: str) -> float:
        return float(self.OC[self.index(name), self.rindex(resource)])

    def entitlement(self, holder: str, owner: str, resource: str) -> Tuple[float, float]:
        i, k, r = self.index(holder), self.index(owner), self.rindex(resource)
        return float(self.MI[i, k, r]), float(self.OI[i, k, r])

    def scalar_view(self, resource: str) -> "ScalarView":
        """One resource type's slice, shaped like scalar AccessLevels."""
        r = self.rindex(resource)
        return ScalarView(
            names=self.names,
            V=self.V[:, r].copy(),
            MC=self.MC[:, r].copy(),
            OC=self.OC[:, r].copy(),
            MI=self.MI[:, :, r].copy(),
            OI=self.OI[:, :, r].copy(),
        )

    def request_capacity(
        self, holder: str, owner: str, profile: Mapping[str, float],
        include_optional: bool = False,
    ) -> float:
        """Requests/second ``holder`` may place on ``owner``'s server given
        a per-request demand ``profile`` — the bottleneck across types."""
        i, k = self.index(holder), self.index(owner)
        ent = self.MI[i, k] + (self.OI[i, k] if include_optional else 0.0)
        return bottleneck_rate(ent, profile, self.resources)

    def check_conservation(self, atol: float = 1e-6) -> None:
        np.testing.assert_allclose(self.MI.sum(axis=0), self.V, atol=atol)
        np.testing.assert_allclose(self.MI.sum(axis=1), self.MC, atol=atol)
        np.testing.assert_allclose(self.OI.sum(axis=1), self.OC, atol=atol)


# A light structural twin of repro.core.access.AccessLevels, so the scalar
# schedulers can run unmodified on a single resource type's slice.
from repro.core.access import AccessLevels as ScalarView  # noqa: E402


def bottleneck_rate(
    entitlement: np.ndarray,
    profile: Mapping[str, float],
    resources: Sequence[str],
) -> float:
    """min_r entitlement[r] / profile[r] over types with non-zero demand."""
    rate = np.inf
    for r, res in enumerate(resources):
        demand = float(profile.get(res, 0.0))
        if demand < 0:
            raise ValueError(f"negative demand for resource {res!r}")
        if demand > _EPS:
            rate = min(rate, float(entitlement[r]) / demand)
    return 0.0 if rate is np.inf else float(rate)


def compute_multiresource_access(
    graph: AgreementGraph,
    capacities: Mapping[str, Mapping[str, float]],
    resources: Sequence[str],
) -> MultiResourceAccess:
    """Vector access levels for ``graph`` with per-type capacities.

    Args:
        graph: the agreement graph (its scalar per-principal capacities are
            ignored; ``capacities`` provides the vectors).
        capacities: per-principal ``{resource: amount}``; missing entries
            are zero.
        resources: resource-type names, fixing the vector order.

    The agreement matrices are factorised once; every type reuses them.
    """
    resources = tuple(resources)
    if not resources:
        raise ValueError("need at least one resource type")
    n, m = graph.n, len(resources)
    names = tuple(graph.names)
    V = np.zeros((n, m))
    for name, vec in capacities.items():
        i = graph.index(name)
        for res, amount in vec.items():
            if res not in resources:
                raise AgreementError(f"unknown resource {res!r} for {name!r}")
            if amount < 0:
                raise ValueError(f"negative capacity for {name!r}/{res!r}")
            V[i, resources.index(res)] = float(amount)

    L = graph.lower_bounds()
    U = graph.upper_bounds()
    eye = np.eye(n)
    for label, mat in (("lower-bound", L), ("upper-bound", U)):
        rho = spectral_radius(mat)
        if rho >= 1.0 - _EPS:
            raise AgreementError(
                f"{label} agreement cycle has spectral radius {rho:.4f} >= 1"
            )
    leak = L.sum(axis=1)
    R = np.linalg.solve(eye - L, eye)
    S = R @ (U - L) @ np.linalg.solve(eye - U, eye)

    # Broadcast the scalar structure across resource types:
    # MI[i, k, r] = V[k, r] * R[k, i] * (1 - leak_i)
    MI = (1.0 - leak)[:, None, None] * R.T[:, :, None] * V[None, :, :]
    OI = S.T[:, :, None] * V[None, :, :] + R.T[:, :, None] * V[None, :, :] * leak[:, None, None]
    MC = MI.sum(axis=1)
    OC = OI.sum(axis=1)
    return MultiResourceAccess(
        names=names, resources=resources, V=V, MC=MC, OC=OC, MI=MI, OI=OI
    )
