"""Hierarchical agreement structures (paper §2.1).

"When a sub-ASP resells ASP services to its own customers, *hierarchical*
agreement structures emerge.  In this paper we mainly focus on the former
two agreement models, although our techniques can be naturally extended to
the latter."

This module is that natural extension, built entirely on the existing
calculus: a reseller is just a principal whose currency is funded by an
upstream agreement and drained by the agreements it issues to its own
customers.  The helpers here construct such trees from a declarative spec,
validate that no reseller oversells its *guaranteed* inflow (overselling
the optional headroom is legal — that is what best-effort reselling means),
and report effective end-customer entitlements through the transitive
flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.access import AccessLevels, compute_access_levels
from repro.core.agreements import Agreement, AgreementError, AgreementGraph

__all__ = ["Tier", "build_hierarchy", "oversell_report", "effective_entitlements"]


@dataclass
class Tier:
    """One node of a reselling tree.

    Attributes:
        name: principal name.
        capacity: physical resources this node owns (usually only the root
            provider has any).
        share: the ``[lb, ub]`` fraction of the *parent's* currency granted
            to this node (ignored on the root).
        children: sub-resellers / end customers.
    """

    name: str
    capacity: float = 0.0
    share: Tuple[float, float] = (0.0, 0.0)
    children: List["Tier"] = field(default_factory=list)

    def child(self, name: str, lb: float, ub: float,
              capacity: float = 0.0) -> "Tier":
        """Attach and return a sub-tier (fluent builder)."""
        tier = Tier(name=name, capacity=capacity, share=(lb, ub))
        self.children.append(tier)
        return tier

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


def build_hierarchy(root: Tier) -> AgreementGraph:
    """Materialise a reselling tree as an agreement graph.

    Every edge parent->child becomes an ``Agreement(parent, child, lb, ub)``;
    the graph validator already refuses any parent guaranteeing more than
    100% of its currency.
    """
    g = AgreementGraph()
    for tier in root.walk():
        g.add_principal(tier.name, capacity=tier.capacity)
    for tier in root.walk():
        for c in tier.children:
            lb, ub = c.share
            g.add_agreement(Agreement(tier.name, c.name, lb, ub))
    return g


def oversell_report(root: Tier) -> Dict[str, Tuple[float, float]]:
    """Per-reseller (guaranteed, best-effort) fractions of its currency sold.

    The guaranteed fraction (sum of children's lower bounds) can never
    exceed 1 — the graph builder enforces it, so mandatory promises are
    always backed by the reseller's own inflow.  The best-effort fraction
    (sum of upper bounds) legitimately may exceed 1: that is statistical
    overselling of optional headroom, the economics the paper's ASP model
    implies.
    """
    report = {}
    for tier in root.walk():
        if not tier.children:
            continue
        guaranteed = sum(c.share[0] for c in tier.children)
        best_effort = sum(c.share[1] for c in tier.children)
        report[tier.name] = (guaranteed, best_effort)
    return report


def effective_entitlements(root: Tier) -> Dict[str, Tuple[float, float]]:
    """(mandatory, optional) request rates every leaf customer ends up
    with, resolved through the full reselling chain."""
    g = build_hierarchy(root)
    access = compute_access_levels(g)
    out = {}
    for tier in root.walk():
        if tier.children:
            continue
        out[tier.name] = (access.mandatory(tier.name), access.optional(tier.name))
    return out
