"""Mergeable aggregates flowing through the combining tree.

The protocol primarily aggregates the per-principal queue-length *sum*
(:class:`VectorAggregate`), which is all the LP schedulers need; the paper
notes that "other aggregate queue metrics such as the maximum, minimum,
average queue length, and variation in queue lengths, can also be
collected in the same fashion" — :class:`StreamStats` provides those with
Chan et al.'s numerically stable parallel variance combine, the standard
HPC reduction for distributed moments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence

__all__ = ["VectorAggregate", "StreamStats"]


@dataclass
class VectorAggregate:
    """Per-principal additive vector (queue lengths), plus contributor count."""

    values: Dict[str, float] = field(default_factory=dict)
    contributors: int = 0

    @classmethod
    def local(cls, values: Mapping[str, float]) -> "VectorAggregate":
        return cls(values=dict(values), contributors=1)

    @classmethod
    def from_columns(cls, principals: Sequence[str],
                     row: Iterable[float]) -> "VectorAggregate":
        """Rebuild a leaf aggregate from a dense per-principal row.

        This is the shared-memory boundary form: workers publish one
        float64 column per principal, and the parent reconstitutes the
        leaf with insertion order fixed by ``principals`` — the same order
        the worker's own :meth:`local` used — so downstream combining-tree
        folds are float-for-float identical to the pipe transport.
        """
        return cls.local({p: float(v) for p, v in zip(principals, row)})

    def merge(self, other: "VectorAggregate") -> "VectorAggregate":
        out = dict(self.values)
        for k, v in other.values.items():
            out[k] = out.get(k, 0.0) + v
        return VectorAggregate(values=out, contributors=self.contributors + other.contributors)

    def get(self, key: str, default: float = 0.0) -> float:
        return self.values.get(key, default)

    def copy(self) -> "VectorAggregate":
        return VectorAggregate(values=dict(self.values), contributors=self.contributors)


@dataclass
class StreamStats:
    """Mergeable (count, mean, variance, min, max) summary.

    Merging follows Chan, Golub & LeVeque's pairwise update, so combining
    partial summaries up the tree is exact regardless of combine order.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    @classmethod
    def of(cls, value: float) -> "StreamStats":
        return cls(count=1, mean=float(value), m2=0.0, min=float(value), max=float(value))

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "StreamStats") -> "StreamStats":
        if self.count == 0:
            return StreamStats(**vars(other))
        if other.count == 0:
            return StreamStats(**vars(self))
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / n
        return StreamStats(
            count=n,
            mean=mean,
            m2=m2,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else math.nan

    @property
    def sample_variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else math.nan
