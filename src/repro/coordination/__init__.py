"""Coordinated scheduling across redirectors (paper §3.2).

Redirector nodes are organised into a *combining tree*: leaves periodically
send per-principal queue-length vectors up, interior nodes merge children
with their own local vector, the root broadcasts the global aggregate back
down.  One round costs 2(n-1) messages versus O(n^2) for pairwise exchange.

- :mod:`repro.coordination.tree` — tree overlay construction (star,
  balanced, chain, latency-aware) with dynamic join/leave.
- :mod:`repro.coordination.aggregation` — mergeable aggregates: vector
  sums plus max/min/mean/variance via Chan's parallel combine.
- :mod:`repro.coordination.messages` — wire records and counters.
- :mod:`repro.coordination.protocol` — the periodic aggregate-up /
  broadcast-down protocol over simulated links, with staleness tracking
  and the conservative 1/R fallback that produces Fig 8's phase-1
  half-mandatory behaviour.
"""

from repro.coordination.aggregation import StreamStats, VectorAggregate
from repro.coordination.messages import AggregateBroadcast, MessageCounter, QueueReport
from repro.coordination.pairwise import PairwiseNode, build_pairwise
from repro.coordination.protocol import AggregationNode, GlobalView, build_protocol
from repro.coordination.tree import CombiningTree

__all__ = [
    "CombiningTree",
    "PairwiseNode",
    "build_pairwise",
    "VectorAggregate",
    "StreamStats",
    "QueueReport",
    "AggregateBroadcast",
    "MessageCounter",
    "AggregationNode",
    "GlobalView",
    "build_protocol",
]
