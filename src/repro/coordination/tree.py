"""Combining-tree overlays.

The paper notes "several algorithms exist for dynamically overlaying trees
on a set of nodes in a wide area network" and does not fix one; we provide
the useful family — star, balanced k-ary, chain (worst case), and a
latency-aware tree built by Prim's algorithm over a pairwise latency
matrix — plus dynamic join/leave, all behind one :class:`CombiningTree`
interface the protocol layer consumes.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["CombiningTree"]

NodeId = Hashable


class CombiningTree:
    """A rooted tree over node ids with parent/children accessors."""

    def __init__(self, root: NodeId, parent: Mapping[NodeId, NodeId]):
        self.root = root
        self._parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        self._children: Dict[NodeId, List[NodeId]] = {root: []}
        for node, par in parent.items():
            if node == root:
                continue
            self._parent[node] = par
            self._children.setdefault(node, [])
        for node, par in self._parent.items():
            if par is not None:
                if par not in self._parent:
                    raise ValueError(f"parent {par!r} of {node!r} not in tree")
                self._children.setdefault(par, []).append(node)
        self._validate()

    # -- constructors -------------------------------------------------------

    @classmethod
    def star(cls, nodes: Sequence[NodeId]) -> "CombiningTree":
        """Every node reports directly to the first (depth 1)."""
        if not nodes:
            raise ValueError("need at least one node")
        root = nodes[0]
        return cls(root, {n: root for n in nodes[1:]})

    @classmethod
    def chain(cls, nodes: Sequence[NodeId]) -> "CombiningTree":
        """A path — the deepest (worst-latency) overlay; useful in tests."""
        if not nodes:
            raise ValueError("need at least one node")
        parent = {nodes[i]: nodes[i - 1] for i in range(1, len(nodes))}
        return cls(nodes[0], parent)

    @classmethod
    def balanced(cls, nodes: Sequence[NodeId], fanout: int = 2) -> "CombiningTree":
        """Complete k-ary tree in node order (depth O(log_k n))."""
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if not nodes:
            raise ValueError("need at least one node")
        parent = {
            nodes[i]: nodes[(i - 1) // fanout] for i in range(1, len(nodes))
        }
        return cls(nodes[0], parent)

    @classmethod
    def latency_aware(
        cls,
        nodes: Sequence[NodeId],
        latency: np.ndarray,
        root: Optional[NodeId] = None,
    ) -> "CombiningTree":
        """Minimum-latency spanning tree (Prim), rooted at ``root``.

        ``latency[i, j]`` is the delay between ``nodes[i]`` and
        ``nodes[j]``; the tree minimises total link latency, a standard
        proxy for aggregate round time on WAN overlays.
        """
        n = len(nodes)
        latency = np.asarray(latency, dtype=float)
        if latency.shape != (n, n):
            raise ValueError(f"latency matrix must be {n}x{n}")
        root_idx = 0 if root is None else list(nodes).index(root)
        in_tree = {root_idx}
        parent: Dict[NodeId, NodeId] = {}
        dist = latency[root_idx].copy()
        near = np.full(n, root_idx)
        dist[root_idx] = np.inf
        for _ in range(n - 1):
            j = int(np.argmin(dist))
            if not np.isfinite(dist[j]):
                raise ValueError("latency matrix is disconnected (inf row)")
            parent[nodes[j]] = nodes[int(near[j])]
            in_tree.add(j)
            dist[j] = np.inf
            closer = latency[j] < dist
            near[closer] = j
            dist = np.minimum(dist, latency[j])
            dist[list(in_tree)] = np.inf
        return cls(nodes[root_idx], parent)

    # -- accessors ------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        return list(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    def parent(self, node: NodeId) -> Optional[NodeId]:
        return self._parent[node]

    def children(self, node: NodeId) -> List[NodeId]:
        return list(self._children.get(node, []))

    def is_leaf(self, node: NodeId) -> bool:
        return not self._children.get(node)

    def depth(self, node: NodeId) -> int:
        d = 0
        while (node := self._parent[node]) is not None:  # type: ignore[assignment]
            d += 1
        return d

    def height(self) -> int:
        return max((self.depth(n) for n in self.nodes), default=0)

    def messages_per_round(self) -> int:
        """2(n-1): one report up and one broadcast down per edge."""
        return 2 * (len(self) - 1)

    @staticmethod
    def pairwise_messages_per_round(n: int) -> int:
        """The O(n^2) alternative the paper compares against."""
        return n * (n - 1)

    # -- dynamics ---------------------------------------------------------------

    def join(self, node: NodeId, parent: NodeId) -> None:
        """Attach a new node under ``parent``."""
        if node in self._parent:
            raise ValueError(f"{node!r} already in tree")
        if parent not in self._parent:
            raise ValueError(f"unknown parent {parent!r}")
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)

    def leave(self, node: NodeId) -> None:
        """Remove a node; its children are re-attached to its parent."""
        if node == self.root:
            raise ValueError("cannot remove the root; re-root first")
        par = self._parent[node]
        assert par is not None
        for child in self._children.get(node, []):
            self._parent[child] = par
            self._children[par].append(child)
        self._children[par].remove(node)
        del self._parent[node]
        self._children.pop(node, None)

    def remove_failed(self, node: NodeId) -> Dict[NodeId, NodeId]:
        """Remove a *crashed* node, healing the overlay around it.

        Unlike :meth:`leave` this also handles the root: the failed root's
        first child (in attachment order — deterministic) is promoted to
        root and its orphaned siblings reparent under the promoted node.
        Interior/leaf failures reparent orphans to the grandparent, exactly
        like :meth:`leave`.

        Returns the reparenting map ``{orphan: new_parent}`` so a live
        protocol layer can rewire links for precisely the edges that
        changed.  After healing, :meth:`messages_per_round` is again
        ``2(n-1)`` over the survivors.
        """
        if node not in self._parent:
            raise ValueError(f"{node!r} not in tree")
        if len(self._parent) == 1:
            raise ValueError("cannot remove the last node")
        moved: Dict[NodeId, NodeId] = {}
        if node != self.root:
            par = self._parent[node]
            assert par is not None
            for child in self._children.get(node, []):
                moved[child] = par
            self.leave(node)
            return moved
        orphans = list(self._children.get(node, []))
        promoted = orphans[0]
        self._parent[promoted] = None
        self.root = promoted
        for sibling in orphans[1:]:
            self._parent[sibling] = promoted
            self._children[promoted].append(sibling)
            moved[sibling] = promoted
        del self._parent[node]
        self._children.pop(node, None)
        return moved

    # -- internal -----------------------------------------------------------------

    def _validate(self) -> None:
        seen = set()
        for node in self._parent:
            cur: Optional[NodeId] = node
            path = set()
            while cur is not None:
                if cur in path:
                    raise ValueError(f"cycle through {cur!r}")
                path.add(cur)
                if cur in seen:
                    break
                cur = self._parent.get(cur, None)
            seen |= path
        if len(seen) != len(self._parent):
            raise ValueError("tree is disconnected")
