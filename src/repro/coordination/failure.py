"""Heartbeat-based failure detection for the combining tree.

The paper's protocol already tolerates *silent* degradation (partial
rounds, stale broadcasts); what it leaves open is how a node learns that a
neighbour is gone so the overlay can be rebuilt.  :class:`FailureDetector`
is the standard timeout detector with per-peer exponential backoff:

- every peer is expected to heartbeat within ``timeout`` seconds;
- an overdue peer becomes *suspected*; if it stays silent for a further
  ``timeout`` it is *confirmed* dead and reported once;
- a heartbeat from a suspected peer clears the suspicion and **doubles**
  that peer's timeout (capped at ``max_timeout``) — the classic adaptive
  response to a slow-but-alive peer, which stops a jittery WAN link from
  flapping the overlay;
- a heartbeat from a confirmed-dead peer signals *recovery* (restart or
  partition heal) and resets its timeout to the base value.

The detector is pure bookkeeping driven by ``heard``/``check`` calls from
the membership layer; it owns no timers and draws no randomness, so it
adds nothing to the determinism surface.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

__all__ = ["FailureDetector", "PeerState"]

NodeId = Hashable


class PeerState:
    """Detector bookkeeping for one monitored peer."""

    __slots__ = ("last_heard", "timeout", "suspected_at", "dead")

    def __init__(self, now: float, timeout: float) -> None:
        self.last_heard = now
        self.timeout = timeout
        self.suspected_at: Optional[float] = None
        self.dead = False


class FailureDetector:
    """Timeout + exponential-backoff liveness tracking over a peer set."""

    def __init__(
        self,
        timeout: float,
        max_timeout: Optional[float] = None,
        backoff: float = 2.0,
        on_dead: Optional[Callable[[NodeId], None]] = None,
        on_recovered: Optional[Callable[[NodeId], None]] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        self.base_timeout = float(timeout)
        self.max_timeout = float(max_timeout) if max_timeout is not None else 8.0 * timeout
        self.backoff = float(backoff)
        self.on_dead = on_dead
        self.on_recovered = on_recovered
        self.suspicions = 0
        self.false_suspicions = 0
        self._peers: Dict[NodeId, PeerState] = {}

    # -- membership --------------------------------------------------------

    def watch(self, peer: NodeId, now: float) -> None:
        """Start (or refresh) monitoring a peer; idempotent."""
        if peer not in self._peers:
            self._peers[peer] = PeerState(now, self.base_timeout)

    def unwatch(self, peer: NodeId) -> None:
        self._peers.pop(peer, None)

    @property
    def peers(self) -> List[NodeId]:
        return list(self._peers)

    def is_dead(self, peer: NodeId) -> bool:
        state = self._peers.get(peer)
        return state is not None and state.dead

    def is_suspected(self, peer: NodeId) -> bool:
        state = self._peers.get(peer)
        return state is not None and (state.dead or state.suspected_at is not None)

    # -- events ------------------------------------------------------------

    def heard(self, peer: NodeId, now: float) -> None:
        """A heartbeat (or any message) arrived from ``peer``."""
        state = self._peers.get(peer)
        if state is None:
            return
        state.last_heard = now
        if state.dead:
            # Recovery: restart or partition heal.  Timeout resets to base
            # so a re-failure is caught promptly again.
            state.dead = False
            state.suspected_at = None
            state.timeout = self.base_timeout
            if self.on_recovered is not None:
                self.on_recovered(peer)
        elif state.suspected_at is not None:
            # False suspicion — the peer was just slow.  Back off.
            state.suspected_at = None
            state.timeout = min(state.timeout * self.backoff, self.max_timeout)
            self.false_suspicions += 1

    def check(self, now: float) -> List[NodeId]:
        """Advance suspicion state; returns peers *newly confirmed dead*.

        Confirmation takes two silent timeouts: one to suspect, one more to
        confirm — so a single missed heartbeat never reconfigures the tree.
        """
        confirmed: List[NodeId] = []
        for peer, state in self._peers.items():
            if state.dead:
                continue
            silent = now - state.last_heard
            if state.suspected_at is None:
                if silent > state.timeout:
                    state.suspected_at = now
                    self.suspicions += 1
            elif now - state.suspected_at > state.timeout:
                state.dead = True
                confirmed.append(peer)
                if self.on_dead is not None:
                    self.on_dead(peer)
        return confirmed
