"""Wire records exchanged over combining-tree links, plus counters used by
the message-complexity ablation (2(n-1) tree vs O(n^2) pairwise)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.coordination.aggregation import VectorAggregate

__all__ = ["QueueReport", "AggregateBroadcast", "Heartbeat", "MessageCounter"]


@dataclass(frozen=True)
class QueueReport:
    """Child -> parent: partial aggregate for one protocol round."""

    sender: str
    round_id: int
    aggregate: VectorAggregate


@dataclass(frozen=True)
class AggregateBroadcast:
    """Parent -> child: the global aggregate for one protocol round."""

    round_id: int
    aggregate: VectorAggregate
    issued_at: float


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon between tree neighbours (failure detection).

    Heartbeats ride the same links as protocol traffic, so a partition or
    lossy link starves them exactly as it starves reports — which is what
    the :class:`repro.coordination.failure.FailureDetector` keys on.
    """

    sender: str
    seq: int
    sent_at: float


@dataclass
class MessageCounter:
    """Counts protocol traffic by message type."""

    reports: int = 0
    broadcasts: int = 0
    heartbeats: int = 0
    by_link: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Aggregation traffic only — heartbeats are control-plane overhead
        and tracked separately (the 2(n-1) ablation counts rounds)."""
        return self.reports + self.broadcasts

    def count(self, msg: object, link_name: str = "") -> None:
        if isinstance(msg, QueueReport):
            self.reports += 1
        elif isinstance(msg, AggregateBroadcast):
            self.broadcasts += 1
        elif isinstance(msg, Heartbeat):
            self.heartbeats += 1
        if link_name:
            self.by_link[link_name] = self.by_link.get(link_name, 0) + 1
