"""Wire records exchanged over combining-tree links, plus counters used by
the message-complexity ablation (2(n-1) tree vs O(n^2) pairwise)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.coordination.aggregation import VectorAggregate

__all__ = ["QueueReport", "AggregateBroadcast", "MessageCounter"]


@dataclass(frozen=True)
class QueueReport:
    """Child -> parent: partial aggregate for one protocol round."""

    sender: str
    round_id: int
    aggregate: VectorAggregate


@dataclass(frozen=True)
class AggregateBroadcast:
    """Parent -> child: the global aggregate for one protocol round."""

    round_id: int
    aggregate: VectorAggregate
    issued_at: float


@dataclass
class MessageCounter:
    """Counts protocol traffic by message type."""

    reports: int = 0
    broadcasts: int = 0
    by_link: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.reports + self.broadcasts

    def count(self, msg: object, link_name: str = "") -> None:
        if isinstance(msg, QueueReport):
            self.reports += 1
        elif isinstance(msg, AggregateBroadcast):
            self.broadcasts += 1
        if link_name:
            self.by_link[link_name] = self.by_link.get(link_name, 0) + 1
