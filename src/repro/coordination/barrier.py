"""Window-epoch barrier for sharded single-scenario execution.

The paper's coordination structure (§3.2) makes clusters independent
*within* a scheduling window: they exchange state only through the
combining tree at window boundaries, 2(n-1) messages per round.  The
sharded runner (:mod:`repro.experiments.sharded`) exploits exactly that —
each worker process simulates its clusters through window *k* to
completion, then stops at the boundary and exchanges state with the
parent.  This module is the transport shim for that exchange: typed
boundary messages over :mod:`multiprocessing` pipes, plus a conservative
barrier (`EpochBarrier`) that releases no worker into window *k+1* until
every worker has reported window *k*.

Failure model: a worker that dies mid-window (crash, OOM kill, bug) must
surface as a typed :class:`ShardWorkerError` in the parent — never a
hang.  ``gather`` therefore polls each pipe with a bounded interval,
checks process liveness between polls, and enforces an overall per-epoch
timeout.  A worker that catches its own exception ships a
:class:`WorkerFailure` message so the parent can re-raise with the
original detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic  # simlint: disable=SIM001  # IPC liveness timeout, not sim time
from typing import Any, Dict, List, Optional, Sequence, Type, TypeVar

from repro.coordination.aggregation import VectorAggregate

__all__ = [
    "AllocationMessage",
    "BoundaryMessage",
    "FinishMessage",
    "WorkerFailure",
    "ShardWorkerError",
    "EpochBarrier",
]

M = TypeVar("M")


@dataclass(frozen=True)
class AllocationMessage:
    """Parent -> workers: release into window ``epoch`` with this policy.

    ``frac`` maps each principal to the globally consistent served
    fraction ``min(1, x_p / n_p)`` from the window LP on the previous
    epoch's merged demand; each worker scales it by its clusters' *local*
    demand, exactly how :class:`~repro.scheduling.allocator.WindowAllocator`
    applies a combining-tree broadcast.  ``frac=None`` means no global
    information exists yet (epoch 0): workers fall back to the
    conservative 1/R mandatory split carried in their static task config,
    the paper's Fig 8 phase-1 behaviour.
    """

    epoch: int
    frac: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class BoundaryMessage:
    """Worker -> parent at the window-``epoch`` boundary.

    ``demand`` carries one :class:`VectorAggregate` per cluster (never
    pre-summed per shard: the parent folds the per-cluster leaves through
    the combining tree in an order fixed by cluster names, so the merged
    float totals are independent of how clusters were packed into
    shards).
    """

    epoch: int
    shard: int
    demand: Dict[str, VectorAggregate] = field(default_factory=dict)


@dataclass(frozen=True)
class FinishMessage:
    """Parent -> workers: the horizon is reached; reply with your summary."""

    epoch: int


@dataclass(frozen=True)
class WorkerFailure:
    """Worker -> parent: the worker caught a fatal error and is exiting."""

    shard: int
    detail: str


class ShardWorkerError(RuntimeError):
    """A shard worker died, timed out, or broke the epoch protocol."""

    def __init__(self, shard: int, detail: str):
        super().__init__(f"shard worker {shard}: {detail}")
        self.shard = shard
        self.detail = detail


class EpochBarrier:
    """Parent-side conservative barrier over worker pipes.

    One connection per worker process.  ``broadcast`` releases all
    workers into an epoch; ``gather`` blocks until every worker has
    reported that epoch's boundary message, converting worker death,
    protocol violations and timeouts into :class:`ShardWorkerError`.
    """

    def __init__(
        self,
        connections: Sequence[Any],
        processes: Optional[Sequence[Any]] = None,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
    ) -> None:
        if processes is not None and len(processes) != len(connections):
            raise ValueError("need one process handle per connection")
        self.connections = list(connections)
        self.processes = list(processes) if processes is not None else None
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)

    def __len__(self) -> int:
        return len(self.connections)

    def broadcast(self, msg: Any) -> None:
        for shard, conn in enumerate(self.connections):
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError) as exc:
                raise ShardWorkerError(
                    shard, f"pipe closed while sending {type(msg).__name__}: {exc}"
                ) from exc

    def _alive(self, shard: int) -> bool:
        if self.processes is None:
            return True
        return bool(self.processes[shard].is_alive())

    def _recv_one(self, shard: int, deadline: float) -> Any:
        conn = self.connections[shard]
        while True:
            remaining = deadline - monotonic()  # simlint: disable=SIM001
            if remaining <= 0:
                raise ShardWorkerError(
                    shard, f"no boundary message within {self.timeout:.0f}s (hang?)"
                )
            try:
                if conn.poll(min(self.poll_interval, remaining)):
                    return conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise self._death_error(shard, exc) from exc
            if not self._alive(shard) and not conn.poll(0):
                raise self._death_error(shard, None)

    def _death_error(self, shard: int, cause: Optional[BaseException]) -> ShardWorkerError:
        """Diagnose an EOF/liveness failure: prefer the exitcode if dead."""
        if self.processes is not None:
            proc = self.processes[shard]
            proc.join(timeout=1.0)
            if not proc.is_alive():
                return ShardWorkerError(
                    shard,
                    f"worker process died mid-window (exitcode {proc.exitcode})",
                )
        return ShardWorkerError(shard, f"pipe closed mid-window: {cause}")

    def gather(self, epoch: int, kind: Type[M]) -> List[M]:
        """One ``kind`` message per worker for ``epoch``, in shard order."""
        deadline = monotonic() + self.timeout  # simlint: disable=SIM001
        out: List[M] = []
        for shard in range(len(self.connections)):
            msg = self._recv_one(shard, deadline)
            if isinstance(msg, WorkerFailure):
                raise ShardWorkerError(msg.shard, msg.detail)
            if not isinstance(msg, kind):
                raise ShardWorkerError(
                    shard, f"expected {kind.__name__} for epoch {epoch}, "
                           f"got {type(msg).__name__}"
                )
            got = getattr(msg, "epoch", epoch)
            if got != epoch:
                raise ShardWorkerError(
                    shard, f"epoch skew: expected {epoch}, got {got}"
                )
            out.append(msg)
        return out

    def close(self, terminate: bool = False) -> None:
        for conn in self.connections:
            try:
                conn.close()
            except OSError:
                pass
        if self.processes is not None:
            for proc in self.processes:
                if terminate and proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5.0)
