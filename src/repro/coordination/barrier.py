"""Window-epoch barrier for sharded single-scenario execution.

The paper's coordination structure (§3.2) makes clusters independent
*within* a scheduling window: they exchange state only through the
combining tree at window boundaries, 2(n-1) messages per round.  The
sharded runner (:mod:`repro.experiments.sharded`) exploits exactly that —
each worker process simulates its clusters through window *k* to
completion, then stops at the boundary and exchanges state with the
parent.  This module is the transport shim for that exchange: typed
boundary messages over :mod:`multiprocessing` pipes, plus a conservative
barrier (`EpochBarrier`) that releases no worker into window *k+1* until
every worker has reported window *k*.  Under the shared-memory data
plane (:mod:`repro.coordination.shm`) the per-epoch boundary payload
moves out of the pipes entirely; the pipe then carries only low-rate
control traffic — faults, reassignment, finish, failure — polled through
:meth:`EpochBarrier.poll_control`.

Failure model: a worker that dies mid-window (crash, OOM kill, bug) must
surface as a typed :class:`ShardWorkerError` in the parent — never a
hang.  ``recv``/``gather`` therefore poll each pipe with capped
exponential backoff (``poll_floor`` up to ``poll_interval``), check
process liveness between polls, and enforce an overall per-epoch
timeout.  A worker that catches its own exception ships a
:class:`WorkerFailure` message so the parent can re-raise with the
original detail.  The barrier itself is policy-free: *recovering* from a
:class:`ShardWorkerError` (respawn from checkpoint, or reassign the dead
shard's clusters) is the runner's job, supported here by the slot
surgery primitives ``replace`` and ``deactivate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic  # simlint: disable=SIM001  # IPC liveness timeout, not sim time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, TypeVar

from repro.coordination.aggregation import VectorAggregate
from repro.coordination.checkpoint import ClusterCheckpoint

__all__ = [
    "AllocationMessage",
    "BoundaryMessage",
    "ReassignMessage",
    "FinishMessage",
    "WorkerFailure",
    "ShardWorkerError",
    "EpochBarrier",
]

M = TypeVar("M")


@dataclass(frozen=True)
class AllocationMessage:
    """Parent -> workers: release into window ``epoch`` with this policy.

    ``frac`` maps each principal to the globally consistent served
    fraction ``min(1, x_p / n_p)`` from the window LP on the previous
    epoch's merged demand; each worker scales it by its clusters' *local*
    demand, exactly how :class:`~repro.scheduling.allocator.WindowAllocator`
    applies a combining-tree broadcast.  ``frac=None`` means no global
    information exists yet (epoch 0): workers fall back to the
    conservative 1/R mandatory split carried in their static task config,
    the paper's Fig 8 phase-1 behaviour.
    """

    epoch: int
    frac: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class BoundaryMessage:
    """Worker -> parent at the window-``epoch`` boundary.

    ``demand`` carries one :class:`VectorAggregate` per cluster (never
    pre-summed per shard: the parent folds the per-cluster leaves through
    the combining tree in an order fixed by cluster names, so the merged
    float totals are independent of how clusters were packed into
    shards).  ``admitted`` carries the per-principal admitted counts for
    the same window and ``checkpoints`` the post-window state snapshot
    per cluster — together they make the parent the sole owner of run
    history, so a worker death loses at most the in-flight window.
    """

    epoch: int
    shard: int
    demand: Dict[str, VectorAggregate] = field(default_factory=dict)
    admitted: Dict[str, Dict[str, float]] = field(default_factory=dict)
    checkpoints: Dict[str, ClusterCheckpoint] = field(default_factory=dict)


@dataclass(frozen=True)
class ReassignMessage:
    """Parent -> one survivor: adopt a dead shard's clusters mid-epoch.

    Sent for window ``epoch`` *after* that window's
    :class:`AllocationMessage`; pipe FIFO ordering therefore guarantees
    the survivor sees it after finishing its own window, and the adoption
    reply (a second :class:`BoundaryMessage` covering only the adopted
    clusters) after its regular boundary report.  ``checkpoints`` holds
    the adopted clusters' state as of epoch ``epoch - 1`` (empty when the
    dead shard never completed a window), so the survivor replays the
    in-flight window for them bit-identically.
    """

    epoch: int
    clusters: Tuple[Any, ...] = ()   # ShardCluster specs (typed in sharded.py)
    checkpoints: Dict[str, ClusterCheckpoint] = field(default_factory=dict)
    frac: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class FinishMessage:
    """Parent -> workers: the horizon is reached; exit cleanly."""

    epoch: int


@dataclass(frozen=True)
class WorkerFailure:
    """Worker -> parent: the worker caught a fatal error and is exiting."""

    shard: int
    detail: str


class ShardWorkerError(RuntimeError):
    """A shard worker died, timed out, or broke the epoch protocol."""

    def __init__(self, shard: int, detail: str):
        super().__init__(f"shard worker {shard}: {detail}")
        self.shard = shard
        self.detail = detail


class EpochBarrier:
    """Parent-side conservative barrier over worker pipes.

    One connection per worker slot.  ``broadcast`` releases all active
    workers into an epoch; ``gather`` blocks until every active worker
    has reported that epoch's boundary message, converting worker death,
    protocol violations and timeouts into :class:`ShardWorkerError`.
    ``send``/``recv`` are the per-slot primitives a recovering runner
    needs to retry a single shard without disturbing the rest.

    A slot can be *replaced* (a respawned worker takes over the shard
    index) or *deactivated* (the shard is gone for good; its connection
    is closed and its process reaped, and broadcast/gather skip it).
    ``polls``/``poll_wait_s`` count the parent's poll syscalls and the
    wall-clock time spent blocked in them, so the scaling bench can
    report parent-side poll overhead.
    """

    def __init__(
        self,
        connections: Sequence[Any],
        processes: Optional[Sequence[Any]] = None,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        poll_floor: float = 0.001,
    ) -> None:
        if processes is not None and len(processes) != len(connections):
            raise ValueError("need one process handle per connection")
        self.connections: List[Any] = list(connections)
        self.processes: Optional[List[Any]] = (
            list(processes) if processes is not None else None
        )
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.poll_floor = min(float(poll_floor), self.poll_interval)
        self.polls = 0
        self.poll_wait_s = 0.0

    def __len__(self) -> int:
        return len(self.connections)

    @property
    def active(self) -> List[int]:
        """Shard indices that still have a live connection slot."""
        return [i for i, conn in enumerate(self.connections) if conn is not None]

    # -- per-slot primitives ------------------------------------------------

    def send(self, shard: int, msg: Any) -> None:
        conn = self.connections[shard]
        if conn is None:
            raise ShardWorkerError(shard, "shard slot is deactivated")
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                shard, f"pipe closed while sending {type(msg).__name__}: {exc}"
            ) from exc

    def broadcast(self, msg: Any) -> None:
        for shard in self.active:
            self.send(shard, msg)

    def recv(self, shard: int, epoch: int, kind: Type[M],
             deadline: Optional[float] = None) -> M:
        """One ``kind`` message for ``epoch`` from one shard."""
        if deadline is None:
            deadline = monotonic() + self.timeout  # simlint: disable=SIM001
        msg = self._recv_one(shard, deadline)
        return self._check(shard, msg, epoch, kind)

    def poll_control(self, shard: int) -> Optional[Any]:
        """Non-blocking control-pipe check for one shard.

        The shared-memory data plane moves boundary traffic out of the
        pipes, but the pipe still carries failure and adoption control
        messages — and worker death still surfaces as EOF/liveness here.
        Returns a pending message, ``None`` when the pipe is quiet, and
        raises :class:`ShardWorkerError` for :class:`WorkerFailure`
        payloads, EOF, or a dead process with a drained pipe.
        """
        conn = self.connections[shard]
        if conn is None:
            raise ShardWorkerError(shard, "shard slot is deactivated")
        try:
            self.polls += 1
            if conn.poll(0):
                msg = conn.recv()
                if isinstance(msg, WorkerFailure):
                    raise ShardWorkerError(msg.shard, msg.detail)
                return msg
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise self._death_error(shard, exc) from exc
        if not self._alive(shard) and not conn.poll(0):
            raise self._death_error(shard, None)
        return None

    def try_recv(self, shard: int, epoch: int, kind: Type[M]) -> Optional[M]:
        """Non-blocking typed receive: ``None`` when nothing is pending."""
        msg = self.poll_control(shard)
        if msg is None:
            return None
        return self._check(shard, msg, epoch, kind)

    # -- internals ----------------------------------------------------------

    def _alive(self, shard: int) -> bool:
        if self.processes is None or self.processes[shard] is None:
            return True
        return bool(self.processes[shard].is_alive())

    def _recv_one(self, shard: int, deadline: float) -> Any:
        conn = self.connections[shard]
        if conn is None:
            raise ShardWorkerError(shard, "shard slot is deactivated")
        # Capped exponential backoff: a worker mid-window keeps the parent
        # nearly idle (sleeps approach poll_interval), while a boundary
        # message that is about to arrive is picked up within ~poll_floor.
        wait = self.poll_floor
        while True:
            remaining = deadline - monotonic()  # simlint: disable=SIM001
            if remaining <= 0:
                raise ShardWorkerError(
                    shard, f"no boundary message within {self.timeout:.0f}s (hang?)"
                )
            try:
                t0 = monotonic()  # simlint: disable=SIM001
                ready = conn.poll(min(wait, remaining))
                self.polls += 1
                self.poll_wait_s += monotonic() - t0  # simlint: disable=SIM001
                if ready:
                    return conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise self._death_error(shard, exc) from exc
            if not self._alive(shard) and not conn.poll(0):
                raise self._death_error(shard, None)
            wait = min(wait * 2.0, self.poll_interval)

    def _death_error(self, shard: int, cause: Optional[BaseException]) -> ShardWorkerError:
        """Diagnose an EOF/liveness failure: prefer the exitcode if dead."""
        if self.processes is not None and self.processes[shard] is not None:
            proc = self.processes[shard]
            proc.join(timeout=1.0)
            if not proc.is_alive():
                return ShardWorkerError(
                    shard,
                    f"worker process died mid-window (exitcode {proc.exitcode})",
                )
        return ShardWorkerError(shard, f"pipe closed mid-window: {cause}")

    def _check(self, shard: int, msg: Any, epoch: int, kind: Type[M]) -> M:
        if isinstance(msg, WorkerFailure):
            raise ShardWorkerError(msg.shard, msg.detail)
        if not isinstance(msg, kind):
            raise ShardWorkerError(
                shard, f"expected {kind.__name__} for epoch {epoch}, "
                       f"got {type(msg).__name__}"
            )
        got = getattr(msg, "epoch", epoch)
        if got != epoch:
            raise ShardWorkerError(
                shard, f"epoch skew: expected {epoch}, got {got}"
            )
        return msg

    def gather(self, epoch: int, kind: Type[M]) -> List[M]:
        """One ``kind`` message per active worker for ``epoch``, in shard order."""
        deadline = monotonic() + self.timeout  # simlint: disable=SIM001
        out: List[M] = []
        for shard in self.active:
            out.append(self.recv(shard, epoch, kind, deadline=deadline))
        return out

    # -- slot surgery -------------------------------------------------------

    def _reap(self, shard: int) -> None:
        """Ensure the slot's old process is dead, reaped, and released."""
        if self.processes is None:
            return
        proc = self.processes[shard]
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        try:
            proc.close()
        except ValueError:
            pass   # refused to die even after SIGKILL; leave the handle
        self.processes[shard] = None

    def _close_conn(self, shard: int) -> None:
        conn = self.connections[shard]
        if conn is None:
            return
        try:
            conn.close()
        except OSError:
            pass
        self.connections[shard] = None

    def replace(self, shard: int, connection: Any, process: Any) -> None:
        """Install a respawned worker in a slot (old one is reaped first)."""
        self._close_conn(shard)
        self._reap(shard)
        self.connections[shard] = connection
        if self.processes is not None:
            self.processes[shard] = process

    def deactivate(self, shard: int) -> None:
        """Retire a slot for good: close its pipe end and reap its process."""
        self._close_conn(shard)
        self._reap(shard)

    def close(self, terminate: bool = False) -> None:
        """Tear everything down; no worker process or pipe FD survives.

        Closing the parent pipe ends first gives well-behaved workers an
        EOF to exit on; ``terminate`` (the failure path) additionally
        SIGTERMs everything still alive, and anything that survives the
        join grace is SIGKILLed.  Process handles are always ``close()``d
        so the semaphores/FDs multiprocessing holds per child are
        released even when a run fails.
        """
        for shard in range(len(self.connections)):
            self._close_conn(shard)
        if self.processes is None:
            return
        for proc in self.processes:
            if proc is not None and terminate and proc.is_alive():
                proc.terminate()
        for shard in range(len(self.processes)):
            self._reap(shard)
