"""Zero-copy shared-memory data plane for the sharded lane.

The paper's enforcement loop is a per-window cycle — summarized demand up
a combining tree, one allocation vector broadcast back down — and its
economics depend on the measurement plane costing ~nothing next to the
work it measures.  PR 7/9 crossed that boundary with pickled pipe
messages: every epoch serialized per-cluster ``VectorAggregate``s plus a
full checkpoint that was JSON-canonicalized and SHA-256'd before the next
window could start.  This module replaces that with one preallocated
``multiprocessing.shared_memory`` segment, viewed through numpy:

* a **control block** the parent seqlock-publishes each epoch's
  allocation into (replacing per-shard ``AllocationMessage`` sends), and
* one **region per shard** holding a K-deep ring of fixed-layout slots;
  each slot has demand and admitted columns (``C×P float64``) plus one
  binary checkpoint record per cluster
  (:func:`repro.coordination.checkpoint.pack_checkpoint`).

Workers write their clusters' rows in place and publish with a per-slot
**seqlock**: the slot's sequence word is bumped to ``2·epoch+1`` (odd =
torn) before the row writes and to ``2·epoch+2`` (even = published)
after.  The parent polls the sequence word, copies the rows it needs, and
re-checks the word — an unchanged even value proves the copy saw no
concurrent writer; anything else is retried.  The steady-state epoch
therefore does **zero pickling and zero hashing**; pipes remain only for
low-rate control traffic (faults, reassignment, finish, failure), and the
checkpoint ring is decoded only on restore, spill, or audit.

Memory-ordering caveat: the seqlock has no explicit fences — it relies on
the total-store-order guarantee of x86-64 (and on CPython's interpreter
making every numpy store a completed call before the next begins).  That
is the documented portability boundary; the torn-read stress test in
``tests/coordination/test_shm.py`` exercises the retry path empirically.

Every region is sized for *all* clusters in the world (rows are indexed
by global cluster position), so reassignment can move a cluster between
shards without relayout — the memory cost is small (the 8-shard bench
world is ~200 KiB total) and the layout stays static for the whole run.

Regions ring-buffer ``depth`` (K ≥ 2) epochs.  Slot ``e % K`` holds epoch
``e``; because workers can never run more than one allocation ahead of
the parent, the ``e−1`` slot a restore reads is always intact while epoch
``e`` is in flight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.coordination.checkpoint import (
    ClusterCheckpoint,
    pack_checkpoint,
    record_words,
    unpack_checkpoint,
)

__all__ = [
    "PlaneSpec",
    "ShmDataPlane",
    "ShmUnavailable",
]

# Control block layout (uint64 words; float fields as IEEE-754 bits):
#   word 0            seqlock word (2·epoch+1 torn, 2·epoch+2 published)
#   word 1            epoch
#   word 2            has_frac (0 = conservative/None, 1 = vector present)
#   word 3..3+P-1     served fraction per principal (float64 bits)
# An absent principal is encoded as NaN — never a legitimate fraction —
# so the reconstructed dict has exactly the sender's key set.
_CTL_BASE_WORDS = 3


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be used here; callers fall back to pipes."""


@dataclass(frozen=True)
class PlaneSpec:
    """Everything a worker needs to attach to the parent's segment.

    Travels once in the :class:`~repro.experiments.sharded.ShardTask`;
    the layout is fully determined by these fields, so both sides derive
    identical offsets independently.
    """

    name: str
    clusters: Tuple[str, ...]      # global row order, fixed for the run
    principals: Tuple[str, ...]
    shards: int
    depth: int                     # ring depth K (>= 2)
    # True only when workers run with their own resource tracker (spawn):
    # such a tracker would unlink the segment when its worker exits
    # (bpo-38119), so the worker must unregister after attaching.  Under
    # fork the tracker is shared with the parent and unregistering would
    # drop the *parent's* leak protection — leave False.
    unregister_on_attach: bool = False


class ShmDataPlane:
    """One shared segment: allocation control block + per-shard slot rings."""

    def __init__(self, spec: PlaneSpec, shm: object, owner: bool) -> None:
        if spec.depth < 2:
            raise ValueError("ring depth must be >= 2 (restore reads k-1 "
                             "while epoch k is in flight)")
        self.spec = spec
        self._shm = shm
        self._owner = owner
        self.index: Dict[str, int] = {c: i for i, c in enumerate(spec.clusters)}
        C, P = len(spec.clusters), len(spec.principals)
        self._ctl_words = _CTL_BASE_WORDS + P
        self._row_words = 2 * P                      # demand + admitted
        self._rec_words = record_words(P)
        self._slot_words = C * self._row_words + C * self._rec_words
        self._region_words = spec.depth * (1 + self._slot_words)
        total = self._ctl_words + spec.shards * self._region_words
        self._words: Optional[np.ndarray] = np.ndarray(
            (total,), dtype=np.uint64, buffer=shm.buf)  # type: ignore[attr-defined]
        if owner:
            self._words[:] = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def segment_nbytes(cls, n_clusters: int, n_principals: int,
                       shards: int, depth: int) -> int:
        C, P = n_clusters, n_principals
        slot = C * 2 * P + C * record_words(P)
        return 8 * (_CTL_BASE_WORDS + P + shards * depth * (1 + slot))

    @classmethod
    def create(cls, clusters: Sequence[str], principals: Sequence[str],
               shards: int, depth: int = 2,
               unregister_on_attach: bool = False) -> "ShmDataPlane":
        """Allocate the segment in the parent; raises :class:`ShmUnavailable`
        when the platform cannot provide POSIX shared memory."""
        try:
            from multiprocessing import shared_memory
        except ImportError as exc:                       # pragma: no cover
            raise ShmUnavailable(f"shared_memory import failed: {exc}") from exc
        size = cls.segment_nbytes(len(clusters), len(principals),
                                  shards, depth)
        try:
            shm = shared_memory.SharedMemory(create=True, size=size)
        except OSError as exc:
            raise ShmUnavailable(f"shared memory allocation failed: {exc}") \
                from exc
        spec = PlaneSpec(name=shm.name, clusters=tuple(clusters),
                         principals=tuple(principals), shards=int(shards),
                         depth=int(depth),
                         unregister_on_attach=bool(unregister_on_attach))
        return cls(spec, shm, owner=True)

    @classmethod
    def attach(cls, spec: PlaneSpec) -> "ShmDataPlane":
        """Attach in a worker.

        When the worker has its own resource tracker (spawn start method),
        CPython registers the attach and would unlink the segment when the
        worker exits (bpo-38119) — ``spec.unregister_on_attach`` makes the
        worker unregister immediately; the parent owns the lifetime.
        """
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=spec.name, create=False)
        if spec.unregister_on_attach:
            from multiprocessing import resource_tracker
            try:
                resource_tracker.unregister(
                    getattr(shm, "_name", shm.name), "shared_memory")
            except Exception:                            # pragma: no cover
                pass
        return cls(spec, shm, owner=False)

    # -- internal views -----------------------------------------------------

    def _region(self, shard: int) -> int:
        return self._ctl_words + shard * self._region_words

    def seq_words(self, shard: int) -> np.ndarray:
        """The shard's per-slot sequence words (exposed for tests/audit)."""
        assert self._words is not None
        off = self._region(shard)
        return self._words[off:off + self.spec.depth]

    def _slot(self, shard: int, slot: int) -> Tuple[np.ndarray, np.ndarray,
                                                    np.ndarray]:
        """(demand C×P f64, admitted C×P f64, records C×REC u64) views."""
        assert self._words is not None
        C, P = len(self.spec.clusters), len(self.spec.principals)
        base = self._region(shard) + self.spec.depth + slot * self._slot_words
        cols = self._words[base:base + 2 * C * P].view(np.float64)
        demand = cols[:C * P].reshape(C, P)
        admitted = cols[C * P:].reshape(C, P)
        recs = self._words[base + 2 * C * P:
                           base + 2 * C * P + C * self._rec_words]
        return demand, admitted, recs.reshape(C, self._rec_words)

    # -- allocation control block (parent -> workers) -----------------------

    def write_allocation(self, epoch: int,
                         frac: Optional[Mapping[str, float]]) -> None:
        assert self._words is not None
        ctl = self._words[:self._ctl_words]
        ctl[0] = 2 * epoch + 1                 # odd: write in progress
        ctl[1] = epoch
        ctl[2] = 0 if frac is None else 1
        if frac is not None:
            flt = ctl.view(np.float64)
            for i, p in enumerate(self.spec.principals):
                flt[_CTL_BASE_WORDS + i] = frac.get(p, math.nan)
        ctl[0] = 2 * epoch + 2                 # even: published

    def poll_allocation(self, epoch: int) \
            -> Tuple[bool, Optional[Dict[str, float]]]:
        """(ready, frac) for exactly ``epoch``; retried by the caller."""
        assert self._words is not None
        ctl = self._words[:self._ctl_words]
        want = 2 * epoch + 2
        if int(ctl[0]) != want:
            return False, None
        has = int(ctl[2])
        vals = ctl.view(np.float64)[
            _CTL_BASE_WORDS:_CTL_BASE_WORDS + len(self.spec.principals)].copy()
        if int(ctl[0]) != want:                # torn by a concurrent write
            return False, None
        if not has:
            return True, None
        return True, {p: float(v)
                      for p, v in zip(self.spec.principals, vals)
                      if not math.isnan(v)}

    # -- boundary publication (workers -> parent) ---------------------------

    def publish(self, shard: int, epoch: int,
                boundary: Mapping[str, Tuple[Sequence[float], Sequence[float],
                                             ClusterCheckpoint]]) -> None:
        """Seqlock-publish one epoch's rows for ``boundary``'s clusters.

        ``boundary`` maps cluster name to (demand-per-principal,
        admitted-per-principal, checkpoint); only the given rows are
        touched, so a reassignment survivor can republish adopted rows
        into its own slot without disturbing its earlier writes.
        """
        slot = epoch % self.spec.depth
        seq = self.seq_words(shard)
        seq[slot] = 2 * epoch + 1
        demand, admitted, recs = self._slot(shard, slot)
        for name, (dvec, avec, ck) in boundary.items():
            i = self.index[name]
            demand[i, :] = dvec
            admitted[i, :] = avec
            pack_checkpoint(ck, self.spec.principals, recs[i])
        seq[slot] = 2 * epoch + 2

    def try_read_boundary(self, shard: int, epoch: int,
                          names: Sequence[str]) \
            -> Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]]:
        """Copy ``names``' demand/admitted rows for ``epoch``, or None.

        None means "not published yet or torn mid-copy" — the caller
        simply polls again.  A successful return is a consistent snapshot:
        the sequence word was the epoch's even value both before and after
        the copy.
        """
        slot = epoch % self.spec.depth
        seq = self.seq_words(shard)
        want = 2 * epoch + 2
        if int(seq[slot]) != want:
            return None
        demand, admitted, _ = self._slot(shard, slot)
        idx = [self.index[n] for n in names]
        dcopy = demand[idx, :].copy()
        acopy = admitted[idx, :].copy()
        if int(seq[slot]) != want:             # writer raced us: retry
            return None
        return {name: (dcopy[j], acopy[j]) for j, name in enumerate(names)}

    def read_checkpoints(self, epoch: int, owners: Mapping[str, int]) \
            -> Dict[str, ClusterCheckpoint]:
        """Decode ``epoch``'s checkpoint records from the ring.

        ``owners`` maps cluster name to the shard that published it during
        ``epoch``.  This is the deferred-digest path — restore, spill,
        audit — never the steady-state loop.  A slot whose sequence word
        is not the epoch's published value is an error: the ring is only
        read for epochs the parent has already folded.
        """
        slot = epoch % self.spec.depth
        out: Dict[str, ClusterCheckpoint] = {}
        by_shard: Dict[int, list] = {}
        for name, shard in owners.items():
            by_shard.setdefault(shard, []).append(name)
        for shard, names in by_shard.items():
            seq = self.seq_words(shard)
            if int(seq[slot]) != 2 * epoch + 2:
                raise RuntimeError(
                    f"checkpoint ring: shard {shard} slot {slot} does not "
                    f"hold epoch {epoch} (seq={int(seq[slot])})"
                )
            _, _, recs = self._slot(shard, slot)
            for name in names:
                out[name] = unpack_checkpoint(
                    recs[self.index[name]].copy(), self.spec.principals)
        return out

    # -- accounting ---------------------------------------------------------

    @property
    def segment_bytes(self) -> int:
        assert self._words is not None
        return int(self._words.nbytes)

    @property
    def boundary_bytes_per_epoch(self) -> int:
        """Data-plane bytes the parent handles per steady-state epoch.

        Demand + admitted row copies for every cluster, one control-block
        write, and one sequence-word read per shard.  Checkpoint records
        are *excluded*: they are written in place by workers and never
        cross to the parent until restore/spill/audit (that deferral is
        the point); their per-epoch ring footprint is reported separately
        as :attr:`ring_bytes_per_epoch`.
        """
        C, P = len(self.spec.clusters), len(self.spec.principals)
        return 8 * (C * 2 * P + self._ctl_words + self.spec.shards)

    @property
    def ring_bytes_per_epoch(self) -> int:
        """Checkpoint-record bytes written into the ring per epoch."""
        C = len(self.spec.clusters)
        return 8 * C * self._rec_words

    # -- lifetime -----------------------------------------------------------

    def close(self) -> None:
        self._words = None
        try:
            self._shm.close()                  # type: ignore[attr-defined]
        except BufferError:                    # pragma: no cover
            pass                               # stray view; OS cleanup wins

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()             # type: ignore[attr-defined]
            except FileNotFoundError:          # pragma: no cover
                pass
