"""Overlay membership: heartbeats, failure detection, and tree healing.

The paper leaves the overlay algorithm open ("several algorithms exist for
dynamically overlaying trees...").  :class:`ResilientTree` is our stand-in
for that membership service: it owns the live :class:`CombiningTree`, the
protocol nodes and every link, heartbeats across all of them, and repairs
the overlay when the :class:`repro.coordination.failure.FailureDetector`
confirms a death:

- a dead interior node's orphaned subtrees are reparented to the
  grandparent (``CombiningTree.remove_failed``);
- a dead root is replaced by its first child (deterministic promotion);
- the evicted node itself is *detached* — it keeps running locally but no
  longer reports or broadcasts, so its redirector's view goes stale and
  the allocator degrades to the conservative 1/R fallback;
- heartbeats keep flowing over *all* registered links, including links to
  evicted ex-neighbours ("watch links"), so a restarted or heal-side node
  is noticed the moment its beacons cross again and is rejoined as a leaf
  (under its original parent when that parent survived, else the current
  root).

One mechanism therefore covers crash → detect → heal → restart → rejoin
*and* partition → degrade → heal → re-converge.  The manager is global —
the honest simulation analogue of a membership algorithm run among the
reachable majority — and wholly deterministic: heartbeat and check ticks
are ``sim.every`` timers, iteration is in insertion order, and the only
randomness lives in per-link spawned RNG substreams.

Node ids must be strings (heartbeats carry the sender id on the wire).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.coordination.aggregation import VectorAggregate
from repro.coordination.failure import FailureDetector
from repro.coordination.messages import Heartbeat, MessageCounter
from repro.coordination.protocol import (
    AggregationNode,
    build_protocol,
    link_stream_name,
)
from repro.coordination.tree import CombiningTree
from repro.sim.engine import Simulator
from repro.sim.network import Link
from repro.sim.rng import RngStreams

__all__ = ["ResilientTree"]

# (link, src, dst) -> None; lets the fault injector cut links created by a
# heal while a partition crossing them is still active.
LinkFilter = Callable[[Link, str, str], None]


class ResilientTree:
    """A combining-tree protocol instance that survives churn.

    Construction mirrors :func:`build_protocol` (same suppliers /
    ``on_global`` / link parameters) and adds the failure machinery:
    ``heartbeat_period`` beacons, a detector with ``failure_timeout`` and
    exponential backoff, and automatic reconfiguration.
    """

    def __init__(
        self,
        sim: Simulator,
        tree: CombiningTree,
        period: float,
        suppliers: Mapping[str, Callable[[], Mapping[str, float]]],
        on_global: Optional[Mapping[str, Callable[[VectorAggregate, int], None]]] = None,
        link_delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        streams: Optional[RngStreams] = None,
        counter: Optional[MessageCounter] = None,
        flush_after: Optional[float] = None,
        heartbeat_period: float = 0.5,
        failure_timeout: Optional[float] = None,
        backoff: float = 2.0,
        max_timeout: Optional[float] = None,
        on_reconfigure: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        self.sim = sim
        self.tree = tree
        self.link_delay = float(link_delay)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self.streams = streams
        self.counter = counter
        self.on_reconfigure = on_reconfigure
        self.link_filter: Optional[LinkFilter] = None
        self.links: Dict[Tuple[str, str], Link] = {}
        self.nodes: Dict[str, AggregationNode] = build_protocol(
            sim, tree, period, suppliers, on_global=on_global,
            link_delay=link_delay, jitter=jitter, loss=loss,
            streams=streams, counter=counter, flush_after=flush_after,
            link_registry=self.links,
        )
        self.removed: Dict[str, Optional[str]] = {}   # node -> parent at eviction
        self.reconfigurations = 0
        self.rejoins = 0
        self.heartbeat_period = float(heartbeat_period)
        timeout = (
            float(failure_timeout) if failure_timeout is not None
            else 3.0 * self.heartbeat_period
        )
        self.detector = FailureDetector(
            timeout=timeout, max_timeout=max_timeout, backoff=backoff,
            on_recovered=self._rejoin,
        )
        for nid in tree.nodes:
            self.detector.watch(nid, sim.now)
            self.nodes[nid].on_heartbeat = self._heard
        self._hb_seq = 0
        # Beat before check at equal timestamps: registration order fixes
        # the sequence numbers, so dispatch order is deterministic.
        sim.every(self.heartbeat_period, self._beat, start=self.heartbeat_period)
        sim.every(self.heartbeat_period, self._check, start=self.heartbeat_period)

    # -- protocol-node helpers --------------------------------------------

    def node(self, nid: str) -> AggregationNode:
        return self.nodes[nid]

    def crash(self, nid: str) -> None:
        """Fail-stop a protocol node (the fault injector's entry point)."""
        self.nodes[nid].crash()

    def restart(self, nid: str) -> None:
        """Restart a crashed node; it rejoins once heartbeats are heard."""
        self.nodes[nid].restart()

    # -- heartbeat plane ---------------------------------------------------

    def _beat(self) -> None:
        self._hb_seq += 1
        now = self.sim.now
        for (src, _dst), link in self.links.items():
            node = self.nodes[src]
            if not node.alive:
                continue
            hb = Heartbeat(sender=str(src), seq=self._hb_seq, sent_at=now)
            if self.counter is not None:
                self.counter.count(hb)
            link.send(hb)

    def _heard(self, sender: str) -> None:
        self.detector.heard(sender, self.sim.now)

    def _check(self) -> None:
        for nid in self.detector.check(self.sim.now):
            self._remove_node(nid)

    # -- reconfiguration ---------------------------------------------------

    def _link(self, src: str, dst: str) -> Link:
        link = self.links.get((src, dst))
        if link is not None:
            return link
        # Deliberately the same substream protocol.py mints for this link:
        # a link recreated by tree healing continues the original link's
        # jitter/loss stream, so the draws are a function of (src, dst),
        # never of heal history.  Minting through link_stream_name keeps
        # the sharing auditable (simlint SIM008 sanctions one shared
        # helper origin).
        rng = (
            self.streams.get(link_stream_name(src, dst))
            if self.streams is not None else None
        )
        link = Link(
            self.sim, self.nodes[src], self.nodes[dst],
            delay=self.link_delay, jitter=self.jitter, loss=self.loss,
            rng=rng, name=link_stream_name(src, dst),
        )
        self.links[(src, dst)] = link
        if self.link_filter is not None:
            self.link_filter(link, src, dst)
        return link

    def _wire(self, child: str, parent: str) -> None:
        self.nodes[child].set_parent_link(self._link(child, parent))
        self.nodes[parent].add_child_link(child, self._link(parent, child))

    def _remove_node(self, nid: str) -> None:
        """Evict a confirmed-dead node and heal the overlay around it."""
        if nid in self.removed or nid not in self.tree or len(self.tree) <= 1:
            return
        orig_parent = self.tree.parent(nid)
        moved = self.tree.remove_failed(nid)
        node = self.nodes[nid]
        node.detached = True
        node.set_parent_link(None)
        for child in list(node.down_links):
            node.remove_child_link(child)
        if orig_parent is not None:
            self.nodes[orig_parent].remove_child_link(nid)
        for orphan, new_parent in moved.items():
            self._wire(orphan, new_parent)
        # A promoted root must not keep reporting to its dead ex-parent.
        self.nodes[self.tree.root].set_parent_link(None)
        self.removed[nid] = orig_parent
        # Watch links to/from the current root keep a beacon path between
        # every evicted node and the live fragment.  Without them, a node
        # falsely evicted when its only heartbeat path ran through a dead
        # neighbour could never announce itself again.  Refreshed for ALL
        # evicted nodes on every eviction: an earlier watch link may point
        # at a root that has itself just died (e.g. a root and its leaf
        # child failing together, leaf confirmed first).
        root = self.tree.root
        for out in self.removed:
            if out != root:
                self._link(out, root)
                self._link(root, out)
        self.reconfigurations += 1
        if self.on_reconfigure is not None:
            self.on_reconfigure("remove", nid)

    def _rejoin(self, nid: str) -> None:
        """A removed node's heartbeats are flowing again: re-attach it."""
        if nid not in self.removed:
            return
        orig_parent = self.removed.pop(nid)
        # Re-attach under the original parent only when that parent is in
        # the live tree and not itself under suspicion — otherwise a child
        # evicted because its parent crashed would flap: rejoin under the
        # crashed parent, starve again, get evicted again.
        parent = (
            orig_parent
            if orig_parent is not None
            and orig_parent in self.tree
            and orig_parent not in self.removed
            and not self.detector.is_suspected(orig_parent)
            else self.tree.root
        )
        self.tree.join(nid, parent)
        node = self.nodes[nid]
        node.detached = False
        self._wire(nid, parent)
        self.rejoins += 1
        if self.on_reconfigure is not None:
            self.on_reconfigure("rejoin", nid)
