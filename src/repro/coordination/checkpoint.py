"""Epoch checkpoints and recovery policy for the sharded runner.

The paper's enforcement scheme is built to survive node loss — the
combining tree heals around a dead node and allocation degrades to the
conservative 1/R split (§3.2).  This module gives the *execution
substrate* the same property: at every window barrier each worker ships a
compact :class:`ClusterCheckpoint` per cluster (RNG substream position,
residual-carry admission state, mergeable response-time
:class:`~repro.coordination.aggregation.StreamStats`, and the Lindley
server clock), and the parent retains the last K epochs in a
:class:`CheckpointStore`.  Because a cluster's entire private state is
exactly those four things — the per-window history arrays live in the
parent — a respawned worker restored from the latest checkpoint replays
the in-flight window bit-identically: the Philox counter resumes at the
exact draw where the snapshot was taken.

Checkpoints are content-addressed (SHA-256 over a canonical JSON form) so
recovery can be audited: the digest of the state a worker was restored
from is recorded in the :class:`ShardRestart` event, and a spill file —
optional; the store is in-memory by default — is verified against its
digests on load.  Digesting is *lazy*: the steady-state epoch loop never
JSON-canonicalizes or hashes anything — digests are computed (and cached)
only on spill, restore verification, and audit.

Checkpoints also have a fixed-layout binary form (:func:`pack_checkpoint`
/ :func:`unpack_checkpoint`): one ``uint64`` row of
``RECORD_BASE_WORDS + P`` words per cluster, holding the complete Philox
bit-generator state, the :class:`StreamStats` moments, the Lindley clock
and the per-principal carry.  The shared-memory data plane
(:mod:`repro.coordination.shm`) writes these rows into a K-deep ring at
every barrier — zero pickling — and the round-trip is bit-exact, so a
checkpoint restored from the binary form digests identically to one that
crossed a pipe.

:class:`RecoveryPolicy` governs the parent's reaction to a
:class:`~repro.coordination.barrier.ShardWorkerError`: how many respawns
the run may spend in total, how many on a single (shard, epoch), and the
exponential backoff between attempts.  When the budget is exhausted the
runner degrades instead of aborting — the dead shard's clusters are
reassigned round-robin to the survivors (a :class:`ShardReassignment`
event), mirroring the combining tree's reparent-the-orphans healing.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.coordination.aggregation import StreamStats

__all__ = [
    "ClusterCheckpoint",
    "CheckpointStore",
    "RecoveryPolicy",
    "ShardRestart",
    "ShardReassignment",
    "epoch_digest",
    "RECORD_BASE_WORDS",
    "record_words",
    "record_nbytes",
    "pack_checkpoint",
    "unpack_checkpoint",
]

# -- fixed binary record layout ---------------------------------------------
#
# One cluster checkpoint is a row of uint64 words; float fields are stored
# as their IEEE-754 bit patterns via ``.view(np.float64)``.  The layout is
# Philox-specific on purpose: the sharded lane seeds every cluster substream
# from ``np.random.Philox``, whose state is fixed-size (counter 4 words,
# key 2, buffer 4, plus three scalar fields), which is what makes a
# zero-pickle data plane possible at all.
#
#   word  0.. 3   philox counter          (uint64 x 4)
#   word  4.. 5   philox key              (uint64 x 2)
#   word  6.. 9   philox buffer           (uint64 x 4)
#   word 10       buffer_pos              (uint64)
#   word 11       has_uint32              (uint64)
#   word 12       uinteger                (uint64)
#   word 13       response.count          (uint64)
#   word 14..17   response mean/m2/min/max (float64 bits)
#   word 18       clock                   (float64 bits)
#   word 19..     carry, one float64 per principal in caller-fixed order
RECORD_BASE_WORDS = 19


def record_words(n_principals: int) -> int:
    return RECORD_BASE_WORDS + int(n_principals)


def record_nbytes(n_principals: int) -> int:
    return 8 * record_words(n_principals)


def _encode(obj: Any) -> Any:
    """JSON-able form of a checkpoint field (ndarrays become typed lists)."""
    if isinstance(obj, np.ndarray):
        return {"__nd__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, Mapping):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    return obj


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "__nd__" in obj:
            return np.array(obj["__nd__"], dtype=obj["dtype"])
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


@dataclass(frozen=True)
class ClusterCheckpoint:
    """One cluster's complete private state at a window boundary.

    ``rng_state`` is the cluster substream's exact bit-generator state
    (``Generator.bit_generator.state``); restoring it resumes the Philox
    counter at the precise draw the snapshot captured, which is what makes
    post-recovery replay bit-identical rather than merely statistically
    equivalent.  ``carry`` is the residual-carry admission fraction per
    principal, ``response`` the mergeable response-time summary, and
    ``clock`` the server-free time of the Lindley observer.
    """

    rng_state: Mapping[str, Any]
    carry: Mapping[str, float]
    response: StreamStats
    clock: float
    _digest: Optional[str] = field(default=None, init=False, repr=False,
                                   compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rng_state": _encode(self.rng_state),
            "carry": {k: float(v) for k, v in sorted(self.carry.items())},
            "response": {
                "count": self.response.count,
                "mean": self.response.mean,
                "m2": self.response.m2,
                "min": self.response.min,
                "max": self.response.max,
            },
            "clock": self.clock,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterCheckpoint":
        resp = data["response"]
        return cls(
            rng_state=_decode(data["rng_state"]),
            carry={k: float(v) for k, v in data["carry"].items()},
            response=StreamStats(
                count=int(resp["count"]), mean=float(resp["mean"]),
                m2=float(resp["m2"]), min=float(resp["min"]),
                max=float(resp["max"]),
            ),
            clock=float(data["clock"]),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — names this state exactly.

        Lazy and cached: the steady-state epoch loop never calls this; it
        runs only on spill, restore verification and audit, and the first
        computation is memoized on the (frozen) instance.
        """
        if self._digest is None:
            canonical = json.dumps(self.to_dict(), sort_keys=True,
                                   separators=(",", ":"))
            object.__setattr__(self, "_digest",
                               hashlib.sha256(canonical.encode()).hexdigest())
        assert self._digest is not None
        return self._digest


def epoch_digest(checkpoints: Mapping[str, ClusterCheckpoint]) -> str:
    h = hashlib.sha256()
    for name in sorted(checkpoints):
        h.update(name.encode("utf-8"))
        h.update(checkpoints[name].digest().encode("ascii"))
    return h.hexdigest()


# -- binary codec -----------------------------------------------------------


def pack_checkpoint(ck: ClusterCheckpoint, principals: Sequence[str],
                    out: np.ndarray) -> None:
    """Pack ``ck`` into a preallocated uint64 row (see layout above).

    ``principals`` fixes the carry column order; it must be the same
    sequence on both sides of the plane (the world's principal tuple).
    Raises ``ValueError`` for non-Philox generators — the binary plane is
    deliberately tied to the fixed-size Philox state.
    """
    if out.dtype != np.uint64 or out.shape != (record_words(len(principals)),):
        raise ValueError("pack_checkpoint: wrong row shape/dtype")
    state = ck.rng_state
    if state.get("bit_generator") != "Philox":
        raise ValueError(
            f"binary checkpoint records require Philox, got "
            f"{state.get('bit_generator')!r}"
        )
    inner = state["state"]
    out[0:4] = np.asarray(inner["counter"], dtype=np.uint64)
    out[4:6] = np.asarray(inner["key"], dtype=np.uint64)
    out[6:10] = np.asarray(state["buffer"], dtype=np.uint64)
    out[10] = int(state["buffer_pos"])
    out[11] = int(state["has_uint32"])
    out[12] = int(state["uinteger"])
    out[13] = int(ck.response.count)
    flt = out.view(np.float64)
    flt[14] = ck.response.mean
    flt[15] = ck.response.m2
    flt[16] = ck.response.min
    flt[17] = ck.response.max
    flt[18] = ck.clock
    for i, p in enumerate(principals):
        flt[RECORD_BASE_WORDS + i] = float(ck.carry[p])


def unpack_checkpoint(row: np.ndarray,
                      principals: Sequence[str]) -> ClusterCheckpoint:
    """Rebuild a checkpoint from its binary row, bit-exactly.

    The reconstructed ``rng_state`` uses the same container types numpy's
    ``Generator.bit_generator.state`` produces (uint64 arrays for
    counter/key/buffer, plain ints for the scalars), so the canonical JSON
    form — and therefore :meth:`ClusterCheckpoint.digest` — is identical
    to the pipe-transported original.
    """
    if row.dtype != np.uint64 or row.shape != (record_words(len(principals)),):
        raise ValueError("unpack_checkpoint: wrong row shape/dtype")
    row = np.ascontiguousarray(row)
    flt = row.view(np.float64)
    rng_state = {
        "bit_generator": "Philox",
        "state": {
            "counter": row[0:4].copy(),
            "key": row[4:6].copy(),
        },
        "buffer": row[6:10].copy(),
        "buffer_pos": int(row[10]),
        "has_uint32": int(row[11]),
        "uinteger": int(row[12]),
    }
    response = StreamStats(
        count=int(row[13]), mean=float(flt[14]), m2=float(flt[15]),
        min=float(flt[16]), max=float(flt[17]),
    )
    carry = {p: float(flt[RECORD_BASE_WORDS + i])
             for i, p in enumerate(principals)}
    return ClusterCheckpoint(rng_state=rng_state, carry=carry,
                             response=response, clock=float(flt[18]))


class CheckpointStore:
    """Parent-side retention of the last ``retain`` epochs of checkpoints.

    ``put`` merges one epoch's per-cluster snapshots (already combined
    across shards by the caller) and prunes anything older than the
    retention window.  It performs **no pickling and no hashing**: size
    accounting comes from the fixed binary record layout
    (:func:`record_nbytes`), and content digests are computed lazily by
    :meth:`digest` — on spill, restore verification, or audit — and cached
    in :attr:`digests`.  With ``spill_path`` set, the retained window is
    also mirrored to a JSON file after every put (digesting at spill time;
    spilling is the documented expensive audit path), and :meth:`load`
    verifies the per-epoch digests on the way back in — a corrupted spill
    is an error, never silently different state.
    """

    def __init__(self, retain: int = 2,
                 spill_path: Optional[str] = None) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = int(retain)
        self.spill_path = spill_path
        self._epochs: "OrderedDict[int, Dict[str, ClusterCheckpoint]]" = \
            OrderedDict()
        self.digests: Dict[int, str] = {}   # lazily digested epochs (audit log)
        self.bytes_retained = 0
        self._sizes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._epochs)

    @property
    def epochs(self) -> List[int]:
        return list(self._epochs)

    def put(self, epoch: int,
            checkpoints: Mapping[str, ClusterCheckpoint]) -> None:
        """Retain one epoch's merged snapshots.

        Digest-free and pickle-free: sizes come from the binary record
        layout arithmetic, content digests from the lazy :meth:`digest`.
        """
        snap = dict(checkpoints)
        self._epochs[epoch] = snap
        self._epochs.move_to_end(epoch)
        self._sizes[epoch] = sum(record_nbytes(len(ck.carry))
                                 for ck in snap.values())
        while len(self._epochs) > self.retain:
            old, _ = self._epochs.popitem(last=False)
            self._sizes.pop(old, None)
        self.bytes_retained = sum(self._sizes.values())
        if self.spill_path:
            self._spill()

    def digest(self, epoch: int) -> str:
        """Content digest of a retained (or previously digested) epoch.

        Computed on first request and cached in :attr:`digests` — the
        audit log keeps digests of evicted epochs alive as long as they
        were digested (spilled, restored from, or audited) before
        eviction.
        """
        if epoch not in self.digests:
            if epoch not in self._epochs:
                raise KeyError(
                    f"epoch {epoch} is neither retained nor previously "
                    f"digested"
                )
            self.digests[epoch] = epoch_digest(self._epochs[epoch])
        return self.digests[epoch]

    def get(self, epoch: int) -> Dict[str, ClusterCheckpoint]:
        return dict(self._epochs[epoch])

    def latest(self) -> Optional[Tuple[int, Dict[str, ClusterCheckpoint]]]:
        """(epoch, checkpoints) of the newest retained epoch, or None."""
        if not self._epochs:
            return None
        epoch = next(reversed(self._epochs))
        return epoch, dict(self._epochs[epoch])

    # -- spill file ---------------------------------------------------------

    def _spill(self) -> None:
        payload = {
            "retain": self.retain,
            "epochs": {
                str(epoch): {
                    "digest": self.digest(epoch),
                    "clusters": {
                        name: ck.to_dict() for name, ck in snap.items()
                    },
                }
                for epoch, snap in self._epochs.items()
            },
        }
        assert self.spill_path is not None
        tmp = self.spill_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        import os

        os.replace(tmp, self.spill_path)

    @classmethod
    def load(cls, path: str, retain: Optional[int] = None) -> "CheckpointStore":
        """Rebuild a store from a spill file, verifying content digests."""
        with open(path) as fh:
            payload = json.load(fh)
        store = cls(retain=retain if retain is not None
                    else int(payload.get("retain", 2)), spill_path=None)
        for epoch_s in sorted(payload.get("epochs", {}), key=int):
            entry = payload["epochs"][epoch_s]
            snap = {
                name: ClusterCheckpoint.from_dict(d)
                for name, d in entry["clusters"].items()
            }
            store.put(int(epoch_s), snap)
            digest = store.digest(int(epoch_s))
            if digest != entry["digest"]:
                raise ValueError(
                    f"checkpoint spill corrupt: epoch {epoch_s} digest "
                    f"mismatch ({digest[:12]} != {entry['digest'][:12]})"
                )
        store.spill_path = path
        return store


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the parent spends respawns before degrading to reassignment.

    ``max_restarts`` caps respawns across the whole run; a single
    (shard, epoch) may burn at most ``per_epoch_retries`` of them — a
    deterministic crasher must not consume the entire budget replaying
    one window.  Respawn attempts back off exponentially
    (``backoff_base × backoff_factor^attempt``, capped) in wall-clock
    time; simulation state is unaffected, recovery happens *between*
    epochs.  With ``reassign_on_exhaustion`` (the default) an exhausted
    budget degrades the run — the dead shard's clusters move to the
    survivors — instead of aborting it; set it False to get the PR 7
    fail-stop behaviour once the budget is gone.
    """

    max_restarts: int = 4
    per_epoch_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    reassign_on_exhaustion: bool = True

    def backoff(self, attempt: int) -> float:
        """Wall-clock delay before respawn ``attempt`` (0-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** attempt)


@dataclass(frozen=True)
class ShardRestart:
    """One respawn: shard re-forked and restored from ``restored_epoch``."""

    epoch: int
    shard: int
    attempt: int
    restored_epoch: int
    restored_digest: str
    detail: str


@dataclass(frozen=True)
class ShardReassignment:
    """Budget exhausted: a dead shard's clusters moved to the survivors."""

    epoch: int
    shard: int
    assignments: Mapping[str, int]   # cluster name -> surviving shard
    detail: str = ""
