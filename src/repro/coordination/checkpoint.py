"""Epoch checkpoints and recovery policy for the sharded runner.

The paper's enforcement scheme is built to survive node loss — the
combining tree heals around a dead node and allocation degrades to the
conservative 1/R split (§3.2).  This module gives the *execution
substrate* the same property: at every window barrier each worker ships a
compact :class:`ClusterCheckpoint` per cluster (RNG substream position,
residual-carry admission state, mergeable response-time
:class:`~repro.coordination.aggregation.StreamStats`, and the Lindley
server clock), and the parent retains the last K epochs in a
:class:`CheckpointStore`.  Because a cluster's entire private state is
exactly those four things — the per-window history arrays live in the
parent — a respawned worker restored from the latest checkpoint replays
the in-flight window bit-identically: the Philox counter resumes at the
exact draw where the snapshot was taken.

Checkpoints are content-addressed (SHA-256 over a canonical JSON form) so
recovery can be audited: the digest of the state a worker was restored
from is recorded in the :class:`ShardRestart` event, and a spill file —
optional; the store is in-memory by default — is verified against its
digests on load.

:class:`RecoveryPolicy` governs the parent's reaction to a
:class:`~repro.coordination.barrier.ShardWorkerError`: how many respawns
the run may spend in total, how many on a single (shard, epoch), and the
exponential backoff between attempts.  When the budget is exhausted the
runner degrades instead of aborting — the dead shard's clusters are
reassigned round-robin to the survivors (a :class:`ShardReassignment`
event), mirroring the combining tree's reparent-the-orphans healing.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.coordination.aggregation import StreamStats

__all__ = [
    "ClusterCheckpoint",
    "CheckpointStore",
    "RecoveryPolicy",
    "ShardRestart",
    "ShardReassignment",
    "epoch_digest",
]


def _encode(obj: Any) -> Any:
    """JSON-able form of a checkpoint field (ndarrays become typed lists)."""
    if isinstance(obj, np.ndarray):
        return {"__nd__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, Mapping):
        return {str(k): _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    return obj


def _decode(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "__nd__" in obj:
            return np.array(obj["__nd__"], dtype=obj["dtype"])
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(v) for v in obj]
    return obj


@dataclass(frozen=True)
class ClusterCheckpoint:
    """One cluster's complete private state at a window boundary.

    ``rng_state`` is the cluster substream's exact bit-generator state
    (``Generator.bit_generator.state``); restoring it resumes the Philox
    counter at the precise draw the snapshot captured, which is what makes
    post-recovery replay bit-identical rather than merely statistically
    equivalent.  ``carry`` is the residual-carry admission fraction per
    principal, ``response`` the mergeable response-time summary, and
    ``clock`` the server-free time of the Lindley observer.
    """

    rng_state: Mapping[str, Any]
    carry: Mapping[str, float]
    response: StreamStats
    clock: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rng_state": _encode(self.rng_state),
            "carry": {k: float(v) for k, v in sorted(self.carry.items())},
            "response": {
                "count": self.response.count,
                "mean": self.response.mean,
                "m2": self.response.m2,
                "min": self.response.min,
                "max": self.response.max,
            },
            "clock": self.clock,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterCheckpoint":
        resp = data["response"]
        return cls(
            rng_state=_decode(data["rng_state"]),
            carry={k: float(v) for k, v in data["carry"].items()},
            response=StreamStats(
                count=int(resp["count"]), mean=float(resp["mean"]),
                m2=float(resp["m2"]), min=float(resp["min"]),
                max=float(resp["max"]),
            ),
            clock=float(data["clock"]),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — names this state exactly."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


def epoch_digest(checkpoints: Mapping[str, ClusterCheckpoint]) -> str:
    h = hashlib.sha256()
    for name in sorted(checkpoints):
        h.update(name.encode("utf-8"))
        h.update(checkpoints[name].digest().encode("ascii"))
    return h.hexdigest()


class CheckpointStore:
    """Parent-side retention of the last ``retain`` epochs of checkpoints.

    ``put`` merges one epoch's per-cluster snapshots (already combined
    across shards by the caller), records the epoch's content digest, and
    prunes anything older than the retention window.  With
    ``spill_path`` set, the retained window is also mirrored to a JSON
    file after every put, and :meth:`load` verifies the per-epoch digests
    on the way back in — a corrupted spill is an error, never silently
    different state.
    """

    def __init__(self, retain: int = 2,
                 spill_path: Optional[str] = None) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = int(retain)
        self.spill_path = spill_path
        self._epochs: "OrderedDict[int, Dict[str, ClusterCheckpoint]]" = \
            OrderedDict()
        self.digests: Dict[int, str] = {}   # every epoch ever put (audit log)
        self.bytes_retained = 0
        self._sizes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._epochs)

    @property
    def epochs(self) -> List[int]:
        return list(self._epochs)

    def put(self, epoch: int,
            checkpoints: Mapping[str, ClusterCheckpoint]) -> str:
        """Retain one epoch's merged snapshots; returns the content digest."""
        snap = dict(checkpoints)
        digest = epoch_digest(snap)
        self._epochs[epoch] = snap
        self._epochs.move_to_end(epoch)
        self.digests[epoch] = digest
        self._sizes[epoch] = len(pickle.dumps(snap,
                                              protocol=pickle.HIGHEST_PROTOCOL))
        while len(self._epochs) > self.retain:
            old, _ = self._epochs.popitem(last=False)
            self._sizes.pop(old, None)
        self.bytes_retained = sum(self._sizes.values())
        if self.spill_path:
            self._spill()
        return digest

    def get(self, epoch: int) -> Dict[str, ClusterCheckpoint]:
        return dict(self._epochs[epoch])

    def latest(self) -> Optional[Tuple[int, Dict[str, ClusterCheckpoint]]]:
        """(epoch, checkpoints) of the newest retained epoch, or None."""
        if not self._epochs:
            return None
        epoch = next(reversed(self._epochs))
        return epoch, dict(self._epochs[epoch])

    # -- spill file ---------------------------------------------------------

    def _spill(self) -> None:
        payload = {
            "retain": self.retain,
            "epochs": {
                str(epoch): {
                    "digest": self.digests[epoch],
                    "clusters": {
                        name: ck.to_dict() for name, ck in snap.items()
                    },
                }
                for epoch, snap in self._epochs.items()
            },
        }
        assert self.spill_path is not None
        tmp = self.spill_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        import os

        os.replace(tmp, self.spill_path)

    @classmethod
    def load(cls, path: str, retain: Optional[int] = None) -> "CheckpointStore":
        """Rebuild a store from a spill file, verifying content digests."""
        with open(path) as fh:
            payload = json.load(fh)
        store = cls(retain=retain if retain is not None
                    else int(payload.get("retain", 2)), spill_path=None)
        for epoch_s in sorted(payload.get("epochs", {}), key=int):
            entry = payload["epochs"][epoch_s]
            snap = {
                name: ClusterCheckpoint.from_dict(d)
                for name, d in entry["clusters"].items()
            }
            digest = store.put(int(epoch_s), snap)
            if digest != entry["digest"]:
                raise ValueError(
                    f"checkpoint spill corrupt: epoch {epoch_s} digest "
                    f"mismatch ({digest[:12]} != {entry['digest'][:12]})"
                )
        store.spill_path = path
        return store


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the parent spends respawns before degrading to reassignment.

    ``max_restarts`` caps respawns across the whole run; a single
    (shard, epoch) may burn at most ``per_epoch_retries`` of them — a
    deterministic crasher must not consume the entire budget replaying
    one window.  Respawn attempts back off exponentially
    (``backoff_base × backoff_factor^attempt``, capped) in wall-clock
    time; simulation state is unaffected, recovery happens *between*
    epochs.  With ``reassign_on_exhaustion`` (the default) an exhausted
    budget degrades the run — the dead shard's clusters move to the
    survivors — instead of aborting it; set it False to get the PR 7
    fail-stop behaviour once the budget is gone.
    """

    max_restarts: int = 4
    per_epoch_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    reassign_on_exhaustion: bool = True

    def backoff(self, attempt: int) -> float:
        """Wall-clock delay before respawn ``attempt`` (0-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** attempt)


@dataclass(frozen=True)
class ShardRestart:
    """One respawn: shard re-forked and restored from ``restored_epoch``."""

    epoch: int
    shard: int
    attempt: int
    restored_epoch: int
    restored_digest: str
    detail: str


@dataclass(frozen=True)
class ShardReassignment:
    """Budget exhausted: a dead shard's clusters moved to the survivors."""

    epoch: int
    shard: int
    assignments: Mapping[str, int]   # cluster name -> surviving shard
    detail: str = ""
