"""Pairwise (all-to-all) queue-state exchange — the paper's strawman.

§3.2 justifies the combining tree by comparison: "a total of 2(n−1)
message transmissions as opposed to O(n²) messages required for pair-wise
exchange".  This module implements that alternative for real, so the
ablation benchmark measures both sides:

every period, each node unicasts its local vector to every other node and
sums the freshest vector it holds from each peer (its own sampled live).
The aggregate converges after one one-way delay — *faster* than the tree's
up+down — at n(n−1) messages per round; the trade the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Mapping, Optional

import numpy as np

from repro.coordination.aggregation import VectorAggregate
from repro.coordination.messages import MessageCounter
from repro.coordination.protocol import GlobalView
from repro.sim.engine import Simulator
from repro.sim.network import Endpoint, Link

__all__ = ["PairwiseNode", "build_pairwise"]

NodeId = Hashable


@dataclass(frozen=True)
class PeerUpdate:
    """One node's local vector, unicast to a peer."""

    sender: str
    round_id: int
    vector: Dict[str, float]


class PairwiseNode(Endpoint):
    """One participant in the all-to-all exchange."""

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        period: float,
        local_supplier: Callable[[], Mapping[str, float]],
        counter: Optional[MessageCounter] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.node_id = node_id
        self.period = float(period)
        self.local_supplier = local_supplier
        self.counter = counter
        self.peers: Dict[NodeId, Link] = {}
        self.view = GlobalView()
        self._latest: Dict[str, Dict[str, float]] = {}
        self._round = 0
        sim.process(self._driver(), name=f"pairwise[{node_id}]")

    def _driver(self):
        while True:
            local = dict(self.local_supplier())
            update = PeerUpdate(
                sender=str(self.node_id), round_id=self._round, vector=local
            )
            for link in self.peers.values():
                if self.counter is not None:
                    self.counter.reports += 1
                link.send(update)
            self._refresh_view(local)
            self._round += 1
            yield self.period

    def on_message(self, msg, sender) -> None:
        if not isinstance(msg, PeerUpdate):  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {msg!r}")
        self._latest[msg.sender] = dict(msg.vector)
        self._refresh_view(dict(self.local_supplier()))

    def _refresh_view(self, local: Dict[str, float]) -> None:
        total: Dict[str, float] = dict(local)
        for vec in self._latest.values():
            for k, v in vec.items():
                total[k] = total.get(k, 0.0) + v
        self.view = GlobalView(
            aggregate=VectorAggregate(
                values=total, contributors=1 + len(self._latest)
            ),
            round_id=self.view.round_id + 1,
            received_at=self.sim.now,
            local_contribution=VectorAggregate(values=local, contributors=1),
        )


def build_pairwise(
    sim: Simulator,
    node_ids,
    period: float,
    suppliers: Mapping[NodeId, Callable[[], Mapping[str, float]]],
    link_delay: float = 0.0,
    jitter: float = 0.0,
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    counter: Optional[MessageCounter] = None,
) -> Dict[NodeId, PairwiseNode]:
    """Wire a full mesh of :class:`PairwiseNode` s."""
    nodes = {
        nid: PairwiseNode(sim, nid, period, suppliers[nid], counter=counter)
        for nid in node_ids
    }
    for a in node_ids:
        for b in node_ids:
            if a == b:
                continue
            nodes[a].peers[b] = Link(
                sim, nodes[a], nodes[b], delay=link_delay, jitter=jitter,
                loss=loss, rng=rng,
            )
    return nodes
