"""The periodic aggregate-up / broadcast-down protocol (paper §3.2).

Every ``period`` seconds a protocol *round* starts: each node samples its
local per-principal queue-length vector; leaves send it to their parent;
interior nodes merge children's reports with their own and forward; the
root broadcasts the global sum back down the tree.  One round therefore
costs 2(n-1) messages and completes after roughly twice the tree height
times the link delay — the broadcast each node eventually receives is an
*estimate that lags actual conditions* by that much, which is precisely
the effect the paper's Fig 8 experiment injects (a 10 s lag) and that the
redirectors must tolerate.

Robustness: an interior node flushes a round after ``flush_after`` seconds
even if some children have not reported (their contribution is simply
missing from that round); reports arriving after the flush are dropped and
counted as late.  Rounds pipeline freely — round k+1 may start while k is
still propagating.

Failure semantics (driven by :mod:`repro.faults` via
:class:`repro.coordination.membership.ResilientTree`):

- a *crashed* node (``alive=False``) drops every message, starts no rounds
  and sends no heartbeats until :meth:`AggregationNode.restart`;
- a *detached* node (``detached=True``) is one the membership layer has
  evicted from the overlay: it keeps sampling locally but must not act as
  a root for its own fragment — otherwise an isolated redirector would
  mistake its local demand for the global aggregate and over-allocate.
  Its view simply goes stale, which is what triggers the allocator's
  conservative 1/R degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.coordination.aggregation import VectorAggregate
from repro.coordination.messages import (
    AggregateBroadcast,
    Heartbeat,
    MessageCounter,
    QueueReport,
)
from repro.coordination.tree import CombiningTree
from repro.sim.engine import Simulator
from repro.sim.network import Endpoint, Link
from repro.sim.rng import RngStreams

__all__ = ["GlobalView", "AggregationNode", "build_protocol", "link_stream_name"]

NodeId = Hashable


@dataclass
class GlobalView:
    """A node's latest knowledge of the global aggregate.

    ``local_contribution`` is the node's *own* sample for that round, so a
    consumer can form a consistent updated estimate by substituting its
    current local value: ``global - local_contribution + local_now``.
    """

    aggregate: Optional[VectorAggregate] = None
    round_id: int = -1
    received_at: float = float("-inf")
    local_contribution: Optional[VectorAggregate] = None

    def fresh(self, now: float, max_age: float) -> Optional[VectorAggregate]:
        """The aggregate if it is younger than ``max_age``, else None."""
        if self.aggregate is None or now - self.received_at > max_age:
            return None
        return self.aggregate

    def age(self, now: float) -> float:
        return now - self.received_at


class AggregationNode(Endpoint):
    """One redirector's protocol engine.

    Args:
        sim: the simulation kernel.
        node_id: this node's id in the tree.
        tree: the combining tree overlay.
        period: round period in seconds.
        local_supplier: callable returning this node's current local
            per-principal queue-length vector (sampled at round start).
        on_global: called with ``(VectorAggregate, round_id)`` whenever a
            broadcast arrives (and immediately at round completion on the
            root itself).
        flush_after: seconds after round start at which an interior node
            forwards a partial aggregate (default: 90% of the period).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        tree: CombiningTree,
        period: float,
        local_supplier: Callable[[], Mapping[str, float]],
        on_global: Optional[Callable[[VectorAggregate, int], None]] = None,
        flush_after: Optional[float] = None,
        counter: Optional[MessageCounter] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.node_id = node_id
        self.tree = tree
        self.period = float(period)
        self.local_supplier = local_supplier
        self.on_global = on_global
        self.flush_after = float(flush_after) if flush_after is not None else 0.9 * period
        self.counter = counter
        self.view = GlobalView()
        self.late_reports = 0
        # Failure-model state (see module docstring).
        self.alive = True
        self.detached = False
        self.on_heartbeat: Optional[Callable[[str], None]] = None

        self.up_link: Optional[Link] = None            # to parent
        self.down_links: Dict[NodeId, Link] = {}       # to children

        self._expected_children = len(tree.children(node_id))
        self._pending: Dict[int, VectorAggregate] = {}
        self._reported_children: Dict[int, int] = {}
        self._sent: set = set()
        self._local_history: Dict[int, VectorAggregate] = {}
        self._round = 0
        self._min_round = 0
        sim.process(self._round_driver(), name=f"agg[{node_id}]")

    # -- protocol rounds ----------------------------------------------------

    def _round_driver(self):
        while True:
            self._start_round(self._round)
            self.sim.schedule(self.flush_after, self._flush, self._round)
            self._round += 1
            # Bound protocol state: anything older than 100 rounds is dead
            # (reports that stale are dropped as late anyway).
            horizon = self._round - 1000
            if horizon > 0 and len(self._sent) > 2000:
                self._sent = {r for r in self._sent if r >= horizon}
                for stale in [r for r in self._pending if r < horizon]:
                    del self._pending[stale]
                    self._reported_children.pop(stale, None)
                for stale in [r for r in self._local_history if r < horizon]:
                    del self._local_history[stale]
            yield self.period

    def _start_round(self, r: int) -> None:
        if not self.alive:
            return
        local = VectorAggregate.local(self.local_supplier())
        self._local_history[r] = local
        self._pending[r] = self._pending[r].merge(local) if r in self._pending else local
        self._maybe_send(r)

    def _maybe_send(self, r: int) -> None:
        if r in self._sent:
            return
        # Complete when our own sample is in (round started) and every
        # child has reported.
        if r not in self._pending:
            return
        if self._reported_children.get(r, 0) < self._expected_children:
            return
        self._send(r)

    def _flush(self, r: int) -> None:
        if self.alive and r not in self._sent and r in self._pending:
            self._send(r)

    def _send(self, r: int) -> None:
        self._sent.add(r)
        agg = self._pending.pop(r)
        self._reported_children.pop(r, None)
        if self.detached:
            # Evicted from the overlay: no parent to report to, and acting
            # as a fragment root would pass local data off as global.
            return
        if self.up_link is None:
            # Root: round complete — broadcast the global aggregate.
            self._deliver_global(agg, r)
            bcast = AggregateBroadcast(round_id=r, aggregate=agg, issued_at=self.sim.now)
            for link in self.down_links.values():
                if self.counter:
                    self.counter.count(bcast)
                link.send(bcast)
        else:
            report = QueueReport(sender=str(self.node_id), round_id=r, aggregate=agg)
            if self.counter:
                self.counter.count(report)
            self.up_link.send(report)

    # -- message handling ------------------------------------------------------

    def on_message(self, msg, sender) -> None:
        if not self.alive:
            return  # a crashed node drops everything on the floor
        if isinstance(msg, Heartbeat):
            if self.on_heartbeat is not None:
                self.on_heartbeat(msg.sender)
            return
        if isinstance(msg, QueueReport):
            r = msg.round_id
            if r in self._sent or r < self._min_round:
                self.late_reports += 1
                return
            self._pending[r] = (
                self._pending[r].merge(msg.aggregate) if r in self._pending else msg.aggregate.copy()
            )
            self._reported_children[r] = self._reported_children.get(r, 0) + 1
            self._maybe_send(r)
        elif isinstance(msg, AggregateBroadcast):
            self._deliver_global(msg.aggregate, msg.round_id)
            for link in self.down_links.values():
                if self.counter:
                    self.counter.count(msg)
                link.send(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {msg!r}")

    # -- failure / reconfiguration ------------------------------------------

    def crash(self) -> None:
        """Fail-stop: drop all traffic and stop participating in rounds."""
        self.alive = False

    def restart(self) -> None:
        """Recover from a crash with amnesia: all protocol state is reset
        (a real restarted daemon has no memory of in-flight rounds)."""
        if self.alive:
            return
        self.alive = True
        self.view = GlobalView()
        self._pending.clear()
        self._reported_children.clear()
        self._sent = set()
        self._local_history.clear()
        # Reports for rounds begun before the crash are stale on arrival.
        self._min_round = self._round

    def set_parent_link(self, link: Optional[Link]) -> None:
        """Rewire (or drop) the report path; used by the membership layer."""
        self.up_link = link

    def add_child_link(self, child: NodeId, link: Link) -> None:
        self.down_links[child] = link
        self._expected_children = len(self.down_links)

    def remove_child_link(self, child: NodeId) -> None:
        """Stop expecting reports from a dead child and release rounds that
        were only waiting on it."""
        self.down_links.pop(child, None)
        self._expected_children = len(self.down_links)
        for r in sorted(self._pending):
            self._maybe_send(r)

    def _deliver_global(self, agg: VectorAggregate, round_id: int) -> None:
        if round_id >= self.view.round_id:
            self.view = GlobalView(
                aggregate=agg,
                round_id=round_id,
                received_at=self.sim.now,
                local_contribution=self._local_history.get(round_id),
            )
        if self.on_global is not None:
            self.on_global(agg, round_id)


def link_stream_name(src: NodeId, dst: NodeId) -> str:
    """Canonical substream name for the directed link ``src -> dst``."""
    return f"link:{src}->{dst}"


def build_protocol(
    sim: Simulator,
    tree: CombiningTree,
    period: float,
    suppliers: Mapping[NodeId, Callable[[], Mapping[str, float]]],
    on_global: Optional[Mapping[NodeId, Callable[[VectorAggregate, int], None]]] = None,
    link_delay: float = 0.0,
    jitter: float = 0.0,
    loss: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    streams: Optional[RngStreams] = None,
    counter: Optional[MessageCounter] = None,
    flush_after: Optional[float] = None,
    link_registry: Optional[Dict[Tuple[NodeId, NodeId], Link]] = None,
) -> Dict[NodeId, AggregationNode]:
    """Wire up :class:`AggregationNode` s and links for an entire tree.

    ``link_delay`` applies symmetrically to every tree edge (Fig 8 uses a
    delay large enough that broadcasts lag by ~10 s).

    Stochastic link behaviour (``jitter``/``loss``) draws per-link: pass
    ``streams`` and every link gets its own spawned substream named
    ``link:src->dst``, so one link's draws never perturb another's and a
    fault plan that raises loss on one link replays bit-identically
    everywhere else.  The legacy ``rng`` argument shares one generator
    across all links and is kept only for existing callers; ``streams``
    wins when both are given.

    ``flush_after`` defaults to ``0.9 * period + 2.5 * height * link_delay``:
    an interior node must wait long enough for its children's reports to
    cross the links before giving up on a round, otherwise every aggregate
    would be forwarded partial and the reports dropped as late.

    ``link_registry`` (when given) is filled with ``(src, dst) -> Link``
    for every directed tree edge — the handle the fault injector and the
    membership layer use to perturb or rewire specific links.
    """
    callbacks = dict(on_global or {})
    if flush_after is None:
        flush_after = 0.9 * period + 2.5 * tree.height() * (link_delay + jitter)
    nodes: Dict[NodeId, AggregationNode] = {}
    for nid in tree.nodes:
        if nid not in suppliers:
            raise ValueError(f"no local supplier for node {nid!r}")
        nodes[nid] = AggregationNode(
            sim,
            nid,
            tree,
            period,
            suppliers[nid],
            on_global=callbacks.get(nid),
            flush_after=flush_after,
            counter=counter,
        )

    def _make_link(src: NodeId, dst: NodeId) -> Link:
        link_rng = streams.get(link_stream_name(src, dst)) if streams is not None else rng
        link = Link(
            sim, nodes[src], nodes[dst], delay=link_delay, jitter=jitter,
            loss=loss, rng=link_rng, name=link_stream_name(src, dst),
        )
        if link_registry is not None:
            link_registry[(src, dst)] = link
        return link

    for nid in tree.nodes:
        par = tree.parent(nid)
        if par is None:
            continue
        nodes[nid].up_link = _make_link(nid, par)
        nodes[par].down_links[nid] = _make_link(par, nid)
    return nodes
