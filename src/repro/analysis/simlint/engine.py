"""Whole-program lint driver: parse (in parallel), cache, run both rule
layers, subtract the baseline, format.

The flow per invocation::

    paths -> iter_python_files -> hash each file
          -> cache hit?  reuse (facts, per-file findings)
             cache miss? parse once, run per-file rules + fact extraction
          -> ProjectIR over all facts -> cross-module rules (SIM008/SIM009)
          -> per-line suppressions -> baseline subtraction -> sorted output

Per-file work parallelises over processes (``jobs``), resolved through
:func:`repro.experiments.parallel.default_jobs` so affinity masks and the
``REPRO_JOBS`` override are honoured; results are order-independent
because every finding list is sorted on ``(path, line, col, code)``.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.analysis.simlint.baseline import Baseline
from repro.analysis.simlint.cache import LintCache, content_hash
from repro.analysis.simlint.ir import ModuleFacts, ProjectIR, collect_facts
from repro.analysis.simlint.local import (
    Violation,
    filter_suppressed,
    lint_tree,
    suppressions_for,
)
from repro.analysis.simlint.output import FORMATS, format_json, format_sarif, format_text
from repro.analysis.simlint.project import project_violations

__all__ = [
    "ProjectReport",
    "analyze_source",
    "iter_python_files",
    "lint_project",
    "run",
]


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths.

    A path that exists as neither file nor directory is a usage error
    (``ValueError`` — ``repro lint`` maps it to exit status 2).
    """
    seen: List[str] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            seen.extend(str(f) for f in path.rglob("*.py"))
        elif path.is_file():
            seen.append(str(path))
        else:
            raise ValueError(f"no such file or directory: {p}")
    yield from sorted(dict.fromkeys(seen))


def analyze_source(
    source: str, path: str = "<string>"
) -> Tuple[ModuleFacts, List[Violation]]:
    """Parse once; return (facts for the project rules, per-file findings).

    The findings are *unfiltered* — suppression comments are recorded in
    ``facts.suppressions`` and applied by the caller, so project-rule
    findings share the same disable machinery.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ValueError(f"cannot parse {path}: {exc}") from exc
    suppressions = suppressions_for(source)
    facts = collect_facts(tree, path, suppressions=suppressions)
    return facts, lint_tree(tree, path=path)


def _analyze_path(path: str) -> Tuple[str, str, ModuleFacts, List[Violation]]:
    """Read + analyze one file (picklable unit for the process pool)."""
    with open(path, "rb") as fh:
        data = fh.read()
    facts, violations = analyze_source(data.decode("utf-8"), path=path)
    return path, content_hash(data), facts, violations


@dataclass
class ProjectReport:
    """One whole-program lint run's outcome."""

    violations: List[Violation]
    files: List[str] = field(default_factory=list)
    parsed: int = 0
    cache_hits: int = 0
    baselined: int = 0
    # path -> source lines, for baseline fingerprinting
    sources: Dict[str, List[str]] = field(default_factory=dict)

    def summary(self) -> str:
        cached = f", {self.cache_hits} cached" if self.cache_hits else ""
        base = f", {self.baselined} baselined" if self.baselined else ""
        return (f"{len(self.files)} file(s) ({self.parsed} parsed{cached})"
                f", {len(self.violations)} finding(s){base}")


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs == 0:
        from repro.experiments.parallel import default_jobs

        return default_jobs()
    return max(1, int(jobs))


def lint_project(
    paths: Sequence[str],
    *,
    jobs: Optional[int] = 1,
    cache: Optional[LintCache] = None,
) -> ProjectReport:
    """Run the full analysis (per-file + cross-module rules) over ``paths``.

    ``jobs``: worker processes for file parsing (``0``/``None`` resolves
    through ``default_jobs()``); results are independent of it.  A
    :class:`LintCache` skips parsing for files whose content hash matches;
    the caller is responsible for ``cache.save()``.
    """
    files = list(iter_python_files(paths))
    hashes: Dict[str, str] = {}
    raw: Dict[str, bytes] = {}
    for path in files:
        with open(path, "rb") as fh:
            data = fh.read()
        raw[path] = data
        hashes[path] = content_hash(data)

    facts_by_path: Dict[str, ModuleFacts] = {}
    local_by_path: Dict[str, List[Violation]] = {}
    misses: List[str] = []
    for path in files:
        hit = cache.get(path, hashes[path]) if cache is not None else None
        if hit is not None:
            facts_by_path[path], local_by_path[path] = hit
        else:
            misses.append(path)

    if misses:
        n_jobs = min(_resolve_jobs(jobs), len(misses))
        if n_jobs > 1:
            from repro.experiments.parallel import parallel_map

            analyzed = parallel_map(_analyze_path, misses, jobs=n_jobs)
        else:
            analyzed = [_analyze_path(p) for p in misses]
        for path, sha, facts, violations in analyzed:
            facts_by_path[path] = facts
            local_by_path[path] = violations
            if cache is not None:
                cache.put(path, sha, facts, violations)

    ir = ProjectIR([facts_by_path[p] for p in files])
    cross = project_violations(ir)

    all_violations: List[Violation] = []
    cross_by_path: Dict[str, List[Violation]] = {}
    for v in cross:
        cross_by_path.setdefault(v.path, []).append(v)
    for path in files:
        merged = local_by_path[path] + cross_by_path.get(path, [])
        kept = filter_suppressed(merged, facts_by_path[path].suppressions)
        all_violations.extend(kept)
    all_violations.sort(key=Violation.sort_key)

    sources = {
        path: raw[path].decode("utf-8", errors="replace").splitlines()
        for path in files
    }
    return ProjectReport(
        violations=all_violations,
        files=files,
        parsed=len(misses),
        cache_hits=len(files) - len(misses),
        sources=sources,
    )


def run(
    paths: Sequence[str],
    *,
    fmt: str = "text",
    output: Optional[str] = None,
    baseline_path: Optional[str] = None,
    update_baseline: bool = False,
    cache_path: Optional[str] = None,
    jobs: Optional[int] = 1,
    stream: Optional[TextIO] = None,
) -> int:
    """The ``repro lint`` implementation.  Returns the exit status.

    Exit codes: 0 clean (possibly after baseline subtraction), 1 findings,
    and usage errors raise ``ValueError`` for the CLI to map to 2.
    """
    out: TextIO = stream if stream is not None else sys.stdout
    if fmt not in FORMATS:
        raise ValueError(
            f"unknown format {fmt!r} (choose from {', '.join(FORMATS)})"
        )
    cache = LintCache(cache_path) if cache_path else None
    report = lint_project(paths, jobs=jobs, cache=cache)
    if cache is not None:
        cache.save(only=report.files)

    if update_baseline:
        if not baseline_path:
            raise ValueError("--update-baseline needs --baseline PATH")
        previous = Baseline.load(baseline_path)
        rebuilt = previous.rebuild(report.violations, report.sources)
        rebuilt.save(baseline_path)
        print(f"simlint: wrote {baseline_path} "
              f"({len(rebuilt)} finding(s) baselined)", file=out)
        todo = rebuilt.rationales_missing()
        if todo:
            print(f"simlint: {len(todo)} entr(ies) need a rationale "
                  "before review", file=out)
        return 0

    violations = report.violations
    if baseline_path:
        baseline = Baseline.load(baseline_path)
        violations, report.baselined = baseline.filter(
            violations, report.sources
        )
        todo = baseline.rationales_missing()
        if todo:
            print(f"simlint: warning: {len(todo)} baseline entr(ies) "
                  f"in {baseline_path} lack a rationale", file=out)

    formatted = {
        "text": format_text,
        "json": format_json,
        "sarif": format_sarif,
    }[fmt](violations)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(formatted)
            fh.write("\n")
        print(f"simlint: wrote {output} ({report.summary()})", file=out)
    else:
        print(formatted, file=out)
        if fmt == "text":
            print(f"simlint: {report.summary()}", file=out)
    return 1 if violations else 0
