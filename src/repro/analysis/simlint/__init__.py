"""simlint — whole-program static analysis for simulation determinism.

A stray ``time.time()``, an unseeded RNG, a ``for`` loop over a ``set``
feeding the event heap, or two components sharing one RNG substream
silently break the bit-identical-replay contract the whole benchmark
ledger rests on.  This package parses Python source with :mod:`ast` —
no imports, no execution — builds a project IR (module index, import
graph, symbol table, bounded call graph; see :mod:`.ir`) and applies:

========  ==============================================================
SIM001    wall-clock read (``time.time``/``datetime.now``/``perf_counter``
          et al.) outside ``benchmarks/`` — simulations must use ``sim.now``
SIM002    global ``random`` module or unseeded ``np.random.default_rng()``
          — draws must thread :class:`repro.sim.rng.RngStreams` generators
SIM003    iteration over a ``set``/``frozenset`` (unordered) — wrap in
          ``sorted(...)`` so downstream heap/RNG/LP row order is stable
SIM004    ``heapq.heappush`` of a bare ``(time, payload)`` 2-tuple — heap
          entries need a total-order tie-breaker: ``(time, seq, payload)``
SIM005    ``threading`` or ``global`` mutable state in parallel job
          payloads (``experiments/`` workers must be share-nothing)
SIM006    legacy ``np.random.*`` module-level RandomState use
          (``np.random.rand``, ``np.random.seed``, …) — one hidden global
          stream breaks substream isolation even when seeded
SIM007    shard-unsafe patterns: ``os.cpu_count()`` outside
          ``default_jobs()``, and module-level mutable state read
          *directly* inside worker functions (``*_task``/``*_worker``/
          ``*_main``)
SIM008    [project] RNG substream label collisions across modules
          (f-string labels unified by shape: ``f"client:{name}"`` ->
          ``client:{}``) and labels too dynamic to audit statically
SIM009    [project] *transitive* impurity in worker functions: the call
          graph's bounded closure reaches a function (any module) that
          reads module-level mutable state
SIM010    float reductions (``sum``/``min``/``max``) over unordered
          collections — sets anywhere; ``dict.values()``/``.items()`` in
          digest/stat sink modules where accumulation order becomes
          recorded bits
SIM011    key-based ordering without a deterministic tie-breaker: keyed
          ``sorted``/``nsmallest``/``nlargest`` over a set (ties keep the
          set's arbitrary order), or heap entries violating the engine's
          ``(time, seq, payload)`` convention in the second slot
========  ==============================================================

Suppression: append ``# simlint: disable=SIM001`` (comma-separated codes,
or bare ``# simlint: disable`` for all) to the flagged line, with a
nearby rationale comment.  Known findings can instead live in a reviewed
baseline file (``--baseline`` / ``--update-baseline``,
:mod:`.baseline`); warm re-lints reuse an incremental content-hash cache
(:mod:`.cache`); output formats are text, JSON and SARIF 2.1.0
(:mod:`.output`).  ``repro lint`` exits 0 clean / 1 findings / 2 usage
error.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.simlint.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.analysis.simlint.cache import DEFAULT_CACHE_PATH, LintCache
from repro.analysis.simlint.engine import (
    ProjectReport,
    analyze_source,
    iter_python_files,
    lint_project,
    run,
)
from repro.analysis.simlint.ir import ModuleFacts, ProjectIR, collect_facts
from repro.analysis.simlint.local import RULES, Violation, lint_source
from repro.analysis.simlint.output import format_json, format_sarif, format_text

__all__ = [
    "RULES",
    "Violation",
    "Baseline",
    "LintCache",
    "ModuleFacts",
    "ProjectIR",
    "ProjectReport",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "analyze_source",
    "collect_facts",
    "format_json",
    "format_sarif",
    "format_text",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "run",
    "main",
]


def lint_file(path: str) -> List[Violation]:
    """Per-file rules only (back-compat shim; see :func:`lint_paths`)."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path)


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    """Whole-program lint of every ``.py`` file under ``paths``.

    Runs the per-file rules *and* the cross-module rules (SIM008/SIM009)
    with suppressions applied — the library-call equivalent of
    ``repro lint`` with no cache and no baseline.
    """
    return lint_project(paths, jobs=1, cache=None).violations


def main(argv: Optional[Iterable[str]] = None) -> int:
    """``python -m repro.analysis.simlint [paths...]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="simlint",
        description="simulation determinism lint (SIM001-SIM011)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=["text", "json", "sarif"],
                        help="finding output format")
    parser.add_argument("--output", default="",
                        help="write formatted findings to a file")
    parser.add_argument("--baseline", default="",
                        help="baseline file of accepted findings to subtract")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--cache", default=DEFAULT_CACHE_PATH,
                        help="incremental cache file (content-hash keyed)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parse worker processes (0 = default_jobs())")
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return run(
            args.paths or ["src/repro"],
            fmt=args.fmt,
            output=args.output or None,
            baseline_path=args.baseline or None,
            update_baseline=args.update_baseline,
            cache_path=None if args.no_cache else args.cache,
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"simlint: error: {exc}")
        return 2
