"""Cross-module rules SIM008 and SIM009, run on the :class:`ProjectIR`.

SIM008 — RNG substream label hygiene.  Every ``RngStreams.get``/``spawn``
label names an independent random substream; two *different* modules
acquiring the same label shape (f-string fields unified to ``{}``) share
one stream, so their draws interleave and adding a draw in one component
silently perturbs the other — the exact hazard class that breaks
``shards=1 ≡ shards=R`` parity.  Labels that cannot be resolved to a
static shape (even through one helper-call hop via the symbol table) are
flagged too: an unanalyzable label cannot be audited for collisions.

One sharing pattern is sanctioned: when *every* acquisition of a shape
funnels through the same canonical helper function (``link_stream_name``
style, resolved via the symbol table), the helper is the single audit
point and the sharing is explicit coordination, not an accident —
``membership`` healing a link deliberately continues the stream
``protocol`` created for it.  Two independent spellings (or two
different helpers) producing one shape are still collisions.

SIM009 — transitive worker impurity.  SIM007 flags a worker function
(``*_task``/``*_worker``/``*_main``) reading module-level mutable state
*directly*; SIM009 closes the gap by walking the call graph (bounded
transitive closure) from each worker: any reachable function — in any
module — that reads module-level mutable state makes the worker's result
depend on per-process module state, which forked/spawned workers do not
share.  The finding is anchored at the worker's first call-site hop so a
suppression sits next to the code that takes the risk.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.simlint.ir import (
    MAX_CLOSURE_DEPTH,
    CallSite,
    LabelUse,
    ModuleFacts,
    ProjectIR,
)
from repro.analysis.simlint.local import Violation

__all__ = ["project_violations", "sim008_labels", "sim009_worker_impurity"]


def sim008_labels(ir: ProjectIR) -> List[Violation]:
    """Label collisions across modules + statically unresolvable labels."""
    out: List[Violation] = []
    # shape -> [(facts, use, origin)]; origin is the module for inline
    # labels, the resolved helper symbol for helper-produced ones.
    by_shape: Dict[str, List[Tuple[ModuleFacts, LabelUse, str]]] = {}
    for facts in ir.modules:
        for use in facts.labels:
            shape, origin = ir.resolve_label(facts, use)
            if shape is None:
                hint = (f" (helper `{use.call}` has no static string "
                        "return)" if use.call is not None else "")
                out.append(Violation(
                    path=facts.path, line=use.line, col=use.col,
                    code="SIM008",
                    message=(f"substream label passed to .{use.method}() is "
                             f"not statically resolvable{hint}; use a "
                             "literal or f-string label (or a helper that "
                             "returns one) so collisions stay auditable"),
                ))
            else:
                by_shape.setdefault(shape, []).append((facts, use, origin))
    for shape in sorted(by_shape):
        uses = by_shape[shape]
        modules = sorted({facts.module for facts, _, _ in uses})
        origins = sorted({origin for _, _, origin in uses})
        if len(modules) < 2:
            continue
        if len(origins) == 1 and ":" in origins[0]:
            # Every acquisition funnels through one shared helper: the
            # helper is the single audit point for the deliberate sharing.
            continue
        for facts, use, _ in uses:
            others = ", ".join(m for m in modules if m != facts.module)
            out.append(Violation(
                path=facts.path, line=use.line, col=use.col,
                code="SIM008",
                message=(f"substream label shape `{shape}` is also spawned "
                         f"by {others}: two components sharing one "
                         "substream interleave draws, so adding a draw in "
                         "one silently perturbs the other; give each "
                         "component its own label (or mint both through "
                         "one shared helper)"),
            ))
    return out


def sim009_worker_impurity(
    ir: ProjectIR, max_depth: int = MAX_CLOSURE_DEPTH
) -> List[Violation]:
    """Workers that *transitively* reach module-level mutable state."""
    out: List[Violation] = []
    for facts in ir.modules:
        for qualname in sorted(facts.functions):
            fn = facts.functions[qualname]
            if not fn.is_worker:
                continue
            start = f"{facts.module}:{qualname}"
            chains = ir.reachable(start, max_depth=max_depth)
            for target in sorted(chains):
                t_facts, t_fn = ir.symbols[target]
                if not t_fn.impure_reads:
                    continue
                chain = chains[target]
                first_hop: CallSite = chain[0][1]
                path_desc = " -> ".join(
                    key.partition(":")[2] for key, _ in chain
                )
                name, read_line, _ = t_fn.impure_reads[0]
                out.append(Violation(
                    path=facts.path, line=first_hop.line, col=first_hop.col,
                    code="SIM009",
                    message=(f"worker `{qualname}` transitively reads "
                             f"module-level mutable `{name}` via "
                             f"{path_desc} ({t_facts.module}:{read_line}): "
                             "worker processes see a private (under spawn, "
                             "freshly re-imported) copy, so shared state "
                             "silently diverges; pass state through the "
                             "task argument"),
                ))
    return out


def project_violations(ir: ProjectIR) -> List[Violation]:
    """All cross-module findings, in stable (path, line, col, code) order."""
    out = sim008_labels(ir) + sim009_worker_impurity(ir)
    out.sort(key=Violation.sort_key)
    return out
