"""Per-file lint rules SIM001–SIM007, SIM010, SIM011.

These rules need only one module's AST (plus its path for context); the
cross-module rules SIM008/SIM009 live in :mod:`.project` and run on the
:class:`~repro.analysis.simlint.ir.ProjectIR`.  See the package docstring
for the full rule table and :func:`lint_source` for the entry point the
fixture tests use.

The pass is deliberately conservative and syntactic: SIM003/SIM010/SIM011
only track set-ness through local names, literals, comprehensions and set
operators (attribute-held sets used for membership tests are fine and
common), and "feeds the event heap" is over-approximated to "is iterated"
— sorting an iteration that did not need it is cheap; a nondeterministic
replay is not.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

__all__ = [
    "RULES",
    "Violation",
    "lint_source",
    "lint_tree",
    "suppressions_for",
    "filter_suppressed",
]

RULES: Dict[str, str] = {
    "SIM001": "wall-clock read outside benchmarks/ (use sim.now)",
    "SIM002": "global or unseeded RNG (thread repro.sim.rng generators)",
    "SIM003": "iteration over an unordered set (wrap in sorted(...))",
    "SIM004": "heap entry without a total-order tie-breaker",
    "SIM005": "threading / shared mutable global in a parallel payload",
    "SIM006": "legacy numpy.random module-level RandomState use",
    "SIM007": "shard-unsafe pattern (cpu_count outside default_jobs, or "
              "module-level mutable state read in a worker function)",
    "SIM008": "RNG substream label collision or dynamic label "
              "(labels must be unique literal/f-string shapes per module)",
    "SIM009": "worker function transitively reaches module-level mutable "
              "state through its call graph",
    "SIM010": "float reduction over an unordered collection "
              "(sum/min/max over a set, or dict views in digest modules)",
    "SIM011": "key-based ordering without a deterministic tie-breaker "
              "(keyed sort over a set, or a heap entry whose second slot "
              "is not a sequence number)",
}

# Functions executed in worker processes follow this naming convention
# (parallel.py's _figure_task, sharded.py's _shard_worker_main, ...); the
# contract is that they receive *all* state through their arguments.
_WORKER_SUFFIXES = ("_task", "_worker", "_main")

# The one blessed home for a worker-count decision (see
# repro.experiments.parallel.default_jobs: affinity-aware + env override).
_CPU_COUNT_FUNCS = frozenset({"os.cpu_count", "multiprocessing.cpu_count"})

# time-module functions that read host clocks.
_WALL_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "clock_gettime", "clock_gettime_ns",
})
# datetime constructors that read host clocks.
_WALL_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_DATETIME_BASES = frozenset({"datetime", "datetime.datetime", "datetime.date"})

# numpy.random attributes that are *constructors*, not global-state draws.
# ``default_rng`` is allowed only when called with a seed (checked at the
# call site); everything else on numpy.random touches the legacy global
# RandomState and is flagged.
_NP_RANDOM_OK = frozenset({
    "Generator", "SeedSequence", "BitGenerator",
    "Philox", "PCG64", "PCG64DXSM", "MT19937", "SFC64",
    "default_rng",
})

# set methods that return another set (propagate set-ness in inference).
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

# SIM010's dict-view arm fires only in modules whose *output* is the
# deterministic record of a run — where float accumulation order becomes
# part of the digest/stat contract and a refactor that reorders dict
# insertion silently changes recorded bits.
_DIGEST_SINK_FILES = frozenset({
    "stats.py", "trace.py", "replay.py", "monitor.py", "report.py",
})

# Reductions whose result depends on element order (float rounding) or on
# tie resolution.  math.fsum is exempt: it is exact, so order cannot
# change its result.
_ORDER_SENSITIVE_REDUCTIONS = frozenset({"sum", "min", "max"})

# Second-slot spellings accepted as a monotonic sequence/tie-breaker in
# heap entries, matching the engine's (time, seq, payload) convention.
_SEQ_NAME_RE = re.compile(
    r"(^|_)(seq|idx|index|count|counter|tie|order|pos)(_|$|\d)|^[ijkn]$",
)

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Za-z0-9_, ]+))?"
)


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def sort_key(self) -> "tuple[str, int, int, str, str]":
        return (self.path, self.line, self.col, self.code, self.message)


def suppressions_for(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressed codes; ``None`` means all codes on that line."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return out


def filter_suppressed(
    violations: List[Violation],
    suppressed: Dict[int, Optional[Set[str]]],
) -> List[Violation]:
    """Drop violations whose line carries a matching disable comment."""
    kept: List[Violation] = []
    for v in violations:
        codes = suppressed.get(v.line, ())
        if codes is None or (codes and v.code in codes):
            continue
        kept.append(v)
    return kept


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _Linter(ast.NodeVisitor):
    """Single-pass visitor implementing the per-file rules."""

    def __init__(
        self,
        path: str,
        *,
        wall_clock_exempt: bool,
        in_experiments: bool,
        parallel_module: bool,
        digest_sink: bool,
    ) -> None:
        self.path = path
        self.wall_clock_exempt = wall_clock_exempt
        self.in_experiments = in_experiments
        self.parallel_module = parallel_module
        self.digest_sink = digest_sink
        self.violations: List[Violation] = []
        # local alias -> imported module ("np" -> "numpy")
        self._modules: Dict[str, str] = {}
        # local name -> "module.attr" ("perf_counter" -> "time.perf_counter")
        self._from_names: Dict[str, str] = {}
        # lexical scopes for SIM003 set-ness inference (module scope first)
        self._set_scopes: List[Dict[str, bool]] = [{}]
        # SIM007 state: enclosing function names, and module-level names
        # bound to mutable containers (collected by visit_Module).
        self._func_stack: List[str] = []
        self._mutable_globals: Set[str] = set()

    # -- bookkeeping ------------------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted spelling with import aliases substituted.

        Unimported heads keep their literal spelling, so fixture snippets
        (and ``np.``-conventional code) still resolve usefully.
        """
        parts = _dotted_parts(node)
        if not parts:
            return None
        head = parts[0]
        if head in self._modules:
            parts = self._modules[head].split(".") + parts[1:]
        elif head in self._from_names:
            parts = self._from_names[head].split(".") + parts[1:]
        elif head == "np":
            parts = ["numpy"] + parts[1:]
        return ".".join(parts)

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.partition(".")[0]
            self._modules[alias.asname or root] = alias.name if alias.asname else root
            if root == "random":
                self._flag(node, "SIM002",
                           "the global `random` module is unseeded shared "
                           "state; draw from repro.sim.rng streams instead")
            if root == "threading" and self.in_experiments:
                self._flag(node, "SIM005",
                           "threading in an experiments/ module: parallel "
                           "job payloads must be share-nothing processes")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self._from_names[alias.asname or alias.name] = f"{module}.{alias.name}"
        root = module.partition(".")[0]
        if root == "random":
            self._flag(node, "SIM002",
                       "the global `random` module is unseeded shared "
                       "state; draw from repro.sim.rng streams instead")
        if root == "threading" and self.in_experiments:
            self._flag(node, "SIM005",
                       "threading in an experiments/ module: parallel "
                       "job payloads must be share-nothing processes")
        if module == "time" and not self.wall_clock_exempt:
            for alias in node.names:
                if alias.name in _WALL_TIME_FUNCS:
                    self._flag(node, "SIM001",
                               f"wall-clock import `time.{alias.name}`; "
                               "simulations must read sim.now")
        self.generic_visit(node)

    # -- references (SIM001, SIM002, SIM005) -------------------------------

    def _check_reference(self, node: ast.AST, full: str) -> None:
        base, _, attr = full.rpartition(".")
        if not self.wall_clock_exempt:
            if base == "time" and attr in _WALL_TIME_FUNCS:
                self._flag(node, "SIM001",
                           f"wall-clock read `{full}`; simulations must "
                           "read sim.now")
            elif base in _DATETIME_BASES and attr in _WALL_DATETIME_FUNCS:
                self._flag(node, "SIM001",
                           f"wall-clock read `{full}`; simulations must "
                           "read sim.now")
        if base == "random":
            self._flag(node, "SIM002",
                       f"`{full}` draws from the global `random` module; "
                       "thread a repro.sim.rng generator instead")
        elif base == "numpy.random" and attr not in _NP_RANDOM_OK:
            self._flag(node, "SIM006",
                       f"`{full}` uses numpy's module-level RandomState: "
                       "one hidden global stream, so draw order couples "
                       "unrelated components and replays diverge; thread "
                       "a spawned repro.sim.rng generator instead")
        if self.in_experiments and base == "threading":
            self._flag(node, "SIM005",
                       f"`{full}` in an experiments/ module: parallel "
                       "job payloads must be share-nothing processes")
        if full in _CPU_COUNT_FUNCS and not self.wall_clock_exempt \
                and "default_jobs" not in self._func_stack:
            self._flag(node, "SIM007",
                       f"`{full}` ignores affinity masks and cgroup CPU "
                       "limits and scatters the worker-count decision; "
                       "call repro.experiments.parallel.default_jobs() "
                       "instead")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            full = self._resolve(node)
            if full is not None:
                self._check_reference(node, full)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self._from_names:
            self._check_reference(node, self._from_names[node.id])

    # -- calls (SIM002/SIM004/SIM010/SIM011) -------------------------------

    @staticmethod
    def _is_seq_like(node: ast.AST) -> bool:
        """Does this expression read as a monotonic sequence number?"""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return True
        if isinstance(node, ast.UnaryOp):
            return _Linter._is_seq_like(node.operand)
        if isinstance(node, ast.Call):
            func = node.func
            return isinstance(func, ast.Name) and func.id == "next"
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            return bool(_SEQ_NAME_RE.search(name.lower().lstrip("_")))
        return False

    def _check_heap_entry(self, call: ast.Call, full: str) -> None:
        if full in ("heapq.heappush", "heapq.heappushpop", "heapq.heapreplace"):
            if len(call.args) >= 2 and isinstance(call.args[1], ast.Tuple):
                elts = call.args[1].elts
                if len(elts) == 2:
                    self._flag(call.args[1], "SIM004",
                               "bare (time, payload) heap entry: equal "
                               "timestamps compare the payloads, which is "
                               "not a total order; push (time, seq, payload) "
                               "with a monotonic sequence number")
                elif len(elts) >= 3 and not self._is_seq_like(elts[1]):
                    self._flag(call.args[1], "SIM011",
                               "heap entry's second slot is not a sequence "
                               "number: the engine's (time, seq, payload) "
                               "convention needs a monotonic int there so "
                               "equal keys never compare payloads")

    def _reduction_arg_hazard(self, arg: ast.AST) -> Optional[str]:
        """Why reducing over ``arg`` is order-hazardous (None when fine)."""
        if self._is_set_expr(arg):
            return ("a set's iteration order varies with hash seeding "
                    "and insertion history")
        if self.digest_sink and isinstance(arg, ast.Call) \
                and isinstance(arg.func, ast.Attribute) \
                and arg.func.attr in ("values", "items") and not arg.args:
            return ("dict insertion order is a refactor-sensitive detail; "
                    "in a digest/stat module the accumulation order "
                    "becomes part of the recorded bits")
        return None

    def _check_reduction(self, call: ast.Call, full: str) -> None:
        name = full.rpartition(".")[2]
        if name not in _ORDER_SENSITIVE_REDUCTIONS or full == "math.fsum":
            return
        if not call.args:
            return
        hazard = self._reduction_arg_hazard(call.args[0])
        if hazard is not None:
            self._flag(call, "SIM010",
                       f"`{name}()` over an unordered collection: {hazard}; "
                       "reduce over sorted(...) (or math.fsum for exact "
                       "float sums)")

    def _check_keyed_order(self, call: ast.Call, full: str) -> None:
        name = full.rpartition(".")[2]
        if name not in ("sorted", "nsmallest", "nlargest"):
            return
        if not any(kw.arg == "key" for kw in call.keywords):
            return
        # sorted(xs, key=f): positional arg 0; nsmallest(n, xs, key=f): 1.
        idx = 0 if name == "sorted" else 1
        if len(call.args) <= idx:
            return
        if self._is_set_expr(call.args[idx]):
            self._flag(call, "SIM011",
                       f"`{name}(..., key=...)` over a set: elements that "
                       "compare equal under the key keep the set's "
                       "arbitrary iteration order; sort the set itself "
                       "first (total order) or add a tie-breaker to the "
                       "key")

    def visit_Call(self, node: ast.Call) -> None:
        full = self._resolve(node.func)
        if full is not None:
            if full.endswith("numpy.random.default_rng") or full == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(node, "SIM002",
                               "unseeded np.random.default_rng(): entropy "
                               "comes from the OS, so replays diverge; "
                               "thread a repro.sim.rng generator")
            self._check_heap_entry(node, full)
            self._check_reduction(node, full)
            self._check_keyed_order(node, full)
        self.generic_visit(node)

    # -- SIM003: set-ness inference and iteration --------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SET_RETURNING_METHODS:
                return self._is_set_expr(func.value)
            return False
        if isinstance(node, ast.Name):
            for scope in reversed(self._set_scopes):
                if node.id in scope:
                    return scope[node.id]
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    @staticmethod
    def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset")
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if isinstance(base, ast.Name):
                return base.id in ("set", "frozenset", "Set", "FrozenSet")
        return False

    def _flag_set_iteration(self, iter_node: ast.AST) -> None:
        self._flag(iter_node, "SIM003",
                   "iterating an unordered set: element order varies "
                   "with hash seeding and insertion history; iterate "
                   "sorted(...) so heap/RNG/LP row order stays stable")

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._set_scopes[-1][target.id] = is_set
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            is_set = self._annotation_is_set(node.annotation) or (
                node.value is not None and self._is_set_expr(node.value)
            )
            self._set_scopes[-1][node.target.id] = is_set
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST, generators: List[ast.comprehension]) -> None:
        for gen in generators:
            if self._is_set_expr(gen.iter):
                self._flag_set_iteration(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    # A set built *from* a set is order-insensitive; SetComp iterates its
    # generators but lands in an unordered result, so it is not flagged.

    # -- scopes ------------------------------------------------------------

    def _visit_scoped(self, node: ast.AST) -> None:
        self._set_scopes.append({})
        self.generic_visit(node)
        self._set_scopes.pop()

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self._check_worker_function(node)
        self._func_stack.append(node.name)
        self._visit_scoped(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scoped(node)

    # -- SIM007: shard-unsafe worker functions -----------------------------

    @staticmethod
    def _is_mutable_container(node: ast.AST) -> bool:
        """Literal / constructor expressions yielding a mutable container."""
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name: Optional[str] = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in ("list", "dict", "set", "bytearray", "defaultdict",
                            "deque", "Counter", "OrderedDict")
        return False

    def visit_Module(self, node: ast.Module) -> None:
        # Pre-pass: names bound at module top level to mutable containers.
        # Reads of these inside worker functions are shard hazards — each
        # worker process gets its own (possibly stale, never shared) copy.
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            if value is not None and self._is_mutable_container(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self._mutable_globals.add(target.id)
        self.generic_visit(node)

    def _check_worker_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        """Flag reads of module-level mutable state in worker functions.

        Functions named ``*_task``/``*_worker``/``*_main`` run in forked or
        spawned processes; mutations made there never reach the parent, and
        under ``spawn`` the module is re-imported so the "global" may not
        even hold the parent's value.  All state must arrive through the
        task argument.  The check is syntactic: a name is considered local
        if it is a parameter, assigned, or imported anywhere in the
        function body.
        """
        if not node.name.endswith(_WORKER_SUFFIXES):
            return
        if not self._mutable_globals:
            return
        bound: Set[str] = set()
        arguments = node.args
        for arg in (*arguments.posonlyargs, *arguments.args,
                    *arguments.kwonlyargs):
            bound.add(arg.arg)
        if arguments.vararg is not None:
            bound.add(arguments.vararg.arg)
        if arguments.kwarg is not None:
            bound.add(arguments.kwarg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                bound.add(sub.id)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    bound.add(alias.asname or alias.name.partition(".")[0])
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                    and sub.id in self._mutable_globals \
                    and sub.id not in bound:
                self._flag(sub, "SIM007",
                           f"worker function `{node.name}` reads module-"
                           f"level mutable `{sub.id}`: worker processes "
                           "see a private (under spawn, freshly re-"
                           "imported) copy, so shared state silently "
                           "diverges; pass it through the task argument")

    # -- SIM005: shared mutable globals in parallel payloads ---------------

    def visit_Global(self, node: ast.Global) -> None:
        if self.parallel_module:
            names = ", ".join(node.names)
            self._flag(node, "SIM005",
                       f"`global {names}` inside a parallel-payload module: "
                       "workers must receive all state through task "
                       "arguments, never module globals")
        self.generic_visit(node)


def lint_tree(tree: ast.Module, path: str = "<string>") -> List[Violation]:
    """Run the per-file rules on an already-parsed module.

    ``path`` decides context: files under a ``benchmarks/`` directory are
    exempt from SIM001 (measuring wall time is their purpose); files under
    ``experiments/`` activate SIM005's threading check, modules named
    ``parallel.py`` its shared-global check, and the digest/stat sink
    modules (``stats.py``, ``trace.py``, ``replay.py``, ``monitor.py``,
    ``report.py``) arm SIM010's dict-view arm.

    Suppression comments are *not* applied here — the caller filters with
    :func:`filter_suppressed` so project-rule findings share the same
    per-line disable machinery.
    """
    parts = Path(path).parts
    linter = _Linter(
        path,
        wall_clock_exempt="benchmarks" in parts,
        in_experiments="experiments" in parts,
        parallel_module=Path(path).name == "parallel.py",
        digest_sink=Path(path).name in _DIGEST_SINK_FILES,
    )
    linter.visit(tree)
    linter.violations.sort(key=Violation.sort_key)
    return linter.violations


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one module's source text (per-file rules, suppressions applied)."""
    tree = ast.parse(source, filename=path)
    violations = lint_tree(tree, path=path)
    kept = filter_suppressed(violations, suppressions_for(source))
    kept.sort(key=Violation.sort_key)
    return kept
