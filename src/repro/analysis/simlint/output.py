"""Finding formatters: human text, machine JSON, and SARIF 2.1.0 for CI.

SARIF is the interchange format code-scanning UIs ingest; emitting it
directly means the CI lint job uploads one artifact and the findings are
browsable per-rule with no extra tooling.  The emitted document is
minimal but valid: one run, the rule table as ``tool.driver.rules``, one
``result`` per finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.simlint.local import RULES, Violation

__all__ = ["format_text", "format_json", "format_sarif", "FORMATS"]

FORMATS = ("text", "json", "sarif")

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def format_text(violations: List[Violation]) -> str:
    """One ``path:line:col: CODE message`` line per finding + a summary."""
    lines = [v.format() for v in violations]
    if violations:
        counts: Dict[str, int] = {}
        for v in violations:
            counts[v.code] = counts.get(v.code, 0) + 1
        summary = ", ".join(f"{c}×{counts[c]}" for c in sorted(counts))
        lines.append(f"simlint: {len(violations)} violation(s) ({summary})")
    else:
        lines.append("simlint: clean")
    return "\n".join(lines)


def format_json(violations: List[Violation]) -> str:
    """Stable JSON array of finding objects (diffable across runs)."""
    payload = [
        {"path": v.path, "line": v.line, "col": v.col,
         "code": v.code, "message": v.message}
        for v in violations
    ]
    return json.dumps(payload, indent=1)


def format_sarif(violations: List[Violation]) -> str:
    rules = [
        {
            "id": code,
            "shortDescription": {"text": RULES[code]},
            "defaultConfiguration": {"level": "error"},
        }
        for code in sorted(RULES)
    ]
    rule_index = {code: i for i, code in enumerate(sorted(RULES))}
    results: List[Dict[str, Any]] = []
    for v in violations:
        results.append({
            "ruleId": v.code,
            "ruleIndex": rule_index.get(v.code, -1),
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path.replace("\\", "/")},
                    "region": {
                        "startLine": v.line,
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": v.col + 1,
                    },
                },
            }],
        })
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=1)
