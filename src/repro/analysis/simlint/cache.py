"""Incremental lint cache keyed on file content hashes.

Parsing and walking ~200 modules dominates a cold lint; the facts the
rules need are tiny.  The cache stores, per file, the SHA-256 of its
bytes plus the extracted :class:`ModuleFacts` and the per-file rule
findings.  A warm re-lint re-hashes every file (cheap), re-parses only
the changed ones, and re-runs the cross-module rules over the assembled
facts — so whole-program analysis stays fast enough for a pre-commit
hook.

The cache is invalidated wholesale when the engine schema changes (rule
set, fact format): the ``version`` field mixes a schema counter with a
hash of the rule table, so adding a rule never serves stale results.
A corrupt or unreadable cache file degrades to a cold run, never an
error.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.simlint.ir import ModuleFacts
from repro.analysis.simlint.local import RULES, Violation

__all__ = ["LintCache", "content_hash", "cache_version", "DEFAULT_CACHE_PATH"]

DEFAULT_CACHE_PATH = ".simlint-cache.json"

# Bump when the fact or violation serialisation format changes shape.
_SCHEMA = 1


def cache_version() -> str:
    """Schema counter mixed with the rule table, so rule edits invalidate."""
    digest = hashlib.sha256(
        repr(sorted(RULES.items())).encode("utf-8")
    ).hexdigest()[:16]
    return f"{_SCHEMA}:{digest}"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _violation_to_dict(v: Violation) -> Dict[str, Any]:
    return {"path": v.path, "line": v.line, "col": v.col,
            "code": v.code, "message": v.message}


def _violation_from_dict(d: Dict[str, Any]) -> Violation:
    return Violation(path=d["path"], line=int(d["line"]), col=int(d["col"]),
                     code=d["code"], message=d["message"])


@dataclass
class _Entry:
    sha256: str
    facts: ModuleFacts
    violations: List[Violation]


class LintCache:
    """Content-addressed per-file results backed by one JSON file."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._entries: Dict[str, _Entry] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_version: Optional[str] = None
        if path is not None:
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        self._loaded_version = data.get("version")
        if self._loaded_version != cache_version():
            return  # schema or rule set changed: full re-lint
        files = data.get("files")
        if not isinstance(files, dict):
            return
        for file_path, entry in files.items():
            try:
                self._entries[file_path] = _Entry(
                    sha256=entry["sha256"],
                    facts=ModuleFacts.from_dict(entry["facts"]),
                    violations=[
                        _violation_from_dict(v)
                        for v in entry.get("violations", [])
                    ],
                )
            except (KeyError, TypeError, ValueError):
                continue  # one bad record never poisons the rest

    def get(
        self, file_path: str, sha256: str
    ) -> Optional[Tuple[ModuleFacts, List[Violation]]]:
        """Cached (facts, per-file violations) when the content matches."""
        entry = self._entries.get(file_path)
        if entry is not None and entry.sha256 == sha256:
            self.hits += 1
            return entry.facts, entry.violations
        self.misses += 1
        return None

    def put(
        self,
        file_path: str,
        sha256: str,
        facts: ModuleFacts,
        violations: List[Violation],
    ) -> None:
        self._entries[file_path] = _Entry(
            sha256=sha256, facts=facts, violations=list(violations)
        )

    def save(self, only: Optional[List[str]] = None) -> None:
        """Write the cache (optionally trimmed to ``only`` paths)."""
        if self.path is None:
            return
        entries = self._entries
        if only is not None:
            keep = set(only)
            entries = {p: e for p, e in entries.items() if p in keep}
        payload = {
            "version": cache_version(),
            "files": {
                p: {
                    "sha256": e.sha256,
                    "facts": e.facts.to_dict(),
                    "violations": [
                        _violation_to_dict(v) for v in e.violations
                    ],
                }
                for p, e in sorted(entries.items())
            },
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
