"""Project IR: the whole-program facts the cross-module rules run on.

Per-file AST passes (``local.py``) cannot see that a ``*_worker`` function
calls a helper in another module that reads module state, or that two
components spawn the *same* RNG substream label from different files.
This module extracts, per file, a compact JSON-serialisable
:class:`ModuleFacts` record — imports, module-level mutable bindings,
function definitions with their outgoing calls and impure reads, RNG
substream label acquisitions, and string-returning helpers — and
assembles the records into a :class:`ProjectIR`:

- a **module index** (dotted module name -> facts),
- an **import graph** (who imports whom, with aliases resolved),
- a **symbol table** (``module.qualname`` -> function fact),
- a **call graph** whose edges are resolved lazily from each function's
  recorded call spellings, with a **bounded transitive closure** for
  reachability queries (cycles are handled by a visited set; depth is
  capped so pathological graphs stay linear).

Facts are what the incremental cache stores: re-linting a project re-runs
the cross-module rules over cached facts, touching only changed files.

Resolution is deliberately name-based and conservative — ``self.m()``
resolves within the enclosing class, ``mod.f()`` through import aliases,
bare ``f()`` through ``from``-imports and module-level defs.  Calls
through containers (``ALL_FIGURES[name](...)``), instance attributes of
foreign classes, and higher-order values stay unresolved; the rules that
consume the closure over-approximate only what resolution can prove.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallSite",
    "FunctionFact",
    "LabelUse",
    "ModuleFacts",
    "ProjectIR",
    "collect_facts",
    "module_name_for",
    "MAX_CLOSURE_DEPTH",
]

# Reachability queries stop here: deep chains past this are almost always
# resolution noise, and the bound keeps closure linear in project size.
MAX_CLOSURE_DEPTH = 8

# Functions executed in worker processes follow this naming convention
# (parallel.py's _figure_task, sharded.py's _shard_worker_main, ...); the
# contract is that they receive *all* state through their arguments.
WORKER_SUFFIXES = ("_task", "_worker", "_main")

# ``.get``/``.spawn`` receivers considered RNG-stream factories.  The
# check is syntactic: the receiver's final name mentions a stream/rng, or
# it is a direct ``RngStreams(...)`` construction.  One positional string
# argument disambiguates from ``dict.get(key, default)``.
_STREAMS_RECEIVER_RE = re.compile(r"(^|_)(rng|streams?)$|stream", re.IGNORECASE)

_FORMAT_FIELD_RE = re.compile(r"\{[^{}]*\}")


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, walking up through packages.

    ``src/repro/analysis/simlint/ir.py`` -> ``repro.analysis.simlint.ir``.
    Files outside any package keep their stem as the module name.
    """
    p = Path(path).resolve()
    parts = [p.stem] if p.stem != "__init__" else []
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts = [p.stem]
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class CallSite:
    """One outgoing call recorded inside a function body."""

    name: str  # dotted spelling as written ("helper", "mod.f", "self.m")
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CallSite":
        return cls(name=d["name"], line=int(d["line"]), col=int(d["col"]))


@dataclass(frozen=True)
class LabelUse:
    """One RNG substream acquisition: ``streams.get(label)`` / ``.spawn``.

    ``shape`` is the label with every interpolated field collapsed to
    ``{}`` (``f"client:{name}"`` -> ``client:{}``) so textually different
    spellings of the same substream family unify.  ``shape`` is ``None``
    when the label could not be resolved statically; ``call`` then holds
    the dotted callee spelling when the label came from a helper call, so
    the project phase can try one more resolution hop through the symbol
    table (``link_stream_name(src, dst)`` -> its recorded f-string
    return).
    """

    shape: Optional[str]
    line: int
    col: int
    func: str  # enclosing function qualname ("" at module level)
    method: str  # "get" or "spawn"
    call: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shape": self.shape, "line": self.line, "col": self.col,
            "func": self.func, "method": self.method, "call": self.call,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LabelUse":
        return cls(
            shape=d.get("shape"), line=int(d["line"]), col=int(d["col"]),
            func=d.get("func", ""), method=d.get("method", "get"),
            call=d.get("call"),
        )


@dataclass
class FunctionFact:
    """One function definition and the facts the project rules need."""

    qualname: str  # "f", "Class.m", "outer.inner"
    line: int
    calls: List[CallSite] = field(default_factory=list)
    # Reads of module-level mutable names not bound locally: (name, line, col)
    impure_reads: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def is_worker(self) -> bool:
        return self.qualname.rpartition(".")[2].endswith(WORKER_SUFFIXES)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "calls": [c.to_dict() for c in self.calls],
            "impure_reads": [list(r) for r in self.impure_reads],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FunctionFact":
        return cls(
            qualname=d["qualname"],
            line=int(d["line"]),
            calls=[CallSite.from_dict(c) for c in d.get("calls", [])],
            impure_reads=[
                (r[0], int(r[1]), int(r[2])) for r in d.get("impure_reads", [])
            ],
        )


@dataclass
class ModuleFacts:
    """Everything the cross-module rules need to know about one file."""

    path: str
    module: str
    # import alias -> module dotted name ("np" -> "numpy")
    imports: Dict[str, str] = field(default_factory=dict)
    # from-import alias -> "module.attr"
    from_names: Dict[str, str] = field(default_factory=dict)
    # module-level names bound to mutable containers
    mutable_globals: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionFact] = field(default_factory=dict)
    labels: List[LabelUse] = field(default_factory=list)
    # functions whose every return is the same literal/f-string shape
    str_returns: Dict[str, str] = field(default_factory=dict)
    # line -> suppressed codes (empty list in JSON means "all codes")
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "imports": dict(self.imports),
            "from_names": dict(self.from_names),
            "mutable_globals": list(self.mutable_globals),
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "labels": [lu.to_dict() for lu in self.labels],
            "str_returns": dict(self.str_returns),
            "suppressions": {
                str(line): (sorted(codes) if codes is not None else None)
                for line, codes in self.suppressions.items()
            },
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ModuleFacts":
        return cls(
            path=d["path"],
            module=d["module"],
            imports=dict(d.get("imports", {})),
            from_names=dict(d.get("from_names", {})),
            mutable_globals=list(d.get("mutable_globals", [])),
            functions={
                q: FunctionFact.from_dict(f)
                for q, f in d.get("functions", {}).items()
            },
            labels=[LabelUse.from_dict(x) for x in d.get("labels", [])],
            str_returns=dict(d.get("str_returns", {})),
            suppressions={
                int(line): (set(codes) if codes is not None else None)
                for line, codes in d.get("suppressions", {}).items()
            },
        )


# ---------------------------------------------------------------------------
# Fact extraction
# ---------------------------------------------------------------------------


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _label_shape(node: ast.AST) -> Optional[str]:
    """Static shape of a substream label expression, ``None`` if dynamic.

    Interpolated fields collapse to ``{}``: literals keep their text,
    f-strings replace each ``FormattedValue``, ``"a:{}".format(x)``
    normalises format fields, and string concatenation folds both sides.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        out: List[str] = []
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                out.append(part.value)
            else:
                out.append("{}")
        return "".join(out)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _label_shape(node.left)
        right = _label_shape(node.right)
        if left is None and right is None:
            return None
        return (left if left is not None else "{}") + (
            right if right is not None else "{}"
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "format":
        base = _label_shape(node.func.value)
        if base is not None:
            return _FORMAT_FIELD_RE.sub("{}", base)
    return None


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in ("list", "dict", "set", "bytearray", "defaultdict",
                        "deque", "Counter", "OrderedDict")
    return False


def _bound_names(node: ast.AST) -> Set[str]:
    """Names a function body binds: params, assignments, imports, dels."""
    bound: Set[str] = set()
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    arguments = node.args
    for arg in (*arguments.posonlyargs, *arguments.args,
                *arguments.kwonlyargs):
        bound.add(arg.arg)
    if arguments.vararg is not None:
        bound.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        bound.add(arguments.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            bound.add(sub.id)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                bound.add(alias.asname or alias.name.partition(".")[0])
    return bound


def _is_streams_receiver(node: ast.AST) -> bool:
    """Does this expression plausibly evaluate to an RNG stream factory?"""
    if isinstance(node, ast.Call):
        callee = _dotted_parts(node.func)
        return bool(callee) and callee[-1] == "RngStreams"
    parts = _dotted_parts(node)
    if not parts:
        return False
    return bool(_STREAMS_RECEIVER_RE.search(parts[-1]))


class _FactCollector(ast.NodeVisitor):
    """One AST walk filling a :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._scope: List[str] = []  # enclosing def/class names
        self._class_depth = 0
        # function qualname currently being collected ("" at module level)
        self._current: Optional[FunctionFact] = None
        # name -> shape for string locals assigned in the current function
        self._str_locals: List[Dict[str, str]] = [{}]

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.partition(".")[0]
            self.facts.imports[alias.asname or root] = (
                alias.name if alias.asname else root
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self.facts.from_names[alias.asname or alias.name] = (
                f"{module}.{alias.name}"
            )
        self.generic_visit(node)

    # -- module-level mutable bindings -------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        mutable: Set[str] = set()
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            if value is not None and _is_mutable_container(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable.add(target.id)
        self.facts.mutable_globals = sorted(mutable)
        self.generic_visit(node)

    # -- functions ---------------------------------------------------------

    def _qualname(self, name: str) -> str:
        return ".".join(self._scope + [name])

    def _collect_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        qualname = self._qualname(node.name)
        fact = FunctionFact(qualname=qualname, line=node.lineno)
        bound = _bound_names(node)
        mutable = set(self.facts.mutable_globals)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                callee = _dotted_parts(sub.func)
                if callee:
                    fact.calls.append(CallSite(
                        name=".".join(callee), line=sub.lineno,
                        col=sub.col_offset,
                    ))
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                    and sub.id in mutable and sub.id not in bound:
                fact.impure_reads.append((sub.id, sub.lineno, sub.col_offset))
        self.facts.functions[qualname] = fact
        shape = self._return_shape(node)
        if shape is not None:
            self.facts.str_returns[qualname] = shape
        # Recurse with this function on the scope stack so nested defs and
        # label acquisitions attribute to the right qualname.
        outer, self._current = self._current, fact
        self._scope.append(node.name)
        class_depth, self._class_depth = self._class_depth, 0
        self._str_locals.append(self._collect_str_locals(node))
        self.generic_visit(node)
        self._str_locals.pop()
        self._class_depth = class_depth
        self._scope.pop()
        self._current = outer

    @staticmethod
    def _collect_str_locals(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Dict[str, str]:
        """Local names assigned a statically-shaped string in this body."""
        out: Dict[str, str] = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name):
                shape = _label_shape(sub.value)
                name = sub.targets[0].id
                if shape is not None and name not in out:
                    out[name] = shape
        return out

    @staticmethod
    def _return_shape(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Optional[str]:
        """The common label shape of every return, if there is one."""
        shapes: List[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                shape = _label_shape(sub.value)
                if shape is None:
                    return None
                shapes.append(shape)
        if shapes and all(s == shapes[0] for s in shapes):
            return shapes[0]
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._collect_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._collect_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1
        self._scope.pop()

    # -- RNG substream labels ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("get", "spawn") \
                and len(node.args) == 1 and not node.keywords \
                and _is_streams_receiver(func.value):
            arg = node.args[0]
            # Generator.spawn(n) takes an int child count; only string-ish
            # labels name substreams.
            if not (isinstance(arg, ast.Constant)
                    and not isinstance(arg.value, str)):
                shape = _label_shape(arg)
                call: Optional[str] = None
                if shape is None and isinstance(arg, ast.Name):
                    for scope in reversed(self._str_locals):
                        if arg.id in scope:
                            shape = scope[arg.id]
                            break
                if shape is None and isinstance(arg, ast.Call):
                    callee = _dotted_parts(arg.func)
                    if callee:
                        call = ".".join(callee)
                func_name = self._current.qualname if self._current else ""
                self.facts.labels.append(LabelUse(
                    shape=shape, line=node.lineno, col=node.col_offset,
                    func=func_name, method=func.attr, call=call,
                ))
        self.generic_visit(node)


def collect_facts(
    tree: ast.Module,
    path: str,
    suppressions: Optional[Dict[int, Optional[Set[str]]]] = None,
) -> ModuleFacts:
    """Extract :class:`ModuleFacts` from a parsed module."""
    facts = ModuleFacts(path=path, module=module_name_for(path))
    if suppressions:
        facts.suppressions = dict(suppressions)
    _FactCollector(facts).visit(tree)
    return facts


# ---------------------------------------------------------------------------
# The assembled IR
# ---------------------------------------------------------------------------


class ProjectIR:
    """Module index + symbol table + call graph over collected facts."""

    def __init__(self, modules: Sequence[ModuleFacts]) -> None:
        # Deterministic order: by path, so every consumer iterates stably.
        self.modules: List[ModuleFacts] = sorted(modules, key=lambda m: m.path)
        self.by_module: Dict[str, ModuleFacts] = {}
        for facts in self.modules:
            self.by_module[facts.module] = facts
        # Symbol table: "module:qualname" -> (facts, FunctionFact)
        self.symbols: Dict[str, Tuple[ModuleFacts, FunctionFact]] = {}
        for facts in self.modules:
            for qualname, fn in facts.functions.items():
                self.symbols[f"{facts.module}:{qualname}"] = (facts, fn)
        self._edges: Dict[str, List[Tuple[str, CallSite]]] = {}

    # -- import graph ------------------------------------------------------

    def imported_modules(self, facts: ModuleFacts) -> List[str]:
        """Project-internal modules ``facts`` imports (deduped, sorted)."""
        out: Set[str] = set()
        for target in facts.imports.values():
            if target in self.by_module:
                out.add(target)
        for target in facts.from_names.values():
            module, _, attr = target.rpartition(".")
            if module in self.by_module:
                out.add(module)
            elif target in self.by_module:  # ``from pkg import submodule``
                out.add(target)
        return sorted(out)

    def import_graph(self) -> Dict[str, List[str]]:
        return {
            facts.module: self.imported_modules(facts)
            for facts in self.modules
        }

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self, facts: ModuleFacts, caller: Optional[FunctionFact], name: str
    ) -> Optional[str]:
        """Resolve a recorded call spelling to a ``module:qualname`` key.

        Handles, in order: ``self.m()`` within the caller's class,
        module-local functions (including nested/class scope), aliased
        ``from``-imports, and ``mod.f()`` through import aliases.  Returns
        ``None`` for spellings resolution cannot prove (subscripted
        registries, foreign instance attributes, builtins).
        """
        head, _, rest = name.partition(".")
        if head == "self" and rest and caller is not None:
            cls = caller.qualname.rpartition(".")[0]
            if cls:
                candidate = f"{facts.module}:{cls}.{rest}"
                if candidate in self.symbols:
                    return candidate
            return None
        if not rest:
            # Bare name: same-module def (prefer caller's class scope).
            if caller is not None:
                cls = caller.qualname.rpartition(".")[0]
                if cls and f"{facts.module}:{cls}.{head}" in self.symbols:
                    return f"{facts.module}:{cls}.{head}"
            for candidate in (f"{facts.module}:{head}",
                              f"{facts.module}:{head}.__init__"):
                if candidate in self.symbols:
                    return candidate
            target = facts.from_names.get(head)
            if target is not None:
                module, _, attr = target.rpartition(".")
                for candidate in (f"{module}:{attr}",
                                  f"{module}:{attr}.__init__"):
                    if candidate in self.symbols:
                        return candidate
            return None
        # Dotted: resolve the head through import aliases.
        module = facts.imports.get(head)
        if module is not None:
            for candidate in (f"{module}:{rest}",
                              f"{module}:{rest}.__init__"):
                if candidate in self.symbols:
                    return candidate
            # ``import repro.experiments.parallel`` + ``parallel.f()`` style
            # (head alias maps to a package; try the full dotted module).
        target = facts.from_names.get(head)
        if target is not None:
            # ``from pkg import submodule`` + ``submodule.f()``
            for candidate in (f"{target}:{rest}", f"{target}:{rest}.__init__"):
                if candidate in self.symbols:
                    return candidate
        return None

    def edges_from(self, key: str) -> List[Tuple[str, CallSite]]:
        """Resolved outgoing call edges of ``module:qualname`` (cached)."""
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        out: List[Tuple[str, CallSite]] = []
        entry = self.symbols.get(key)
        if entry is not None:
            facts, fn = entry
            seen: Set[Tuple[str, int]] = set()
            for call in fn.calls:
                target = self.resolve_call(facts, fn, call.name)
                if target is not None and target != key:
                    dedup = (target, call.line)
                    if dedup not in seen:
                        seen.add(dedup)
                        out.append((target, call))
        self._edges[key] = out
        return out

    def reachable(
        self, start: str, max_depth: int = MAX_CLOSURE_DEPTH
    ) -> Dict[str, List[Tuple[str, CallSite]]]:
        """Bounded transitive closure from ``start``.

        Returns ``target -> call chain`` (list of ``(callee key, call
        site)`` hops, first hop taken inside ``start``).  Cycles terminate
        via the visited set; ``max_depth`` bounds chain length.
        """
        chains: Dict[str, List[Tuple[str, CallSite]]] = {}
        frontier: List[Tuple[str, List[Tuple[str, CallSite]]]] = [(start, [])]
        visited: Set[str] = {start}
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            next_frontier: List[Tuple[str, List[Tuple[str, CallSite]]]] = []
            for key, chain in frontier:
                for target, site in self.edges_from(key):
                    if target in visited:
                        continue
                    visited.add(target)
                    hop = chain + [(target, site)]
                    chains[target] = hop
                    next_frontier.append((target, hop))
            frontier = next_frontier
        return chains

    # -- helper resolution for SIM008 --------------------------------------

    def resolve_label(
        self, facts: ModuleFacts, use: LabelUse
    ) -> Tuple[Optional[str], str]:
        """Resolve a label use to ``(shape, origin)``.

        Inline labels (literal/f-string/local) originate from their own
        module.  Helper-produced labels — ``streams.get(
        link_stream_name(src, dst))`` — resolve one extra hop through the
        symbol table to the helper's recorded literal/f-string return
        shape, and their origin is the helper's ``module:qualname`` key:
        when *every* use of a shape shares one helper origin, the sharing
        is coordinated through that helper, not an accidental collision.
        """
        if use.shape is not None:
            return use.shape, facts.module
        if use.call is None:
            return None, facts.module
        caller = facts.functions.get(use.func)
        key = self.resolve_call(facts, caller, use.call)
        if key is None:
            return None, facts.module
        target_facts, target_fn = self.symbols[key]
        return target_facts.str_returns.get(target_fn.qualname), key

    def resolve_label_shape(
        self, facts: ModuleFacts, use: LabelUse
    ) -> Optional[str]:
        """Shape half of :meth:`resolve_label` (convenience)."""
        return self.resolve_label(facts, use)[0]
