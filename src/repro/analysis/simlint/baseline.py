"""Committed finding baselines: land new rules without a suppression flood.

A baseline is a reviewed JSON file of known findings.  ``repro lint
--baseline FILE`` subtracts matching findings from the result (exit 0
when nothing *new* appears); ``--update-baseline`` rewrites the file from
the current findings, preserving rationales for entries that survive.

Matching is line-number independent so the baseline does not churn on
unrelated edits: a finding's fingerprint is ``(code, path, stripped
source line text)``, with a count per fingerprint so two identical lines
in one file need two entries.  Every entry carries a ``rationale`` field
(filled in by the reviewer; ``--update-baseline`` seeds it with TODO) —
the acceptance bar is an *empty* baseline or entries whose rationale
explains why the finding is accepted rather than fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Tuple

from repro.analysis.simlint.local import Violation

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = ".simlint-baseline.json"

_TODO_RATIONALE = "TODO: justify or fix"

Fingerprint = Tuple[str, str, str]  # (code, path, stripped line text)


def _fingerprint(v: Violation, line_text: str) -> Fingerprint:
    return (v.code, v.path, line_text.strip())


class Baseline:
    """Known-findings ledger with count-aware matching."""

    def __init__(self) -> None:
        # fingerprint -> (count, rationale)
        self.entries: Dict[Fingerprint, Tuple[int, str]] = {}

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on malformed JSON."""
        base = cls()
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return base
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(
            data.get("entries"), list
        ):
            raise ValueError(f"baseline {path}: expected "
                             '{"entries": [...]} JSON')
        for entry in data["entries"]:
            try:
                fp = (entry["code"], entry["path"], entry["line_text"])
                count = int(entry.get("count", 1))
                rationale = str(entry.get("rationale", ""))
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"baseline {path}: malformed entry {entry!r}"
                ) from exc
            self_count, _ = base.entries.get(fp, (0, rationale))
            base.entries[fp] = (self_count + count, rationale)
        return base

    def save(self, path: str) -> None:
        payload = {
            "comment": (
                "simlint baseline: accepted findings subtracted by "
                "`repro lint --baseline`.  Each entry must carry a "
                "rationale; regenerate with --update-baseline."
            ),
            "entries": [
                {
                    "code": code,
                    "path": file_path,
                    "line_text": line_text,
                    "count": count,
                    "rationale": rationale,
                }
                for (code, file_path, line_text), (count, rationale)
                in sorted(self.entries.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")

    # -- matching ----------------------------------------------------------

    def filter(
        self,
        violations: List[Violation],
        sources: Dict[str, List[str]],
    ) -> Tuple[List[Violation], int]:
        """(new findings, number suppressed by the baseline).

        ``sources`` maps path -> source lines for fingerprint extraction;
        a finding whose file has no recorded source never matches (fail
        open: better a re-reviewed finding than a silently eaten one).
        """
        remaining: Counter[Fingerprint] = Counter(
            {fp: count for fp, (count, _) in self.entries.items()}
        )
        kept: List[Violation] = []
        matched = 0
        for v in violations:
            lines = sources.get(v.path)
            text = ""
            if lines is not None and 1 <= v.line <= len(lines):
                text = lines[v.line - 1]
            fp = _fingerprint(v, text)
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                matched += 1
            else:
                kept.append(v)
        return kept, matched

    # -- regeneration ------------------------------------------------------

    def rebuild(
        self,
        violations: List[Violation],
        sources: Dict[str, List[str]],
    ) -> "Baseline":
        """A new baseline covering exactly ``violations``.

        Rationales carry over for fingerprints that persist; new entries
        get a TODO placeholder for the reviewer to fill in.
        """
        out = Baseline()
        counts: Counter[Fingerprint] = Counter()
        for v in violations:
            lines = sources.get(v.path)
            text = ""
            if lines is not None and 1 <= v.line <= len(lines):
                text = lines[v.line - 1]
            counts[_fingerprint(v, text)] += 1
        for fp, count in counts.items():
            _, rationale = self.entries.get(fp, (0, ""))
            out.entries[fp] = (count, rationale or _TODO_RATIONALE)
        return out

    def rationales_missing(self) -> List[Fingerprint]:
        """Fingerprints whose rationale is empty or still the TODO stub."""
        return sorted(
            fp for fp, (_, rationale) in self.entries.items()
            if not rationale.strip() or rationale.strip() == _TODO_RATIONALE
        )

    def __len__(self) -> int:
        return sum(count for count, _ in self.entries.values())
