"""``python -m repro.analysis.simlint`` — see the package docstring."""

from repro.analysis.simlint import main

if __name__ == "__main__":
    raise SystemExit(main())
