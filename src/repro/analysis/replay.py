"""Replay-determinism harness (``repro check``).

Runs a scenario from scratch N times and compares SHA-256 digests of
everything observable — completion series, per-server ledgers, client
counters, trace events.  Two runs with the same arguments must produce
identical digests; a third run with the invariant checker enabled must
*also* produce the same digest, proving the checker is read-only.

Digests hash exact float bytes (``ndarray.tobytes`` / ``float.hex``), so
a single ULP of drift anywhere in the event stream fails the check — the
same standard the PR 1/2 bit-identical A/B tests hold the fast paths to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "ReplayReport", "scenario_digest", "l4_admission_digest",
    "l7_admission_digest", "fig6_replay", "chaos_replay", "l4_replay",
    "columnar_replay", "sharded_replay",
]


def _hash_floats(h: "hashlib._Hash", values: Any) -> None:
    h.update(np.ascontiguousarray(np.asarray(values, dtype=float)).tobytes())


def scenario_digest(sc: Any) -> str:
    """SHA-256 over a finished Scenario's observable state.

    Covers the completion meter (every key's exact time/rate series),
    per-server completion ledgers, drop counters and busy time, client
    completion counts, and — when tracing was on — every trace event.
    Keys are visited in sorted order so the digest does not depend on
    construction order bookkeeping.
    """
    h = hashlib.sha256()
    for key in sorted(sc.meter.keys):
        h.update(key.encode("utf-8"))
        times, rates = sc.meter.series(key)
        _hash_floats(h, times)
        _hash_floats(h, rates)
    for name in sorted(sc.servers):
        srv = sc.servers[name]
        h.update(name.encode("utf-8"))
        for principal in sorted(srv.completed):
            h.update(f"{principal}={srv.completed[principal]}".encode("utf-8"))
        h.update(f"dropped={srv.dropped}".encode("utf-8"))
        # Fault-path ledgers (0 on scenarios that never crash anything).
        h.update(f"failed={getattr(srv, 'failed', 0)}".encode("utf-8"))
        h.update(f"refused={getattr(srv, 'refused', 0)}".encode("utf-8"))
        h.update(float(srv.busy_time).hex().encode("ascii"))
    for name in sorted(sc.clients):
        client = sc.clients[name]
        h.update(f"{name}:{client.completed}".encode("utf-8"))
    if getattr(sc, "tracer", None) is not None:
        for event in sc.tracer.iter():
            h.update(repr(event).encode("utf-8"))
    return h.hexdigest()


def l4_admission_digest(daemon: Any) -> str:
    """SHA-256 over an :class:`~repro.l4.daemon.L4Daemon`'s per-window
    admitted/refused traces (exact float bytes of every series).

    This is the quantity the paper's L4 figures plot per window; the
    fast/scalar lane-parity contract is that this digest — not just the
    aggregate rates — is identical between the two data paths.
    """
    h = hashlib.sha256()
    meter = daemon.admission_meter
    for key in sorted(meter.keys):
        h.update(key.encode("utf-8"))
        times, rates = meter.series(key)
        _hash_floats(h, times)
        _hash_floats(h, rates)
    return h.hexdigest()


def l7_admission_digest(redirector: Any) -> str:
    """SHA-256 over an :class:`~repro.l7.redirector.L7Redirector`'s
    per-window admitted/refused traces — the L7 counterpart of
    :func:`l4_admission_digest`, hashed by the three-lane parity check."""
    h = hashlib.sha256()
    meter = redirector.admission_meter
    for key in sorted(meter.keys):
        h.update(key.encode("utf-8"))
        times, rates = meter.series(key)
        _hash_floats(h, times)
        _hash_floats(h, rates)
    return h.hexdigest()


@dataclass
class ReplayReport:
    """Digest comparison across replay runs of one scenario."""

    scenario: str
    digests: List[str]
    labels: List[str]
    checker_summary: Optional[Dict[str, int]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return len(set(self.digests)) == 1

    @property
    def ok(self) -> bool:
        checked_clean = (
            self.checker_summary is None
            or self.checker_summary.get("violations", 0) == 0
        )
        return self.identical and checked_clean

    def render(self) -> str:
        lines = [f"replay-determinism: {self.scenario}"]
        for label, digest in zip(self.labels, self.digests):
            lines.append(f"  {label:12s} {digest}")
        if self.checker_summary is not None:
            lines.append(
                f"  invariants   {self.checker_summary['checks_run']} checks, "
                f"{self.checker_summary['violations']} violations"
            )
        lines.append(
            "  verdict      "
            + ("IDENTICAL (bit-exact replay)" if self.ok else "DIVERGED")
        )
        return "\n".join(lines)


def fig6_replay(
    duration_scale: float = 0.05,
    seed: int = 0,
    runs: int = 2,
    with_invariants: bool = True,
    lp_cache: bool = True,
    fast_lane: bool = True,
) -> ReplayReport:
    """Run the fig6 scenario ``runs`` times (plus one checked run) and diff.

    fig6 exercises the full stack the determinism contract covers: RNG
    workload streams, the event kernel, two L7 redirectors, the combining
    tree, and the window LP — which is why CI replays it rather than a
    toy scenario.
    """
    from repro.experiments.figures import fig6_scenario

    if runs < 2 and not with_invariants:
        raise ValueError("need at least two runs to compare digests")
    digests: List[str] = []
    labels: List[str] = []
    for i in range(max(1, runs)):
        sc, _ = fig6_scenario(
            duration_scale=duration_scale, seed=seed,
            lp_cache=lp_cache, fast_lane=fast_lane,
            check_invariants=False,
        )
        digests.append(scenario_digest(sc))
        labels.append(f"run {i + 1}")
    checker_summary: Optional[Dict[str, int]] = None
    if with_invariants:
        sc, _ = fig6_scenario(
            duration_scale=duration_scale, seed=seed,
            lp_cache=lp_cache, fast_lane=fast_lane,
            check_invariants=True,
        )
        digests.append(scenario_digest(sc))
        labels.append("run +check")
        assert sc.invariants is not None
        checker_summary = sc.invariants.summary()
    return ReplayReport(
        scenario="fig6",
        digests=digests,
        labels=labels,
        checker_summary=checker_summary,
        meta={"duration_scale": duration_scale, "seed": seed,
              "lp_cache": lp_cache, "fast_lane": fast_lane},
    )


def chaos_replay(
    duration_scale: float = 0.4,
    seed: int = 0,
    runs: int = 2,
    with_invariants: bool = True,
    lp_cache: bool = True,
    fast_lane: bool = True,
    plan: Optional[Any] = None,
) -> ReplayReport:
    """Replay the *faulted* fault-matrix scenario and diff digests.

    Same contract as :func:`fig6_replay`, but every run injects the fault
    plan (the canonical coordination partition when ``plan`` is None):
    failure detection, eviction, tree reconfiguration, conservative
    fallback, heal and rejoin must all land on identical event sequences —
    fault handling is part of the determinism envelope, not an exception
    to it.
    """
    from repro.experiments.faultmatrix import fault_matrix_scenario

    if runs < 2 and not with_invariants:
        raise ValueError("need at least two runs to compare digests")
    digests: List[str] = []
    labels: List[str] = []
    plan_digest = ""
    for i in range(max(1, runs)):
        sc, injector, _ = fault_matrix_scenario(
            duration_scale=duration_scale, seed=seed,
            lp_cache=lp_cache, fast_lane=fast_lane,
            check_invariants=False, plan=plan,
        )
        plan_digest = injector.plan.digest()
        digests.append(scenario_digest(sc))
        labels.append(f"run {i + 1}")
    checker_summary: Optional[Dict[str, int]] = None
    if with_invariants:
        sc, injector, _ = fault_matrix_scenario(
            duration_scale=duration_scale, seed=seed,
            lp_cache=lp_cache, fast_lane=fast_lane,
            check_invariants=True, plan=plan,
        )
        digests.append(scenario_digest(sc))
        labels.append("run +check")
        assert sc.invariants is not None
        checker_summary = sc.invariants.summary()
    return ReplayReport(
        scenario="faultmatrix",
        digests=digests,
        labels=labels,
        checker_summary=checker_summary,
        meta={"duration_scale": duration_scale, "seed": seed,
              "lp_cache": lp_cache, "fast_lane": fast_lane,
              "plan_digest": plan_digest},
    )


def l4_replay(
    figure: str = "fig9",
    duration_scale: float = 0.05,
    seed: int = 0,
    runs: int = 2,
    with_invariants: bool = True,
    lp_cache: bool = True,
    fast_lane: bool = True,
) -> ReplayReport:
    """Replay an L4 figure on the *fast* and *scalar* switch lanes and diff.

    Unlike :func:`fig6_replay` (same code path, repeated), this harness
    compares two different data-path implementations: the flow-record fast
    lane against the per-packet scalar path.  Each run's digest combines
    the full scenario digest with the daemon's per-window admitted-rate
    trace digest, so the report is IDENTICAL only when both lanes produce
    bit-identical observable behaviour — the PR's acceptance contract.
    """
    from repro.experiments.figures import fig9_scenario, fig10_scenario

    if figure == "fig9":
        build = fig9_scenario
    elif figure == "fig10":
        build = fig10_scenario
    else:
        raise ValueError(f"l4_replay supports fig9/fig10, not {figure!r}")
    digests: List[str] = []
    labels: List[str] = []
    adm_digests: Dict[str, str] = {}

    def one(l4_fast_lane: bool, check: bool, label: str) -> Any:
        sc, _ = build(
            duration_scale=duration_scale, seed=seed, lp_cache=lp_cache,
            fast_lane=fast_lane, l4_fast_lane=l4_fast_lane,
            check_invariants=check,
        )
        daemon = sc.l4_daemons["SW"]
        full = scenario_digest(sc)
        adm = l4_admission_digest(daemon)
        adm_digests[label] = adm
        combined = hashlib.sha256()
        combined.update(full.encode("ascii"))
        combined.update(adm.encode("ascii"))
        digests.append(combined.hexdigest())
        labels.append(label)
        return sc

    for i in range(max(1, runs - 1)):
        one(True, False, f"fast {i + 1}")
    one(False, False, "scalar")
    checker_summary: Optional[Dict[str, int]] = None
    if with_invariants:
        sc = one(True, True, "fast +check")
        assert sc.invariants is not None
        checker_summary = sc.invariants.summary()
    return ReplayReport(
        scenario=figure,
        digests=digests,
        labels=labels,
        checker_summary=checker_summary,
        meta={"duration_scale": duration_scale, "seed": seed,
              "lp_cache": lp_cache, "fast_lane": fast_lane,
              "admission_digests": dict(adm_digests)},
    )


def columnar_replay(
    figure: str = "fig6",
    duration_scale: float = 0.05,
    seed: int = 0,
    lp_cache: bool = True,
) -> ReplayReport:
    """Run one figure on all three lanes — scalar, slotted, columnar — and
    diff their combined digests.

    Every lane runs the *strict open-loop* variant of the scenario (retry
    pools off — the columnar lane's operating envelope), so the digests
    are comparable: each combines the full scenario digest with the
    per-window admitted/refused trace digests (L7 redirectors' admission
    meters for fig6, the L4 daemon's for fig9/fig10).  IDENTICAL means the
    columnar lane's bulk window advance reproduces both event lanes
    bit-for-bit — the PR 6 acceptance contract, extending the PR 2/5 ones.
    """
    from repro.experiments.figures import (
        fig6_scenario, fig9_scenario, fig10_scenario,
    )

    builders = {
        "fig6": fig6_scenario, "fig9": fig9_scenario, "fig10": fig10_scenario,
    }
    build = builders.get(figure)
    if build is None:
        raise ValueError(
            f"columnar_replay supports {sorted(builders)}, not {figure!r}"
        )
    digests: List[str] = []
    labels: List[str] = []
    adm_digests: Dict[str, str] = {}
    meta: Dict[str, Any] = {
        "duration_scale": duration_scale, "seed": seed, "lp_cache": lp_cache,
    }
    for lane in ("scalar", "slotted", "columnar"):
        sc, _ = build(
            duration_scale=duration_scale, seed=seed, lp_cache=lp_cache,
            check_invariants=False, lane=lane, strict_open_loop=True,
        )
        if lane == "columnar":
            meta["columnar_fallback"] = sc.lane_fallback
            meta["columnar_requests"] = (
                sc.columnar.requests if sc.columnar is not None else 0
            )
        combined = hashlib.sha256()
        combined.update(scenario_digest(sc).encode("ascii"))
        for name in sorted(sc.l7_redirectors):
            adm = l7_admission_digest(sc.l7_redirectors[name])
            adm_digests[f"{lane}:{name}"] = adm
            combined.update(adm.encode("ascii"))
        for name in sorted(sc.l4_daemons):
            adm = l4_admission_digest(sc.l4_daemons[name])
            adm_digests[f"{lane}:{name}"] = adm
            combined.update(adm.encode("ascii"))
        digests.append(combined.hexdigest())
        labels.append(lane)
    meta["admission_digests"] = adm_digests
    return ReplayReport(
        scenario=f"{figure}+columnar",
        digests=digests,
        labels=labels,
        meta=meta,
    )


def sharded_replay(
    figure: str = "fig6",
    duration_scale: float = 0.05,
    seed: int = 0,
    shards: int = 4,
    replicas: int = 4,
    lp_cache: bool = True,
    with_crashes: bool = False,
    transport: str = "shm",
) -> ReplayReport:
    """Run one sharded world with ``shards=1`` and ``shards=N`` and diff.

    The shard-parity contract (window-epoch barriers, docs/DETERMINISM.md):
    partitioning a world's clusters across worker processes must not move
    a single bit of any observable series, because each cluster owns its
    RNG substream and state crosses shards only as window-boundary demand
    aggregates folded in a shard-independent combining-tree order.  The
    digest deliberately excludes the shard count, so digest equality *is*
    the proof.  ``replicas`` stamps out enough clusters that every worker
    owns several (the interesting regime for packing bugs).

    The shards=N comparison runs under *both* data planes — the pickled
    pipe transport and the shared-memory seqlock plane — so one report
    also proves the transport is digest-invisible (both planes carry the
    same float64 values bit-exactly; see docs/DETERMINISM.md).  Crash
    runs use the selected ``transport``.

    ``with_crashes`` extends the contract to recovery: a third run kills
    workers at two distinct epochs (clean-exception path at one, SIGKILL
    at another) and must respawn from checkpoints to the same digest; a
    fourth run exhausts a one-restart budget so the dead shard's clusters
    are *reassigned* to survivors — it must also reach the same digest,
    and a run that never triggered reassignment is marked divergent (the
    harness would otherwise silently stop testing degradation).
    """
    from repro.experiments.sharded import run_sharded

    if shards < 2:
        raise ValueError("shard parity needs shards >= 2 to compare against 1")
    if transport not in ("pipe", "shm"):
        raise ValueError(f"transport must be pipe or shm, not {transport!r}")
    digests: List[str] = []
    labels: List[str] = []
    meta: Dict[str, Any] = {
        "duration_scale": duration_scale, "seed": seed,
        "replicas": replicas, "lp_cache": lp_cache,
        "transport": transport,
    }
    final_ckpt = ""
    res = run_sharded(
        figure, duration_scale=duration_scale, seed=seed, shards=1,
        replicas=replicas, lp_cache=lp_cache, transport=transport,
    )
    digests.append(res.digest())
    labels.append("shards=1")
    meta["n_windows"] = res.n_windows
    meta["clusters"] = len(res.clusters)
    meta["lp_solves"] = res.lp_solves
    final_ckpt = res.final_checkpoint_digest
    bytes_per_epoch: Dict[str, int] = {}
    for plane in ("pipe", "shm"):
        res = run_sharded(
            figure, duration_scale=duration_scale, seed=seed, shards=shards,
            replicas=replicas, lp_cache=lp_cache, transport=plane,
        )
        digests.append(res.digest())
        labels.append(f"shards={shards} {res.data_plane}")
        bytes_per_epoch[res.data_plane] = res.bytes_per_epoch
        if plane == "shm" and res.transport_fallback is not None:
            meta["transport_fallback"] = res.transport_fallback
    meta["bytes_per_epoch"] = bytes_per_epoch
    if with_crashes:
        from repro.coordination.checkpoint import RecoveryPolicy

        n = int(meta["n_windows"])
        e1 = max(1, n // 3)
        e2 = max(e1 + 1, (2 * n) // 3)
        crash_faults = [f"0:{e1}:exc", f"{min(1, shards - 1)}:{e2}:kill"]
        res = run_sharded(
            figure, duration_scale=duration_scale, seed=seed, shards=shards,
            replicas=replicas, lp_cache=lp_cache, faults=crash_faults,
            transport=transport,
        )
        digests.append(res.digest())
        labels.append(f"shards={shards}+crashes")
        meta["crash_faults"] = list(crash_faults)
        meta["crash_restarts"] = len(res.restarts)
        meta["crash_final_checkpoint_match"] = (
            res.final_checkpoint_digest == final_ckpt
        )
        # Budget exhaustion: two kills of shard 0 against a single-restart
        # budget forces the second death down the reassignment path.
        res = run_sharded(
            figure, duration_scale=duration_scale, seed=seed, shards=shards,
            replicas=replicas, lp_cache=lp_cache,
            faults=[f"0:{e1}:kill", f"0:{e2}:kill"],
            recovery=RecoveryPolicy(max_restarts=1, backoff_base=0.01),
            transport=transport,
        )
        d = res.digest()
        if not res.reassignments:
            d += ":reassignment-not-triggered"
        digests.append(d)
        labels.append(f"shards={shards}+reassign")
        meta["reassignments"] = [
            {"epoch": ev.epoch, "shard": ev.shard,
             "assignments": dict(ev.assignments)}
            for ev in res.reassignments
        ]
    return ReplayReport(
        scenario=f"{figure}+sharded",
        digests=digests,
        labels=labels,
        meta=meta,
    )
