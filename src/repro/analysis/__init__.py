"""Static analysis and runtime invariant tooling (``simlint``).

The reproduction's headline claim — bit-identical figures across
``--jobs``, ``--lp-cache`` and ``--fast-lane`` — rests on two contracts
that nothing in the test suite enforced directly:

- **Determinism**: no wall-clock reads, no unseeded randomness, no
  iteration order drawn from unordered collections, total-order heap
  entries, no shared mutable state across parallel workers.
- **Conservation**: tickets allocated never exceed the issuing currency,
  window quotas never exceed capacity, servers never complete more work
  than their rate allows, NAT rewrite entries match open conntrack flows,
  LP solutions are feasible.

This package enforces both:

- :mod:`repro.analysis.simlint` — an AST-based lint pass (rules
  SIM001–SIM005) run as ``repro lint`` and in CI;
- :mod:`repro.analysis.invariants` — an :class:`InvariantChecker` runtime
  layer enabled via ``Scenario(check_invariants=True)`` or ``REPRO_CHECK=1``
  (a no-op costing one ``is None`` test per completion when off);
- :mod:`repro.analysis.replay` — a replay-determinism harness that runs a
  scenario twice (optionally a third time with invariants on) and compares
  trace digests, run as ``repro check`` and in CI.

See ``docs/DETERMINISM.md`` for the full rule catalogue and rationale.
"""

from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    check_enabled,
)
from repro.analysis.replay import ReplayReport, fig6_replay, scenario_digest
from repro.analysis.simlint import RULES, Violation, lint_paths, lint_source

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "check_enabled",
    "ReplayReport",
    "fig6_replay",
    "scenario_digest",
    "RULES",
    "Violation",
    "lint_paths",
    "lint_source",
]
