"""Runtime conservation invariants (``repro check`` / ``REPRO_CHECK=1``).

The figures' tolerances check that enforcement *looks* right; this layer
checks that the accounting underneath cannot be wrong, window by window:

- **Tickets**: mandatory tickets allocated out of a currency never exceed
  the currency issued (Σ lb ≤ 1 per grantor; the paper's "a principal
  cannot guarantee more than 100% of its resources").
- **Quotas**: a window allocation hands out non-negative quotas, never
  more than a principal's local demand, and never more than the community
  capacity for the window.
- **Service**: a server completes at most ``capacity × window`` request
  units per window (plus one in-flight request of carry-over slack).
- **Flows**: NAT rewrite entries stay in bijection with open conntrack
  flows (installed together, removed together, expired together).
- **LP**: every accepted LP solution is primal-feasible within ``eps``.

Checks are attached by :class:`repro.experiments.harness.Scenario` when
``check_invariants=True`` (or the ``REPRO_CHECK`` environment variable is
set) and cost nothing when off: the only residue on the hot path is one
``is None`` test per completion.  Checker callbacks are strictly
read-only, so an instrumented run produces bit-identical traces to an
unchecked one — ``repro check`` asserts exactly that.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "ENV_VAR",
    "InvariantViolation",
    "InvariantChecker",
    "check_enabled",
]

ENV_VAR = "REPRO_CHECK"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})


def check_enabled(default: bool = False) -> bool:
    """Resolve the ``REPRO_CHECK`` environment toggle."""
    raw = os.environ.get(ENV_VAR, "")
    if not raw:
        return default
    return raw.strip().lower() in _TRUE_VALUES


class InvariantViolation(AssertionError):
    """A conservation invariant failed; the message names the ledger."""


class _ServerWatch:
    """Per-server completion accounting between window ticks."""

    __slots__ = ("units", "max_cost", "capacity_high")

    def __init__(self, capacity: float) -> None:
        self.units = 0.0
        self.max_cost = 0.0
        self.capacity_high = capacity


class InvariantChecker:
    """Asserts per-window conservation; see the module docstring.

    ``strict=True`` (the default) raises :class:`InvariantViolation` at the
    first failure; ``strict=False`` records failures in :attr:`violations`
    for post-run inspection (used by the fixture tests).
    """

    def __init__(self, eps: float = 1e-6, strict: bool = True) -> None:
        if eps < 0:
            raise ValueError("eps must be >= 0")
        self.eps = float(eps)
        self.strict = bool(strict)
        self.checks_run = 0
        self.violations: List[str] = []
        self._server_watch: Dict[str, _ServerWatch] = {}

    # -- outcome plumbing --------------------------------------------------

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise InvariantViolation(message)

    def _passed(self) -> None:
        self.checks_run += 1

    # -- ticket conservation ----------------------------------------------

    def check_ticket_conservation(self, graph: Any) -> None:
        """Σ tickets allocated ≤ currency issued, per principal.

        Accepts an :class:`repro.core.agreements.AgreementGraph` (lb sums
        per grantor) or an iterable of :class:`repro.core.tickets.Currency`
        (mandatory issued fractions).  Construction-time guards enforce the
        same bound; this re-checks the live ledgers so state mutated behind
        the constructors (deserialisation, dynamic renegotiation, bugs)
        cannot slip through.
        """
        tol = self.eps
        if hasattr(graph, "agreements") and hasattr(graph, "names"):
            granted: Dict[str, float] = {}
            for ag in graph.agreements():
                if not (-tol <= ag.lb <= ag.ub <= 1.0 + tol):
                    self._fail(
                        f"agreement {ag}: bounds outside 0 <= lb <= ub <= 1"
                    )
                    return
                granted[ag.grantor] = granted.get(ag.grantor, 0.0) + ag.lb
            for name in graph.names:
                total = granted.get(name, 0.0)
                if total > 1.0 + tol:
                    self._fail(
                        f"principal {name!r} granted {total:.6f} > 1.0 of "
                        "its currency in mandatory tickets"
                    )
                    return
        else:
            for currency in graph:
                for ticket in currency.issued:
                    if ticket.amount < -tol:
                        self._fail(
                            f"currency {currency.owner!r}: negative ticket "
                            f"amount {ticket.amount}"
                        )
                        return
                frac = currency.mandatory_issued_fraction()
                if frac > 1.0 + tol:
                    self._fail(
                        f"currency {currency.owner!r}: mandatory issuance "
                        f"{frac:.6f} exceeds the full currency"
                    )
                    return
        self._passed()

    # -- window allocations ------------------------------------------------

    def check_allocation(
        self,
        quotas: Mapping[str, float],
        local: Mapping[str, float],
        capacity_per_window: float,
        node: str = "?",
    ) -> None:
        """One window's admission quotas at one redirector.

        Quotas are denominated in requests/window against this node's
        ``local`` demand; the community cannot admit more than its total
        capacity for the window.
        """
        tol = self.eps * max(1.0, capacity_per_window)
        total = 0.0
        for principal, quota in quotas.items():
            if quota < -tol:
                self._fail(f"{node}: negative quota {quota} for {principal!r}")
                return
            if quota > local.get(principal, 0.0) + tol + 1e-9:
                self._fail(
                    f"{node}: quota {quota:.6f} for {principal!r} exceeds "
                    f"local demand {local.get(principal, 0.0):.6f}"
                )
                return
            total += quota
        if capacity_per_window > 0 and total > capacity_per_window + tol:
            self._fail(
                f"{node}: window quotas sum to {total:.6f} > community "
                f"capacity {capacity_per_window:.6f} requests/window"
            )
            return
        self._passed()

    def watch_allocator(
        self, name: str, allocator: Any, capacity_per_window: float
    ) -> None:
        """Wrap ``allocator.compute`` so every window's output is checked."""
        inner = allocator.compute

        def checked(local: Mapping[str, float], now: Optional[float] = None) -> Any:
            alloc = inner(local, now=now)
            self.check_allocation(
                alloc.quotas, local, capacity_per_window, node=name
            )
            return alloc

        allocator.compute = checked

    # -- server admission ---------------------------------------------------

    def observe_completion(self, server_name: str, cost: float) -> None:
        watch = self._server_watch.get(server_name)
        if watch is not None:
            watch.units += cost
            if cost > watch.max_cost:
                watch.max_cost = cost

    def watch_server(self, sim: Any, server: Any, window: float) -> None:
        """Check ``completed units ≤ capacity × window`` every window.

        Chains onto ``server.on_complete`` (read-only bookkeeping) and
        registers a periodic tick.  The bound carries one ``max_cost`` of
        slack: a request finishing just inside a window may have occupied
        the server since the previous one.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        watch = _ServerWatch(server.capacity)
        self._server_watch[server.name] = watch
        inner = server.on_complete

        def hooked(request: Any, srv: Any) -> None:
            self.observe_completion(srv.name, request.cost)
            if inner is not None:
                inner(request, srv)

        server.on_complete = hooked
        sim.every(window, self._server_window_tick, server, window,
                  start=window)

    def _server_window_tick(self, server: Any, window: float) -> None:
        watch = self._server_watch[server.name]
        # set_capacity may change mid-window; bound by the highest rate seen.
        if server.capacity > watch.capacity_high:
            watch.capacity_high = server.capacity
        bound = watch.capacity_high * window + watch.max_cost
        if watch.units > bound * (1.0 + self.eps) + self.eps:
            self._fail(
                f"server {server.name!r} completed {watch.units:.6f} "
                f"request-units in one {window}s window; capacity allows "
                f"{bound:.6f}"
            )
            return
        watch.units = 0.0
        watch.capacity_high = server.capacity
        self._passed()

    # -- NAT / conntrack ----------------------------------------------------

    def check_nat_conntrack(self, switch: Any) -> None:
        """NAT rewrite entries must equal open conntrack flows."""
        nat_entries = len(switch.nat)
        flows = len(switch.conntrack)
        if nat_entries != flows:
            self._fail(
                f"switch {switch.name!r}: {nat_entries} NAT entries vs "
                f"{flows} open conntrack flows (install/remove/expire "
                "must keep them in bijection)"
            )
            return
        self._passed()

    def watch_switch(self, sim: Any, switch: Any, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        sim.every(window, self.check_nat_conntrack, switch, start=window)

    # -- LP feasibility ------------------------------------------------------

    def check_lp_solution(self, model: Any, solution: Any) -> None:
        """Primal feasibility of an accepted solution within ``eps``.

        Non-optimal statuses pass through untouched — infeasibility is a
        legitimate solver outcome the schedulers handle; this check guards
        against *claimed-optimal* points that violate their own rows.
        """
        if not getattr(solution, "optimal", False) or solution.x is None:
            self._passed()
            return
        import numpy as np

        _c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
        x = np.asarray(solution.x, dtype=float)
        scale = max(
            1.0,
            float(np.max(np.abs(b_ub))) if b_ub.size else 1.0,
            float(np.max(np.abs(b_eq))) if b_eq.size else 1.0,
        )
        tol = max(self.eps, 1e-7) * scale
        if A_ub.size:
            slack = A_ub @ x - b_ub
            worst = float(np.max(slack))
            if worst > tol:
                self._fail(
                    f"LP {model.name!r}: inequality row violated by "
                    f"{worst:.3e} (> {tol:.1e})"
                )
                return
        if A_eq.size:
            gap = float(np.max(np.abs(A_eq @ x - b_eq)))
            if gap > tol:
                self._fail(
                    f"LP {model.name!r}: equality row violated by "
                    f"{gap:.3e} (> {tol:.1e})"
                )
                return
        for i, (lb, ub) in enumerate(bounds):
            if x[i] < lb - tol or x[i] > ub + tol:
                self._fail(
                    f"LP {model.name!r}: x[{i}]={x[i]:.6f} outside "
                    f"[{lb}, {ub}]"
                )
                return
        self._passed()

    # -- post-fault liveness -------------------------------------------------

    def arm_liveness(
        self,
        sim: Any,
        meter: Any,
        quotas: Mapping[str, float],
        heal_at: float,
        k_windows: int,
        window: float,
        eps: float = 0.15,
        span: Optional[float] = None,
        abs_floor: float = 5.0,
    ) -> None:
        """Recovery ledger: after the last heal at ``heal_at``, every
        principal's admitted rate must return to within ``eps`` (relative,
        with ``abs_floor`` req/s of absolute slack) of its no-fault quota
        within ``k_windows`` scheduling windows — the bounded-recovery
        guarantee the fault experiments assert.

        The check fires once, at ``heal_at + k_windows * window``, and
        measures the trailing ``span`` seconds of the rate meter (default:
        the last quarter of the convergence budget).  Read-only: it only
        reads meter bins, so traces stay bit-identical with the checker on
        or off.  The deadline must fall inside the run, or the check never
        fires.
        """
        if k_windows < 1 or window <= 0:
            raise ValueError("need k_windows >= 1 and window > 0")
        deadline = heal_at + k_windows * window
        if span is None:
            span = max(window, 0.25 * k_windows * window)
        sim.schedule_at(
            deadline, self._liveness_check,
            meter, dict(quotas), deadline, float(span), float(eps),
            float(abs_floor),
        )

    def _liveness_check(
        self,
        meter: Any,
        quotas: Dict[str, float],
        deadline: float,
        span: float,
        eps: float,
        abs_floor: float,
    ) -> None:
        import numpy as np

        for principal in sorted(quotas):
            want = quotas[principal]
            times, rates = meter.series(principal)
            times = np.asarray(times, dtype=float)
            rates = np.asarray(rates, dtype=float)
            mask = (times >= deadline - span) & (times <= deadline)
            got = float(rates[mask].mean()) if mask.any() else 0.0
            tol = max(eps * want, abs_floor)
            if abs(got - want) > tol:
                self._fail(
                    f"liveness: {principal!r} at {got:.1f} req/s "
                    f"{deadline - span:.1f}-{deadline:.1f}s, expected "
                    f"{want:.1f}±{tol:.1f} within {span:.1f}s of the "
                    "recovery deadline"
                )
                return
        self._passed()

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        return {
            "checks_run": self.checks_run,
            "violations": len(self.violations),
        }
