"""Layer-7 HTTP redirection (paper §4.1).

Two implementations of the same strategy:

- :mod:`repro.l7.redirector` — the redirector inside the discrete-event
  simulation, used by the figure-reproduction experiments.  It implements
  the paper's *implicit queuing* (per-window quotas; over-quota requests
  get a self-redirect so the client retries) and, for the ablation, the
  original *explicit queuing* whose request bunching the paper §4.1
  describes.
- :mod:`repro.l7.asyncio_redirector` / :mod:`~repro.l7.asyncio_origin` /
  :mod:`~repro.l7.asyncio_client` — a real asyncio HTTP/1.1 stack runnable
  on localhost: origin servers, a redirecting front end issuing 302s, and
  a rate-limited load generator that follows redirects.

:mod:`repro.l7.http` is the minimal HTTP/1.1 codec shared by both.
"""

from repro.l7.http import HttpRequest, HttpResponse, parse_request, parse_response
from repro.l7.redirector import L7Redirector

__all__ = [
    "L7Redirector",
    "HttpRequest",
    "HttpResponse",
    "parse_request",
    "parse_response",
]
