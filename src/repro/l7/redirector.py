"""Simulated Layer-7 HTTP redirector (paper §4.1).

Every scheduling window (100 ms in all experiments) the redirector:

1. finalises its local per-principal demand estimate (arrivals in the
   previous window, lightly smoothed);
2. delegates to :class:`repro.scheduling.allocator.WindowAllocator`, which
   forms a consistent global demand estimate from the latest combining-tree
   broadcast (or the conservative 1/R fallback when none has arrived),
   solves the window LP, and scales the result to this node's local share;
3. installs the result as per-principal admission quotas and per-server
   forwarding weights.

Admission is the paper's *implicit queuing*: requests within quota are
redirected (HTTP 302) to a server chosen by smooth weighted round-robin
over the LP's per-server split; requests beyond quota get a self-redirect
(:class:`repro.cluster.client.Defer`) so the client retries.  The original
*explicit queuing* — hold requests and release a batch at the next window
boundary, whose bunching anomaly the paper §4.1 describes — is available
with ``queuing="explicit"`` for the ablation benchmark.

A third admission engine, ``queuing="credits"``, implements the
credit-based virtual-time alternative the paper's §6 says it found "more
suitable to our distributed context": instead of a per-window counter, each
principal accrues credits continuously at its allocated rate, which smooths
admission within the window (no boundary discontinuities) while tracking
the same LP allocation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.cluster.client import Decision, Defer, Drop, Held, Redirect
from repro.cluster.health import BackendHealthChecker
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.coordination.protocol import AggregationNode
from repro.core.access import AccessLevels
from repro.scheduling.allocator import Allocation, WindowAllocator
from repro.scheduling.credits import CreditScheduler
from repro.scheduling.queueing import ImplicitQuota, PrincipalQueues
from repro.scheduling.window import WindowConfig
from repro.scheduling.wrr import SmoothWeightedRoundRobin
from repro.sim.engine import Simulator
from repro.sim.monitor import RateMeter

__all__ = ["L7Redirector"]


class L7Redirector:
    """One Layer-7 redirector node.

    Args:
        sim: simulation kernel.
        name: redirector id (also its combining-tree node id).
        access: per-second access levels for the agreement graph.
        servers: servers per owning principal (the community LP's
            ``x_ik`` sends principal i's requests to owner k's servers).
        window: scheduling window config.
        mode: ``"community"`` or ``"provider"``.
        prices: provider mode only — price per extra request per customer.
        n_redirectors: total redirectors (for the conservative fallback).
        queuing: ``"implicit"`` (default, what the paper shipped) or
            ``"explicit"`` (windowed hold-and-release, for the ablation).
        smoothing: EWMA weight on the newest window's arrivals.
        defer_delay: extra delay hint attached to self-redirects.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        access: AccessLevels,
        servers: Mapping[str, Union[Server, List[Server]]],
        window: WindowConfig = WindowConfig(),
        mode: str = "community",
        prices: Optional[Mapping[str, float]] = None,
        capacity: Optional[float] = None,
        n_redirectors: int = 1,
        backend: str = "auto",
        queuing: str = "implicit",
        smoothing: float = 0.7,
        defer_delay: float = 0.0,
        max_held: int = 0,
        lp_cache: bool = True,
        stale_after: Optional[float] = None,
        health: Optional[BackendHealthChecker] = None,
    ):
        if queuing not in ("implicit", "explicit", "credits"):
            raise ValueError(f"unknown queuing {queuing!r}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.sim = sim
        self.name = name
        self.access = access
        self.window = window
        self.queuing = queuing
        self.smoothing = float(smoothing)
        self.defer_delay = float(defer_delay)
        # Fault model: route only to health-checked backends; degrade the
        # allocator to 1/R when the global view goes stale (partition).
        # ``alive`` is the redirector process itself — down means clients
        # get no answer (Drop; their retry loop models failover).
        self.health = health
        self.alive = True

        self.servers: Dict[str, List[Server]] = {}
        for owner, s in servers.items():
            self.servers[owner] = list(s) if isinstance(s, (list, tuple)) else [s]

        self.allocator = WindowAllocator(
            access,
            window=window,
            mode=mode,
            prices=prices,
            capacity=capacity,
            n_redirectors=n_redirectors,
            backend=backend,
            server_capacities={
                owner: sum(s.capacity for s in pool)
                for owner, pool in self.servers.items()
            },
            lp_cache=lp_cache,
            stale_after=stale_after,
        )
        self.principals: Tuple[str, ...] = access.names
        self._w = access.per_window(window.length)

        self.quota = ImplicitQuota(self.principals)
        self.credits = CreditScheduler({p: 0.0 for p in self.principals})
        self.queues = PrincipalQueues(self.principals, max_depth=max_held)
        self._held_done: Dict[int, Optional[Callable[[Request], None]]] = {}
        self._wrr: Dict[str, SmoothWeightedRoundRobin] = {
            p: SmoothWeightedRoundRobin() for p in self.principals
        }
        self._server_wrr: Dict[str, SmoothWeightedRoundRobin] = {}

        self._arrivals: Dict[str, float] = {p: 0.0 for p in self.principals}
        self.demand_estimate: Dict[str, float] = {p: 0.0 for p in self.principals}

        # Telemetry
        self.admitted: Dict[str, int] = {p: 0 for p in self.principals}
        self.self_redirects: Dict[str, int] = {p: 0 for p in self.principals}
        self.last_allocation: Optional[Allocation] = None
        # Per-window admitted/refused traces, binned at window width — the
        # L7 analogue of L4Daemon.admission_meter, and the series the
        # three-lane parity digests hash.  Window counts are deltas of the
        # cumulative telemetry, snapshotted at each boundary *before* the
        # new window's allocation work, so they are lane-neutral (the
        # columnar pump fires first at every boundary, leaving exactly the
        # state a scalar run would show this driver).
        self.admission_meter = RateMeter(bin_width=window.length)
        self._last_admitted: Dict[str, int] = dict(self.admitted)
        self._last_refused: Dict[str, int] = dict(self.self_redirects)

        sim.process(self._window_driver(), name=f"l7[{name}]")

    # -- coordination ------------------------------------------------------

    def attach(self, node: AggregationNode) -> None:
        """Attach the combining-tree protocol node for this redirector."""
        self.allocator.attach(node)

    def set_access(self, access: AccessLevels) -> None:
        """Adopt renegotiated access levels from the next window on."""
        self.access = access
        self._w = access.per_window(self.window.length)
        self.allocator.set_access(access)

    @property
    def used_fallback_windows(self) -> int:
        return self.allocator.fallback_windows

    # -- fault model -------------------------------------------------------

    def crash(self) -> None:
        """The redirector process dies: clients get no response."""
        self.alive = False

    def restart(self) -> None:
        """Come back with in-memory state intact (quota counters are
        per-window and rebuilt at the next boundary anyway)."""
        self.alive = True

    def local_demand(self) -> Dict[str, float]:
        """Supplier callback for the aggregation protocol: per-principal
        demand in requests per window — the smoothed arrival estimate under
        implicit queuing, actual queue lengths under explicit queuing (the
        paper's 'queue length information')."""
        if self.queuing == "explicit":
            return {p: float(v) for p, v in self.queues.lengths().items()}
        return dict(self.demand_estimate)

    # -- window machinery ----------------------------------------------------

    def _window_driver(self):
        while True:
            yield self.window.length
            self._end_window()

    def _end_window(self) -> None:
        self._account_window()
        alpha = self.smoothing
        for p in self.principals:
            self.demand_estimate[p] = (
                alpha * self._arrivals[p] + (1.0 - alpha) * self.demand_estimate[p]
            )
            self._arrivals[p] = 0.0
        alloc = self.allocator.compute(self.local_demand(), now=self.sim.now)
        self.last_allocation = alloc
        self._install(alloc)
        if self.queuing == "explicit":
            self._release_held(alloc)

    def _install(self, alloc: Allocation) -> None:
        if self.queuing == "credits":
            for p, q in alloc.quotas.items():
                self.credits.set_rate(p, q / self.window.length, self.sim.now)
        else:
            self.quota.new_window(alloc.quotas)
        for p, w in alloc.weights.items():
            # Keep only owners that actually have servers attached here.
            self._wrr[p].set_weights(
                {owner: v for owner, v in w.items() if owner in self.servers}
            )

    def _account_window(self) -> None:
        t_mid = self.sim.now - self.window.length / 2.0
        for p in self.principals:
            adm = self.admitted[p]
            ref = self.self_redirects[p]
            d_adm = adm - self._last_admitted[p]
            d_ref = ref - self._last_refused[p]
            self._last_admitted[p] = adm
            self._last_refused[p] = ref
            # Zero-weight records keep every window in the series: the
            # trace's shape is part of the parity digest.
            self.admission_meter.record(f"admitted:{p}", t_mid, weight=d_adm)
            self.admission_meter.record(f"refused:{p}", t_mid, weight=d_ref)

    def admitted_series(self, principal: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-window admitted counts as (window-midpoint times, rates)."""
        return self.admission_meter.series(f"admitted:{principal}")

    def refused_series(self, principal: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-window self-redirect counts, same shape as admitted."""
        return self.admission_meter.series(f"refused:{principal}")

    # -- request path -------------------------------------------------------------

    def handle(self, request: Request, done: Optional[Callable[[Request], None]] = None) -> Decision:
        """Admission decision for one request (the client-facing API)."""
        if not self.alive:
            return Drop()
        p = request.principal
        if p not in self._arrivals:
            return Drop()
        self._arrivals[p] += request.cost
        if self.queuing == "explicit":
            if not self.queues.enqueue(p, request, self.sim.now):
                return Drop()
            self._held_done[request.request_id] = done
            return Held()
        if self.queuing == "credits":
            admitted = self.credits.try_admit(p, self.sim.now, cost=request.cost)
        else:
            admitted = self.quota.try_admit(p, cost=request.cost)
        if admitted:
            server = self._pick_server(p)
            if server is not None:
                self.admitted[p] += 1
                return Redirect(server)
            self.quota.rejected[p] += 1  # no usable server this window
        self.self_redirects[p] += 1
        return Defer(self.defer_delay)

    def _pick_server(self, principal: str) -> Optional[Server]:
        owner = self._wrr[principal].next()
        if owner is None:
            # No LP weights yet (e.g. first window): fall back to any owner
            # this principal holds a mandatory entitlement on.
            i = self.access.index(principal)
            owners = [
                k for k in self.principals
                if k in self.servers and self._w.MI[i, self.access.index(k)] > 1e-12
            ]
            if not owners:
                return None
            owner = owners[0]
        server = self._pool_pick(owner)
        if server is not None or self.health is None:
            return server
        # The chosen owner's whole pool is out of rotation: fail over to
        # any owner with healthy capacity, in attachment order.
        for other in self.servers:
            if other != owner:
                server = self._pool_pick(other)
                if server is not None:
                    return server
        return None

    def _pool_pick(self, owner: str) -> Optional[Server]:
        """Pick within one owner's pool, honouring backend health."""
        pool = self.servers.get(owner)
        if not pool:
            return None
        if self.health is not None:
            healthy = [s for s in pool if self.health.is_healthy(s.name)]
            if not healthy:
                return None
            if len(healthy) == 1:
                return healthy[0]
        elif len(pool) == 1:
            return pool[0]
        wrr = self._server_wrr.get(owner)
        if wrr is None:
            wrr = SmoothWeightedRoundRobin({s.name: s.capacity for s in pool})
            self._server_wrr[owner] = wrr
        # The smooth-WRR state spans the full pool so weights stay stable
        # across outages; unhealthy picks are skipped (bounded scan).
        for _ in range(len(pool)):
            chosen = wrr.next()
            server = next(s for s in pool if s.name == chosen)
            if self.health is None or self.health.is_healthy(server.name):
                return server
        return None

    # -- explicit queuing (ablation) --------------------------------------------------

    def _release_held(self, alloc: Allocation) -> None:
        """Window boundary: release each principal's quota from its queue
        in one burst — reproducing the bunching the paper observed."""
        for p in self.principals:
            budget = alloc.quotas.get(p, 0.0)
            count = int(budget + 0.5)
            for request, _enq_t in self.queues.dequeue_upto(p, count):
                server = self._pick_server(p)
                done = self._held_done.pop(request.request_id, None)
                if server is None:
                    continue
                self.admitted[p] += 1
                server.submit(request, done=done)

    # -- introspection ------------------------------------------------------------------

    def queue_lengths(self) -> Dict[str, int]:
        return self.queues.lengths()
