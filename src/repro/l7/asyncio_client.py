"""Real asyncio load generator (the WebBench stand-in for the asyncio stack).

Issues HTTP requests for one principal at a bounded rate, follows 302
redirects (including self-redirects back to the redirector, after the
advertised ``Retry-After``), and counts completions per second.
"""

from __future__ import annotations

import asyncio
import time  # real-network stack: wall clock is the actual clock (SIM001 suppressed per use)
from typing import Dict, List, Optional, Tuple

from repro.l7.http import HttpError, HttpRequest, parse_response

__all__ = ["AsyncLoadGenerator", "fetch_once"]


async def fetch_once(
    url_host: str, url_port: int, path: str, max_redirects: int = 8,
    retry_cap: float = 1.0,
) -> Tuple[int, str]:
    """GET with redirect-following; returns (status, served-by header)."""
    host, port = url_host, url_port
    for _ in range(max_redirects):
        reader, writer = await asyncio.open_connection(host, port)
        req = HttpRequest(method="GET", path=path, headers={"Host": f"{host}:{port}"})
        writer.write(req.encode())
        await writer.drain()
        raw = await reader.read(256 * 1024)
        writer.close()
        try:
            resp, _ = parse_response(raw)
        except HttpError:
            return -1, ""
        if resp.status != 302:
            return resp.status, resp.header("X-Served-By", "") or ""
        location = resp.header("Location", "") or ""
        retry_after = resp.header("Retry-After")
        if retry_after:
            await asyncio.sleep(min(float(retry_after), retry_cap))
        # http://host:port/path
        rest = location.split("//", 1)[1]
        hostport, _, path = rest.partition("/")
        path = "/" + path
        host, _, port_s = hostport.partition(":")
        port = int(port_s or 80)
    return -2, ""  # redirect loop exceeded


class AsyncLoadGenerator:
    """Rate-bounded concurrent load for one principal."""

    def __init__(
        self,
        principal: str,
        redirector_addr: Tuple[str, int],
        rate: float,
        concurrency: int = 32,
        path_suffix: str = "page",
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.principal = principal
        self.addr = redirector_addr
        self.rate = float(rate)
        self.concurrency = int(concurrency)
        self.path = f"/svc/{principal}/{path_suffix}"
        self.completed = 0
        self.errors = 0
        self.completion_times: List[float] = []
        self._sem = asyncio.Semaphore(self.concurrency)
        self._tasks: List[asyncio.Task] = []

    async def run(self, duration: float) -> Dict[str, float]:
        """Generate load for ``duration`` seconds; returns summary stats."""
        start = time.monotonic()  # simlint: disable=SIM001
        spacing = 1.0 / self.rate
        next_t = start
        pending: List[asyncio.Task] = []
        while True:
            now = time.monotonic()  # simlint: disable=SIM001
            if now - start >= duration:
                break
            if now < next_t:
                await asyncio.sleep(next_t - now)
            next_t += spacing
            if self._sem.locked():
                continue  # concurrency-capped: skip this slot (client busy)
            pending.append(asyncio.create_task(self._one()))
            pending = [t for t in pending if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
            for t in pending:
                t.cancel()
        elapsed = time.monotonic() - start  # simlint: disable=SIM001
        return {
            "completed": self.completed,
            "errors": self.errors,
            "rate": self.completed / elapsed if elapsed > 0 else 0.0,
            "duration": elapsed,
        }

    async def _one(self) -> None:
        async with self._sem:
            try:
                status, _served_by = await fetch_once(*self.addr, self.path)
            except (ConnectionError, OSError):
                self.errors += 1
                return
            if status == 200:
                self.completed += 1
                self.completion_times.append(time.monotonic())  # simlint: disable=SIM001
            else:
                self.errors += 1
