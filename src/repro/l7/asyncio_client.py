"""Real asyncio load generator (the WebBench stand-in for the asyncio stack).

Issues HTTP requests for one principal at a bounded rate, follows 302
redirects (including self-redirects back to the redirector, after the
advertised ``Retry-After``), and counts completions per second.

Fault tolerance: every network exchange is bounded by a *connect* timeout
and a *read* timeout, and transient failures (refused connection, reset,
timeout) are retried a bounded number of times with exponential backoff
before the error is surfaced — a hung or crashed redirector costs a
client at most ``connect_timeout * (retries + 1)`` plus backoff sleeps,
never a stuck coroutine.
"""

from __future__ import annotations

import asyncio
import time  # real-network stack: wall clock is the actual clock (SIM001 suppressed per use)
from typing import Dict, List, Optional, Tuple

from repro.l7.http import HttpError, HttpRequest, parse_response

__all__ = ["AsyncLoadGenerator", "fetch_once"]


async def _exchange(
    host: str, port: int, path: str,
    connect_timeout: float, read_timeout: float,
) -> bytes:
    """One bounded request/response round trip."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), connect_timeout
    )
    try:
        req = HttpRequest(method="GET", path=path,
                          headers={"Host": f"{host}:{port}"})
        writer.write(req.encode())
        await writer.drain()
        return await asyncio.wait_for(reader.read(256 * 1024), read_timeout)
    finally:
        writer.close()


async def fetch_once(
    url_host: str, url_port: int, path: str, max_redirects: int = 8,
    retry_cap: float = 1.0,
    connect_timeout: float = 5.0,
    read_timeout: float = 10.0,
    retries: int = 2,
    retry_backoff: float = 0.1,
) -> Tuple[int, str]:
    """GET with redirect-following; returns (status, served-by header).

    Each hop gets at most ``retries`` retransmissions on connection
    errors or timeouts, with exponentially growing pauses starting at
    ``retry_backoff`` seconds; an exhausted hop re-raises the last error
    (``TimeoutError``/``ConnectionError``) to the caller.
    """
    host, port = url_host, url_port
    for _ in range(max_redirects):
        backoff = retry_backoff
        for attempt in range(retries + 1):
            try:
                raw = await _exchange(
                    host, port, path, connect_timeout, read_timeout
                )
                break
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if attempt == retries:
                    raise
                await asyncio.sleep(backoff)
                backoff *= 2.0
        try:
            resp, _ = parse_response(raw)
        except HttpError:
            return -1, ""
        if resp.status != 302:
            return resp.status, resp.header("X-Served-By", "") or ""
        location = resp.header("Location", "") or ""
        retry_after = resp.header("Retry-After")
        if retry_after:
            await asyncio.sleep(min(float(retry_after), retry_cap))
        # http://host:port/path
        rest = location.split("//", 1)[1]
        hostport, _, path = rest.partition("/")
        path = "/" + path
        host, _, port_s = hostport.partition(":")
        port = int(port_s or 80)
    return -2, ""  # redirect loop exceeded


class AsyncLoadGenerator:
    """Rate-bounded concurrent load for one principal."""

    def __init__(
        self,
        principal: str,
        redirector_addr: Tuple[str, int],
        rate: float,
        concurrency: int = 32,
        path_suffix: str = "page",
        connect_timeout: float = 5.0,
        read_timeout: float = 10.0,
        retries: int = 2,
        retry_backoff: float = 0.1,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.principal = principal
        self.addr = redirector_addr
        self.rate = float(rate)
        self.concurrency = int(concurrency)
        self.path = f"/svc/{principal}/{path_suffix}"
        self.connect_timeout = float(connect_timeout)
        self.read_timeout = float(read_timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.completed = 0
        self.errors = 0
        self.timeouts = 0
        self.completion_times: List[float] = []
        self._sem = asyncio.Semaphore(self.concurrency)
        self._tasks: List[asyncio.Task] = []

    async def run(self, duration: float) -> Dict[str, float]:
        """Generate load for ``duration`` seconds; returns summary stats."""
        start = time.monotonic()  # simlint: disable=SIM001
        spacing = 1.0 / self.rate
        next_t = start
        pending: List[asyncio.Task] = []
        while True:
            now = time.monotonic()  # simlint: disable=SIM001
            if now - start >= duration:
                break
            if now < next_t:
                await asyncio.sleep(next_t - now)
            next_t += spacing
            if self._sem.locked():
                continue  # concurrency-capped: skip this slot (client busy)
            pending.append(asyncio.create_task(self._one()))
            pending = [t for t in pending if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
            for t in pending:
                t.cancel()
        elapsed = time.monotonic() - start  # simlint: disable=SIM001
        return {
            "completed": self.completed,
            "errors": self.errors,
            "rate": self.completed / elapsed if elapsed > 0 else 0.0,
            "duration": elapsed,
        }

    async def _one(self) -> None:
        async with self._sem:
            try:
                status, _served_by = await fetch_once(
                    *self.addr, self.path,
                    connect_timeout=self.connect_timeout,
                    read_timeout=self.read_timeout,
                    retries=self.retries,
                    retry_backoff=self.retry_backoff,
                )
            except asyncio.TimeoutError:
                self.timeouts += 1
                self.errors += 1
                return
            except (ConnectionError, OSError):
                self.errors += 1
                return
            if status == 200:
                self.completed += 1
                self.completion_times.append(time.monotonic())  # simlint: disable=SIM001
            else:
                self.errors += 1
