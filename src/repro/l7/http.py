"""Minimal HTTP/1.1 codec.

Just enough of RFC 7230 for the redirector stack: request-line + headers
parsing, response serialisation, 302 redirects with ``Location``, and
``Content-Length`` bodies.  Used by the asyncio implementation on real
sockets and by protocol unit tests; the DES redirector exchanges request
objects directly and does not pay serialisation costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_request",
    "parse_response",
    "HttpError",
]

_CRLF = b"\r\n"
_MAX_HEADER_BYTES = 64 * 1024


class HttpError(ValueError):
    """Malformed HTTP message."""


def _canon(name: str) -> str:
    return "-".join(part.capitalize() for part in name.split("-"))


@dataclass
class HttpRequest:
    method: str
    path: str
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(_canon(name), default)

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.path} {self.version}".encode("ascii")]
        lines += [f"{k}: {v}".encode("latin-1") for k, v in headers.items()]
        return _CRLF.join(lines) + _CRLF * 2 + self.body


@dataclass
class HttpResponse:
    status: int
    reason: str = ""
    version: str = "HTTP/1.1"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    _REASONS = {
        200: "OK", 302: "Found", 400: "Bad Request", 404: "Not Found",
        429: "Too Many Requests", 500: "Internal Server Error",
        503: "Service Unavailable",
    }

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = self._REASONS.get(self.status, "Unknown")

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(_canon(name), default)

    @classmethod
    def redirect(cls, location: str, retry_after: Optional[float] = None) -> "HttpResponse":
        """An HTTP 302 pointing the client at ``location`` — the paper's
        redirection (to a server) and self-redirection (back to the
        redirector) both use this."""
        headers = {"Location": location, "Content-Length": "0"}
        if retry_after is not None:
            headers["Retry-After"] = f"{retry_after:g}"
        return cls(status=302, headers=headers)

    @classmethod
    def ok(cls, body: bytes, content_type: str = "text/html") -> "HttpResponse":
        return cls(
            status=200,
            headers={"Content-Length": str(len(body)), "Content-Type": content_type},
            body=body,
        )

    def encode(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"{self.version} {self.status} {self.reason}".encode("ascii")]
        lines += [f"{k}: {v}".encode("latin-1") for k, v in headers.items()]
        return _CRLF.join(lines) + _CRLF * 2 + self.body


def _split_head(data: bytes) -> Tuple[list, bytes]:
    if len(data) > _MAX_HEADER_BYTES and _CRLF * 2 not in data[:_MAX_HEADER_BYTES]:
        raise HttpError("header block too large")
    try:
        head, rest = data.split(_CRLF * 2, 1)
    except ValueError:
        raise HttpError("incomplete header block") from None
    return head.split(_CRLF), rest


def _parse_headers(lines: list) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for raw in lines:
        if not raw:
            continue
        try:
            name, value = raw.split(b":", 1)
        except ValueError:
            raise HttpError(f"malformed header line {raw!r}") from None
        headers[_canon(name.decode("latin-1").strip())] = value.decode("latin-1").strip()
    return headers


def parse_request(data: bytes) -> Tuple[HttpRequest, bytes]:
    """Parse one request from ``data``; returns (request, unconsumed bytes).

    Raises :class:`HttpError` if the message is malformed or incomplete.
    """
    lines, rest = _split_head(data)
    try:
        method, path, version = lines[0].decode("ascii").split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(f"malformed request line {lines[0]!r}") from None
    headers = _parse_headers(lines[1:])
    length = int(headers.get("Content-Length", "0") or "0")
    if len(rest) < length:
        raise HttpError("incomplete body")
    return (
        HttpRequest(method=method, path=path, version=version,
                    headers=headers, body=rest[:length]),
        rest[length:],
    )


def parse_response(data: bytes) -> Tuple[HttpResponse, bytes]:
    """Parse one response from ``data``; returns (response, unconsumed bytes)."""
    lines, rest = _split_head(data)
    try:
        version, status_s, *reason = lines[0].decode("ascii").split(" ")
        status = int(status_s)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(f"malformed status line {lines[0]!r}") from None
    headers = _parse_headers(lines[1:])
    length = int(headers.get("Content-Length", "0") or "0")
    if len(rest) < length:
        raise HttpError("incomplete body")
    return (
        HttpResponse(status=status, reason=" ".join(reason), version=version,
                     headers=headers, body=rest[:length]),
        rest[length:],
    )
