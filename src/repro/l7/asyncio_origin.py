"""Real asyncio origin (back-end) server.

A minimal HTTP/1.1 server with a *rate capacity*: requests are admitted to
service through a token bucket refilled at ``capacity`` requests/second
(the asyncio analogue of the paper's Apache box that measures out at
V = 320 req/s).  Responses carry a synthetic body.  Per-principal
completion counts are kept for the experiment harness.

URLs have the form ``/svc/<principal>/<anything>`` — "the request URL
signifies the service being requested" (§4).
"""

from __future__ import annotations

import asyncio
import time  # real-network stack: wall clock is the actual clock (SIM001 suppressed per use)
from typing import Dict, Optional, Tuple

from repro.l7.http import HttpError, HttpResponse, parse_request

__all__ = ["OriginServer", "principal_from_path"]


def principal_from_path(path: str) -> Optional[str]:
    """Extract the owning principal from a ``/svc/<principal>/...`` URL."""
    parts = path.split("?", 1)[0].strip("/").split("/")
    if len(parts) >= 2 and parts[0] == "svc" and parts[1]:
        return parts[1]
    return None


class _TokenBucket:
    """Async token bucket: ``acquire`` waits until a token is available."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._t = time.monotonic()  # simlint: disable=SIM001
        self._lock = asyncio.Lock()

    async def acquire(self) -> None:
        async with self._lock:  # FIFO service order
            now = time.monotonic()  # simlint: disable=SIM001
            self._tokens = min(self.burst, self._tokens + (now - self._t) * self.rate)
            self._t = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            wait = (1.0 - self._tokens) / self.rate
            self._tokens = 0.0
            await asyncio.sleep(wait)
            # The token that accrued during the sleep was consumed by this
            # caller; restart the refill clock so the next acquirer does
            # not count the sleep interval again.
            self._t = time.monotonic()  # simlint: disable=SIM001


class OriginServer:
    """One back-end server bound to ``host:port`` with a rate capacity."""

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: float = 320.0,
        body_bytes: int = 1024,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.capacity = float(capacity)
        self.body = b"x" * int(body_bytes)
        self.completed: Dict[str, int] = {}
        self.errors = 0
        self._bucket = _TokenBucket(capacity, burst=max(1.0, capacity * 0.05))
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self.address[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            data = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            request, _ = parse_request(data)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, HttpError):
            self.errors += 1
            writer.close()
            return
        await self._bucket.acquire()   # pay the service cost
        principal = principal_from_path(request.path) or "unknown"
        self.completed[principal] = self.completed.get(principal, 0) + 1
        resp = HttpResponse.ok(self.body)
        resp.headers["X-Served-By"] = self.name
        try:
            writer.write(resp.encode())
            await writer.drain()
        except ConnectionError:
            self.errors += 1
        finally:
            writer.close()

    def total_completed(self) -> int:
        return sum(self.completed.values())
