"""Real asyncio Layer-7 redirector.

The network twin of :class:`repro.l7.redirector.L7Redirector`: an HTTP/1.1
front end that, per the paper's shipped design, answers every request with
an HTTP 302 — either to a back-end server chosen by the current window's
allocation (admission) or to *itself* (self-redirection, the implicit
queue) when the principal's quota for this window is exhausted.

Coordination between redirectors uses a line-delimited-JSON combining
protocol over TCP (:class:`AsyncCombiner`): children push their local
demand vector every period; the root sums the latest vectors and pushes
the global aggregate back.  The allocator consumes it through the same
snapshot-consistent :class:`~repro.coordination.protocol.GlobalView`
interface the simulated protocol provides.
"""

from __future__ import annotations

import asyncio
import json
import time  # real-network stack: wall clock is the actual clock (SIM001 suppressed per use)
from typing import Dict, List, Mapping, Optional, Tuple

from repro.coordination.aggregation import VectorAggregate
from repro.coordination.protocol import GlobalView
from repro.core.access import AccessLevels
from repro.l7.asyncio_origin import principal_from_path
from repro.l7.http import HttpError, HttpResponse, parse_request
from repro.scheduling.allocator import WindowAllocator
from repro.scheduling.queueing import ImplicitQuota
from repro.scheduling.window import WindowConfig
from repro.scheduling.wrr import SmoothWeightedRoundRobin

__all__ = ["AsyncRedirector", "AsyncCombiner"]


class AsyncCombiner:
    """Push-style combining node exposing a ``view`` like AggregationNode.

    Root: accepts child connections, keeps each child's latest vector, and
    every ``period`` broadcasts the sum (children + own local).  Child:
    connects to the root, pushes its local vector every period, receives
    broadcasts.  Aggregates therefore lag by at most one period plus
    network latency — the real-network analogue of the paper's tree.
    """

    def __init__(
        self,
        name: str,
        local_supplier,
        period: float = 0.1,
        host: str = "127.0.0.1",
        port: int = 0,
        root_addr: Optional[Tuple[str, int]] = None,
    ):
        self.name = name
        self.local_supplier = local_supplier
        self.period = float(period)
        self.host = host
        self.port = port
        self.root_addr = root_addr
        self.is_root = root_addr is None
        self.view = GlobalView()
        self._children: Dict[str, Dict[str, float]] = {}
        self._child_writers: List[asyncio.StreamWriter] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._last_sent: Dict[str, float] = {}
        self._round = 0

    async def start(self) -> None:
        if self.is_root:
            self._server = await asyncio.start_server(self._accept, self.host, self.port)
            self.port = self._server.sockets[0].getsockname()[1]
            self._tasks.append(asyncio.create_task(self._root_loop()))
        else:
            self._tasks.append(asyncio.create_task(self._child_loop()))

    async def stop(self) -> None:
        for t in self._tasks:
            t.cancel()
        for t in self._tasks:
            try:
                await t
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- root side -----------------------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._child_writers.append(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                msg = json.loads(line)
                self._children[msg["name"]] = msg["vector"]
        except (ConnectionError, json.JSONDecodeError, asyncio.CancelledError):
            pass
        finally:
            if writer in self._child_writers:
                self._child_writers.remove(writer)
            writer.close()

    async def _root_loop(self) -> None:
        while True:
            await asyncio.sleep(self.period)
            local = dict(self.local_supplier())
            total: Dict[str, float] = dict(local)
            for vec in self._children.values():
                for k, v in vec.items():
                    total[k] = total.get(k, 0.0) + v
            self._round += 1
            self._deliver(total, local)
            payload = (json.dumps({"round": self._round, "vector": total}) + "\n").encode()
            for w in list(self._child_writers):
                try:
                    w.write(payload)
                    await w.drain()
                except ConnectionError:
                    pass

    # -- child side ---------------------------------------------------------------

    async def _child_loop(self) -> None:
        assert self.root_addr is not None
        reader = writer = None
        while reader is None:
            try:
                reader, writer = await asyncio.open_connection(*self.root_addr)
            except ConnectionError:
                await asyncio.sleep(0.05)
        recv = asyncio.create_task(self._child_recv(reader))
        try:
            while True:
                local = dict(self.local_supplier())
                self._last_sent = local
                writer.write((json.dumps({"name": self.name, "vector": local}) + "\n").encode())
                await writer.drain()
                await asyncio.sleep(self.period)
        finally:
            recv.cancel()
            writer.close()

    async def _child_recv(self, reader: asyncio.StreamReader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            msg = json.loads(line)
            self._deliver(msg["vector"], dict(self._last_sent))

    def _deliver(self, total: Mapping[str, float], local_then: Mapping[str, float]) -> None:
        self.view = GlobalView(
            aggregate=VectorAggregate(values=dict(total), contributors=1),
            round_id=self.view.round_id + 1,
            received_at=time.monotonic(),  # simlint: disable=SIM001
            local_contribution=VectorAggregate(values=dict(local_then), contributors=1),
        )


class AsyncRedirector:
    """HTTP 302 front end enforcing agreements on real sockets."""

    def __init__(
        self,
        name: str,
        access: AccessLevels,
        backends: Mapping[str, List[Tuple[str, int]]],
        host: str = "127.0.0.1",
        port: int = 0,
        window: WindowConfig = WindowConfig(0.1),
        mode: str = "community",
        prices: Optional[Mapping[str, float]] = None,
        n_redirectors: int = 1,
        retry_after: float = 0.1,
        backend: str = "auto",
    ):
        self.name = name
        self.access = access
        self.backends = {owner: list(addrs) for owner, addrs in backends.items()}
        self.host = host
        self.port = port
        self.window = window
        self.retry_after = float(retry_after)
        self.allocator = WindowAllocator(
            access, window=window, mode=mode, prices=prices,
            n_redirectors=n_redirectors, backend=backend,
        )
        self.principals = access.names
        self.quota = ImplicitQuota(self.principals)
        self._wrr: Dict[str, SmoothWeightedRoundRobin] = {
            p: SmoothWeightedRoundRobin() for p in self.principals
        }
        self._backend_rr: Dict[str, int] = {}
        self._arrivals: Dict[str, float] = {p: 0.0 for p in self.principals}
        self.demand_estimate: Dict[str, float] = {p: 0.0 for p in self.principals}
        self.admitted: Dict[str, int] = {p: 0 for p in self.principals}
        self.self_redirects: Dict[str, int] = {p: 0 for p in self.principals}
        self.bad_requests = 0
        self.combiner: Optional[AsyncCombiner] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("redirector not started")
        return self._server.sockets[0].getsockname()[:2]

    def local_demand(self) -> Dict[str, float]:
        return dict(self.demand_estimate)

    async def start(self, combiner: Optional[AsyncCombiner] = None) -> None:
        self.combiner = combiner
        if combiner is not None:
            self.allocator.attach(combiner)  # duck-typed: exposes .view
            await combiner.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self.address[1]
        self._tasks.append(asyncio.create_task(self._window_loop()))

    async def stop(self) -> None:
        for t in self._tasks:
            t.cancel()
        for t in self._tasks:
            try:
                await t
            except (asyncio.CancelledError, Exception):
                pass
        if self.combiner is not None:
            await self.combiner.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- scheduling ---------------------------------------------------------------

    async def _window_loop(self) -> None:
        alpha = 0.7
        while True:
            await asyncio.sleep(self.window.length)
            for p in self.principals:
                self.demand_estimate[p] = (
                    alpha * self._arrivals[p] + (1 - alpha) * self.demand_estimate[p]
                )
                self._arrivals[p] = 0.0
            alloc = self.allocator.compute(self.local_demand())
            self.quota.new_window(alloc.quotas)
            for p, w in alloc.weights.items():
                self._wrr[p].set_weights(
                    {o: v for o, v in w.items() if o in self.backends}
                )

    # -- request path ----------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            data = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            request, _ = parse_request(data)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, HttpError):
            self.bad_requests += 1
            writer.close()
            return
        principal = principal_from_path(request.path)
        if principal is None or principal not in self._arrivals:
            resp = HttpResponse(status=404)
        else:
            self._arrivals[principal] += 1.0
            if self.quota.try_admit(principal):
                addr = self._pick_backend(principal)
                if addr is not None:
                    self.admitted[principal] += 1
                    resp = HttpResponse.redirect(
                        f"http://{addr[0]}:{addr[1]}{request.path}"
                    )
                else:
                    resp = self._self_redirect(principal, request.path)
            else:
                resp = self._self_redirect(principal, request.path)
        try:
            writer.write(resp.encode())
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    def _self_redirect(self, principal: str, path: str) -> HttpResponse:
        self.self_redirects[principal] += 1
        return HttpResponse.redirect(
            f"http://{self.host}:{self.port}{path}", retry_after=self.retry_after
        )

    def _pick_backend(self, principal: str) -> Optional[Tuple[str, int]]:
        owner = self._wrr[principal].next()
        if owner is None:
            # No allocation yet: any owner this principal has mandatory
            # entitlement on.
            i = self.access.index(principal)
            candidates = [
                k for k in self.principals
                if k in self.backends
                and self.access.MI[i, self.access.index(k)] > 1e-12
            ]
            if not candidates:
                return None
            owner = candidates[0]
        pool = self.backends.get(owner)
        if not pool:
            return None
        idx = self._backend_rr.get(owner, 0)
        self._backend_rr[owner] = (idx + 1) % len(pool)
        return pool[idx % len(pool)]
