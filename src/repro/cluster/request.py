"""The request record.

Requests are short-lived and their resource consumption is known a priori
(paper §2's model), so a request carries a ``cost`` in average-request
units — "large requests are treated as multiple small ones for the purpose
of scheduling" (§4).

This is the hottest allocation in the simulator (one instance per simulated
request), so the class is deliberately lean:

- ``__slots__`` storage — no per-instance ``__dict__``, roughly half the
  memory and faster attribute access than the previous dataclass;
- *lazy* ``request_id`` — the global counter is only consumed when some
  component actually asks for the id (explicit-queuing redirectors, the
  closed-loop client).  The open-loop fast lane never materialises ids;
- validation is two inline comparisons; the dataclass ``__post_init__``
  dispatch and eager ``default_factory`` id draw are gone from the
  per-request path (batch field generation is validated once per chunk in
  :class:`repro.cluster.workload.WorkloadStream`).
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = ["Request"]

_request_ids = itertools.count(1)


class Request:
    """One client request for a principal's service.

    Attributes:
        principal: the organisation whose agreement funds this request.
        client_id: originating client machine.
        created_at: simulation time of first issue.
        size_bytes: reply size (drawn from the workload mix), >= 0.
        cost: scheduling cost in average-request units; must be > 0
            (zero-cost requests would make service instantaneous and
            quota accounting meaningless).
        attempts: how many times the request has been (re)submitted.
        url: requested path; the paper's redirectors map URL -> principal.
        request_id: unique id, assigned lazily on first access.
    """

    __slots__ = (
        "principal", "client_id", "created_at", "size_bytes", "cost",
        "url", "attempts", "_request_id", "completed_at", "served_by",
    )

    def __init__(
        self,
        principal: str,
        client_id: str,
        created_at: float,
        size_bytes: int = 6144,
        cost: float = 1.0,
        url: str = "/",
        attempts: int = 0,
        request_id: Optional[int] = None,
        completed_at: Optional[float] = None,
        served_by: Optional[str] = None,
    ):
        if cost <= 0:
            raise ValueError(f"request cost must be positive, got {cost}")
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        self.principal = principal
        self.client_id = client_id
        self.created_at = created_at
        self.size_bytes = size_bytes
        self.cost = cost
        self.url = url
        self.attempts = attempts
        self._request_id = request_id
        self.completed_at = completed_at
        self.served_by = served_by

    @property
    def request_id(self) -> int:
        rid = self._request_id
        if rid is None:
            rid = self._request_id = next(_request_ids)
        return rid

    @property
    def response_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(principal={self.principal!r}, client_id={self.client_id!r}, "
            f"created_at={self.created_at!r}, size_bytes={self.size_bytes!r}, "
            f"cost={self.cost!r}, url={self.url!r}, attempts={self.attempts!r}, "
            f"completed_at={self.completed_at!r}, served_by={self.served_by!r})"
        )
