"""The request record.

Requests are short-lived and their resource consumption is known a priori
(paper §2's model), so a request carries a ``cost`` in average-request
units — "large requests are treated as multiple small ones for the purpose
of scheduling" (§4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Request"]

_request_ids = itertools.count(1)


@dataclass
class Request:
    """One client request for a principal's service.

    Attributes:
        principal: the organisation whose agreement funds this request.
        client_id: originating client machine.
        created_at: simulation time of first issue.
        size_bytes: reply size (drawn from the workload mix).
        cost: scheduling cost in average-request units (>= 0).
        attempts: how many times the request has been (re)submitted.
        url: requested path; the paper's redirectors map URL -> principal.
    """

    principal: str
    client_id: str
    created_at: float
    size_bytes: int = 6144
    cost: float = 1.0
    url: str = "/"
    attempts: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completed_at: Optional[float] = None
    served_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"request cost must be positive, got {self.cost}")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    @property
    def response_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at
