"""Columnar mega-scale lane: vectorized open-loop phases (third tier).

The scalar lane pays one heap event and one Python object per request; the
slotted fast lanes (PRs 2/5) cut the per-request constant but keep the
event-per-request shape.  This lane removes it: each open-loop client's
arrivals live as struct-of-arrays numpy columns (arrival time, principal
code, cost, assigned server slot, completion time) and the whole window
advances in one engine event — the :class:`ColumnarEngine` pump.

Determinism contract (the reason this lane can be digest-pinned against
the other two):

- **Draws** come from the same three spawned child generators as
  :class:`repro.cluster.workload.WorkloadStream` (``rng.spawn(3)``; the gap
  stream consumed in blocks — numpy generators are chunk-size invariant, so
  any batch size reproduces the scalar chain bit-for-bit).
- **Arrival times** are ``np.cumsum`` chains seeded at the carried cursor:
  cumsum accumulates left-to-right, so batched restarts equal the scalar
  ``fl(t + gap)`` recurrence exactly (batch-size invariance by
  construction).
- **Admission** replays :class:`repro.scheduling.queueing.ImplicitQuota`
  arithmetic vectorised against the *live* quota object: budgets are
  floats minus integer request costs, and float-minus-smaller-integer is
  exact, so the greedy prefix equals the scalar ``try_admit`` sequence.
- **Service** replays the server recurrence
  ``F_i = fl(max(a_i, F_{i-1}) + fl(cost_i / capacity))`` with exact
  vectorised fast paths (all-idle: ``F = a + s``; all-busy: seeded cumsum)
  whose preconditions are *checked on the exact values*, falling back to a
  tight scalar loop for mixed windows.
- **Ordering** at equal-time events follows the engine's sequence-number
  rules: the pump is scheduled before any other component (smallest
  construction seq, re-armed first at every boundary by induction), client
  streams merge in creation order, and completions/busy-time — whose
  effects are order-free (bin-keyed meters, integer counters) — commit in
  per-server batches at the boundary.

Scope: strict open-loop only.  Closed-loop clients, retries
(``max_retry_pool > 0``), response callbacks, faults/health checks,
explicit/credit queuing and tracing all fall back to the slotted lane (see
``Scenario``).  Request costs are integers by construction
(``max(1, round(size/unit))``), which several exactness arguments above
rely on.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.client import _merge_windows
from repro.cluster.workload import RequestMix
from repro.l7.redirector import L7Redirector
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator
from repro.sim.monitor import RateMeter
from repro.sim.stats import StreamingStats

__all__ = ["ColumnarClient", "ColumnarEngine", "ColumnarStream"]

_EMPTY = np.empty(0, dtype=float)
_NEG_INF = float("-inf")
_INF = float("inf")
# Same literal arithmetic as ImplicitQuota.try_admit's `cost - 1e-9` at
# cost=1.0, so the unit-cost comparisons below are bit-identical.
_UNIT_THR = 1.0 - 1e-9


def _unit_admit(budget: float, n: int) -> int:
    """Number of unit-cost requests the quota admits, scalar-exact.

    ``try_admit`` admits while ``budget - i >= fl(1 - 1e-9)``; for budgets
    below 2**53 every intermediate ``budget - i`` is exactly representable,
    so the count is a vectorised prefix length over exact comparisons.
    """
    if n <= 0 or budget < _UNIT_THR:
        return 0
    m = min(n, int(budget) + 2)
    k = int(np.count_nonzero((budget - np.arange(m, dtype=float)) >= _UNIT_THR))
    return min(k, n)


def _greedy_admit(budget: float, costs: np.ndarray) -> Tuple[np.ndarray, float]:
    """Vectorised replay of sequential ``try_admit`` over integer costs.

    Returns (admitted mask, new budget).  Within a run of admits the
    budget is ``budget - cumsum`` (exact: integer partial sums, and
    float-minus-integer never rounds while the result stays smaller in
    magnitude); each refusal consumes no budget, so runs restart after it.
    """
    n = costs.shape[0]
    mask = np.zeros(n, dtype=bool)
    j = 0
    while j < n:
        rem = costs[j:]
        csum = np.cumsum(rem)
        prev = csum - rem
        ok = (budget - prev) >= (rem - 1e-9)
        if not ok[0]:
            j += 1
            continue
        k = rem.shape[0] if ok.all() else int(np.argmax(~ok))
        mask[j:j + k] = True
        budget -= float(csum[k - 1])
        j += k
        if j < n:
            j += 1  # the first over-budget request is refused, budget-free
    return mask, budget


class ColumnarStream:
    """Bulk gap/cost draws bit-matching :class:`WorkloadStream`'s streams.

    Spawns the identical three child generators (sizes, flags, gaps) from
    the client RNG.  Sizes/flags are only consumed when the mix uses
    size-proportional costs — they feed no observable state otherwise, and
    each child stream is independent, so skipping them cannot perturb the
    gap draws.
    """

    __slots__ = (
        "mix", "arrivals", "spacing", "jitter", "batch",
        "_size_rng", "_flag_rng", "_gap_rng", "_unit",
        "_gap_buf", "_gap_i", "_cost_buf", "_cost_i",
    )

    def __init__(
        self,
        mix: RequestMix,
        rng: np.random.Generator,
        rate: float,
        arrivals: str = "uniform",
        jitter: float = 0.0,
        batch: int = 65536,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.mix = mix
        self.arrivals = arrivals
        self.spacing = 1.0 / float(rate)
        self.jitter = float(jitter)
        self.batch = int(batch)
        self._size_rng, self._flag_rng, self._gap_rng = rng.spawn(3)
        self._unit = (
            (mix.unit_bytes or mix.sampler.mean_bytes) if mix.size_cost else None
        )
        self._gap_buf: Optional[np.ndarray] = None
        self._gap_i = 0
        self._cost_buf: Optional[np.ndarray] = None
        self._cost_i = 0

    def gap_view(self) -> np.ndarray:
        """The remaining buffered gaps (refilled when exhausted)."""
        buf = self._gap_buf
        if buf is None or self._gap_i >= buf.shape[0]:
            n = self.batch
            if self.arrivals == "poisson":
                buf = self._gap_rng.exponential(self.spacing, size=n)
            elif self.jitter > 0:
                j = self.jitter
                buf = self.spacing * (1.0 + self._gap_rng.uniform(-j, j, size=n))
            else:
                buf = np.full(n, self.spacing)
            self._gap_buf = buf
            self._gap_i = 0
            return buf
        return buf[self._gap_i:]

    def consume_gaps(self, m: int) -> None:
        self._gap_i += m

    def take_costs(self, m: int) -> Optional[np.ndarray]:
        """The next ``m`` request costs (None for unit-cost mixes)."""
        if self._unit is None:
            return None
        out: List[np.ndarray] = []
        while m:
            buf = self._cost_buf
            if buf is None or self._cost_i >= buf.shape[0]:
                sizes = self.mix.sampler.sample(self._size_rng, size=self.batch)
                buf = np.maximum(1.0, np.round(sizes / self._unit))
                self._cost_buf = buf
                self._cost_i = 0
            take = min(m, buf.shape[0] - self._cost_i)
            out.append(buf[self._cost_i:self._cost_i + take])
            self._cost_i += take
            m -= take
        return out[0] if len(out) == 1 else np.concatenate(out)


class ColumnarClient:
    """Open-loop client whose arrivals are generated as columns.

    Mirrors :class:`repro.cluster.client.ClientMachine`'s observable
    surface (counters, ``response_stats``, activity schedule) but never
    touches the event heap — the :class:`ColumnarEngine` pump pulls whole
    windows via :meth:`take_until`.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        principal: str,
        redirector,
        rate: float,
        rng: np.random.Generator,
        active_windows: Optional[Sequence[Tuple[float, float]]] = None,
        mix: Optional[RequestMix] = None,
        mode: str = "open",
        jitter: float = 0.0,
        arrivals: str = "uniform",
        max_retry_pool: Optional[int] = 0,
        retry_delay: float = 0.2,
        retry_jitter: float = 0.5,
        on_response=None,
        batch: int = 65536,
        rt_reservoir: int = 4096,
        track_responses: bool = True,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if mode != "open":
            raise ValueError("columnar lane supports open-loop clients only")
        if max_retry_pool != 0:
            raise ValueError(
                "columnar lane requires max_retry_pool=0 (strict open loop)"
            )
        if on_response is not None:
            raise ValueError("columnar lane does not support on_response hooks")
        self.sim = sim
        self.name = name
        self.principal = principal
        self.redirector = redirector
        self.rate = float(rate)
        self.rng = rng
        self.active_windows = (
            list(active_windows) if active_windows is not None else None
        )
        self.mix = mix or RequestMix()
        self.mode = mode
        self.jitter = float(jitter)
        self.arrivals = arrivals
        self.max_retry_pool = 0
        self.track_responses = bool(track_responses)

        if self.active_windows is None:
            self._win_starts: Optional[List[float]] = None
            self._win_ends: Optional[List[float]] = None
        else:
            self._win_starts, self._win_ends = _merge_windows(self.active_windows)

        self.issued = 0
        self.admitted = 0
        self.completed = 0
        self.deferred = 0
        self.dropped = 0
        self.response_stats = StreamingStats(
            reservoir=rt_reservoir, seed=zlib.crc32(name.encode("utf-8")) or 1
        )

        self.stream = ColumnarStream(
            self.mix, rng, rate=self.rate, arrivals=arrivals,
            jitter=self.jitter, batch=batch,
        )
        # Engine-assigned dense codes (set at registration).
        self._code = -1
        self._pcode = -1

        # Cursor: time of the next emitting tick, normalized onto an
        # active segment (inactive jumps consume no draws, exactly like
        # the scalar `_open_tick`'s schedule_at(next_start)).
        t: Optional[float] = 0.0
        if not self.is_active(0.0):
            t = self._next_segment_start(0.0)
        self._t_next = t

    # -- measurements ------------------------------------------------------

    @property
    def response_times(self) -> List[float]:
        return self.response_stats.samples

    # -- activity ----------------------------------------------------------

    def is_active(self, t: float) -> bool:
        starts = self._win_starts
        if starts is None:
            return True
        i = bisect_right(starts, t) - 1
        return i >= 0 and t < self._win_ends[i]

    def _segment_end(self, t: float) -> float:
        starts = self._win_starts
        if starts is None:
            return _INF
        i = bisect_right(starts, t) - 1
        return self._win_ends[i]

    def _next_segment_start(self, t: float) -> Optional[float]:
        starts = self._win_starts or []
        i = bisect_right(starts, t)
        return starts[i] if i < len(starts) else None

    # -- bulk generation ---------------------------------------------------

    def take_until(
        self, hi: float, closed: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """All arrivals with ``t < hi`` (``<= hi`` when closed) as columns.

        Advances the cursor; (times, costs) with costs None for unit-cost
        mixes.  Each call continues the exact cumsum chain of the previous
        one, so per-window takes equal one whole-phase take element-wise.
        """
        t = self._t_next
        if t is None:
            return _EMPTY, None
        stream = self.stream
        out: List[np.ndarray] = []
        m_total = 0
        while t is not None:
            if (t > hi) if closed else (t >= hi):
                break
            end = self._segment_end(t)
            while True:
                gaps = stream.gap_view()
                chain = np.cumsum(np.concatenate(((t,), gaps)))
                cand = chain[:-1]
                ok = cand < end
                if closed:
                    ok &= cand <= hi
                else:
                    ok &= cand < hi
                m = int(ok.sum())  # candidates are monotone: prefix length
                if m:
                    out.append(cand[:m])
                    stream.consume_gaps(m)
                    m_total += m
                if m == cand.shape[0]:
                    t = float(chain[-1])
                    continue  # block exhausted mid-segment: refill
                t = float(chain[m])
                break
            if t >= end:
                # Tick falls outside the segment: the scalar loop jumps to
                # the next activity start without consuming a draw.
                t = self._next_segment_start(t)
                continue
            break  # stopped on the window bound, cursor stays mid-segment
        self._t_next = t
        if not m_total:
            return _EMPTY, None
        times = out[0] if len(out) == 1 else np.concatenate(out)
        return times, stream.take_costs(m_total)


class _ServerLane:
    """Per-server columnar drain: exact Lindley recurrence over batches."""

    __slots__ = (
        "engine", "server",
        "free_at", "_push",
        "_pf", "_ps", "_psv", "_pcl", "_ppr", "_pcr", "_pco", "_busy_ptr",
    )

    def __init__(self, engine: "ColumnarEngine", server) -> None:
        self.engine = engine
        self.server = server
        self.free_at = _NEG_INF
        self._push: List[tuple] = []
        self._pf = _EMPTY          # completion times (nondecreasing)
        self._ps = _EMPTY          # service-start times (nondecreasing)
        self._psv = _EMPTY         # service durations
        self._pcl = np.empty(0, dtype=np.int64)   # client codes
        self._ppr = np.empty(0, dtype=np.int64)   # principal codes
        self._pcr = _EMPTY         # request creation times
        self._pco: Optional[np.ndarray] = None    # costs (None == all 1.0)
        self._busy_ptr = 0

    def push(
        self,
        times: np.ndarray,
        costs: Optional[np.ndarray],
        created: np.ndarray,
        clients: np.ndarray,
        prins: np.ndarray,
    ) -> None:
        """Queue one group's submissions (already in event order)."""
        self._push.append((times, costs, created, clients, prins))

    def advance(self, now: float) -> None:
        if self._push:
            self._drain(*self._merge_pushes())
        self._commit(now)

    def _merge_pushes(self):
        chunks = self._push
        self._push = []
        if len(chunks) == 1:
            ts, costs, created, cl, pr = chunks[0]
        else:
            ts = np.concatenate([c[0] for c in chunks])
            if any(c[1] is not None for c in chunks):
                costs = np.concatenate([
                    c[1] if c[1] is not None else np.ones(c[0].shape[0])
                    for c in chunks
                ])
            else:
                costs = None
            created = np.concatenate([c[2] for c in chunks])
            cl = np.concatenate([c[3] for c in chunks])
            pr = np.concatenate([c[4] for c in chunks])
            # Same-time submissions from different chunks interleave by
            # client creation order — the engine's equal-time event order
            # (chunks never share a client, so this is a total order).
            order = np.lexsort((cl, ts))
            ts = ts[order]
            created = created[order]
            cl = cl[order]
            pr = pr[order]
            if costs is not None:
                costs = costs[order]
        return ts, costs, created, cl, pr

    def _drain(self, ts, costs, created, cl, pr) -> None:
        srv = self.server
        n = ts.shape[0]
        if costs is None:
            sv = np.full(n, 1.0 / srv.capacity)
        else:
            sv = costs / srv.capacity
        f_prev = self.free_at
        # Three exact paths.  The preconditions are evaluated on the very
        # values the scalar recurrence would produce, so a passing check
        # *proves* the vectorised result equals the sequential one.
        f_idle = ts + sv
        if ts[0] >= f_prev and (n == 1 or bool(np.all(ts[1:] >= f_idle[:-1]))):
            F, S = f_idle, ts
        else:
            f_sat = np.cumsum(np.concatenate(((f_prev,), sv)))[1:]
            if ts[0] <= f_prev and (n == 1 or bool(np.all(ts[1:] <= f_sat[:-1]))):
                F = f_sat
                S = np.concatenate(((f_prev,), f_sat[:-1]))
            else:
                tl = ts.tolist()
                svl = sv.tolist()
                starts: List[float] = []
                fins: List[float] = []
                f = f_prev
                ap_s = starts.append
                ap_f = fins.append
                for i in range(n):
                    a = tl[i]
                    s0 = a if a > f else f
                    ap_s(s0)
                    f = s0 + svl[i]
                    ap_f(f)
                F = np.asarray(fins)
                S = np.asarray(starts)
        self.free_at = float(F[-1])
        # Append to the uncommitted tail (both F and S are nondecreasing,
        # within the batch and across batches).
        if self._pf.shape[0]:
            self._pf = np.concatenate((self._pf, F))
            self._ps = np.concatenate((self._ps, S))
            self._psv = np.concatenate((self._psv, sv))
            self._pcl = np.concatenate((self._pcl, cl))
            self._ppr = np.concatenate((self._ppr, pr))
            self._pcr = np.concatenate((self._pcr, created))
            if self._pco is not None or costs is not None:
                old = (
                    self._pco if self._pco is not None
                    else np.ones(self._pf.shape[0] - n)
                )
                new = costs if costs is not None else np.ones(n)
                self._pco = np.concatenate((old, new))
        else:
            self._pf, self._ps, self._psv = F, S, sv
            self._pcl, self._ppr, self._pcr = cl, pr, created
            self._pco = costs

    def _commit(self, now: float) -> None:
        pf = self._pf
        if not pf.shape[0]:
            return
        srv = self.server
        # Busy time accrues at service *start*; seeded cumsum replays the
        # scalar `busy_time += service` adds in order.
        j = int(np.searchsorted(self._ps, now, side="right"))
        if j > self._busy_ptr:
            seg = self._psv[self._busy_ptr:j]
            srv.busy_time = float(
                np.cumsum(np.concatenate(((srv.busy_time,), seg)))[-1]
            )
            self._busy_ptr = j
        k = int(np.searchsorted(pf, now, side="right"))
        if not k:
            return
        engine = self.engine
        meter = engine.meter
        Fc = pf[:k]
        clc = self._pcl[:k]
        prc = self._ppr[:k]
        crc = self._pcr[:k]
        coc = self._pco[:k] if self._pco is not None else None
        meter.record_many(f"server:{srv.name}", Fc)
        completed = srv.completed
        for code in np.unique(prc).tolist():
            pname = engine.principal_names[code]
            m = prc == code
            tp = Fc[m]
            completed[pname] = completed.get(pname, 0) + int(tp.shape[0])
            meter.record_many(pname, tp)
            if coc is None:
                meter.record_many(f"units:{pname}", tp)
            else:
                meter.record_many(f"units:{pname}", tp, weights=coc[m])
        clients = engine.clients_by_code
        for code in np.unique(clc).tolist():
            cli = clients[code]
            m = clc == code
            cnt = int(np.count_nonzero(m))
            cli.completed += cnt
            if cli.track_responses:
                cli.response_stats.update_many(Fc[m] - crc[m])
        self._pf = pf[k:]
        self._ps = self._ps[k:]
        self._psv = self._psv[k:]
        self._pcl = self._pcl[k:]
        self._ppr = self._ppr[k:]
        self._pcr = self._pcr[k:]
        if self._pco is not None:
            self._pco = self._pco[k:]
        self._busy_ptr -= k


class _L7Group:
    """Columnar drive of one implicit-quota :class:`L7Redirector`."""

    def __init__(self, engine: "ColumnarEngine", red: L7Redirector) -> None:
        if red.queuing != "implicit":
            raise ValueError("columnar lane requires implicit queuing")
        self.engine = engine
        self.red = red
        self._clients_by_p: Dict[str, List[ColumnarClient]] = {}
        self._order: List[ColumnarClient] = []
        sole = None
        if red.health is None and len(red.servers) == 1:
            owner, pool = next(iter(red.servers.items()))
            if len(pool) == 1:
                sole = (owner, pool[0])
        self._sole = sole
        self._fallback_ok: Dict[str, bool] = {}

    def add_client(self, client: ColumnarClient) -> None:
        p = client.principal
        if p not in self.red._arrivals:
            raise ValueError(f"unknown principal {p!r} for {self.red.name}")
        self._clients_by_p.setdefault(p, []).append(client)
        self._order.append(client)

    def advance(self, hi: float, closed: bool) -> None:
        if self._sole is not None:
            for p, cs in self._clients_by_p.items():
                self._advance_fast(p, cs, hi, closed)
        else:
            self._advance_loop(hi, closed)

    # -- single-server fast path ------------------------------------------

    def _window_server(self, p: str):
        """The constant pick `_pick_server(p)` would return all window.

        With one owner and a one-server pool the smooth-WRR choice cannot
        vary within a window: non-empty weights always yield the sole
        owner, empty weights fall back to the mandatory-entitlement owner
        (or None).  Skipping the per-admit WRR state advance is therefore
        unobservable.
        """
        red = self.red
        owner, srv = self._sole
        if red._wrr[p]._weights:
            return srv
        ok = self._fallback_ok.get(p)
        if ok is None:
            i = red.access.index(p)
            ok = any(
                k in red.servers and red._w.MI[i, red.access.index(k)] > 1e-12
                for k in red.principals
            )
            self._fallback_ok[p] = ok
        return srv if ok else None

    def _advance_fast(
        self, p: str, cs: List[ColumnarClient], hi: float, closed: bool
    ) -> None:
        red = self.red
        engine = self.engine
        parts: List[np.ndarray] = []
        codes: List[np.ndarray] = []
        cost_parts: List[Optional[np.ndarray]] = []
        total = 0
        any_costs = False
        for c in cs:
            t, cost = c.take_until(hi, closed)
            n = t.shape[0]
            if not n:
                continue
            c.issued += n
            parts.append(t)
            codes.append(np.full(n, c._code, dtype=np.int64))
            cost_parts.append(cost)
            if cost is not None:
                any_costs = True
            total += n
        if not total:
            return
        engine.requests += total
        if len(parts) == 1:
            ts, cl = parts[0], codes[0]
            costs = cost_parts[0]
        else:
            ts = np.concatenate(parts)
            cl = np.concatenate(codes)
            costs = None
            if any_costs:
                costs = np.concatenate([
                    cp if cp is not None else np.ones(pp.shape[0])
                    for cp, pp in zip(cost_parts, parts)
                ])
            # Stable sort over per-client sorted blocks concatenated in
            # creation order == the engine's equal-time event order.
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            cl = cl[order]
            if costs is not None:
                costs = costs[order]
        # Demand estimate: one bulk add per window from a zeroed counter
        # equals the scalar's sequential `+= cost` chain (cumsum is
        # left-to-right; integer unit costs sum exactly).
        if costs is None:
            red._arrivals[p] += float(total)
        else:
            red._arrivals[p] += float(np.cumsum(costs)[-1])
        quota = red.quota
        budget = quota._budget[p]
        if costs is None:
            n_adm = _unit_admit(budget, total)
            new_budget = budget - float(n_adm)
            adm_t, adm_cl, adm_costs = ts[:n_adm], cl[:n_adm], None
            ref_cl = cl[n_adm:]
        else:
            mask, new_budget = _greedy_admit(budget, costs)
            n_adm = int(np.count_nonzero(mask))
            adm_t, adm_cl, adm_costs = ts[mask], cl[mask], costs[mask]
            ref_cl = cl[~mask]
        quota._budget[p] = new_budget
        quota.admitted[p] += n_adm
        quota.rejected[p] += total - n_adm
        srv = self._window_server(p) if n_adm else None
        clients = engine.clients_by_code
        if n_adm and srv is None:
            # handle()'s admitted-but-no-usable-server fallthrough.
            quota.rejected[p] += n_adm
            red.self_redirects[p] += total
            for code, cnt in enumerate(np.bincount(cl).tolist()):
                if cnt:
                    cli = clients[code]
                    cli.deferred += cnt
                    cli.dropped += cnt
            return
        red.admitted[p] += n_adm
        red.self_redirects[p] += total - n_adm
        if n_adm:
            for code, cnt in enumerate(np.bincount(adm_cl).tolist()):
                if cnt:
                    clients[code].admitted += cnt
        if ref_cl.shape[0]:
            for code, cnt in enumerate(np.bincount(ref_cl).tolist()):
                if cnt:
                    cli = clients[code]
                    cli.deferred += cnt
                    cli.dropped += cnt
        if n_adm:
            engine.lane(srv).push(
                adm_t, adm_costs, adm_t, adm_cl,
                np.full(n_adm, engine.principal_code(p), dtype=np.int64),
            )

    # -- general event-loop path ------------------------------------------

    def _advance_loop(self, hi: float, closed: bool) -> None:
        """Multi-owner/pooled redirectors: per-event replay of ``handle``
        against the live quota/WRR state (shared ``_server_wrr`` state
        makes per-principal vectorisation unsafe), still without heap
        events or Request objects."""
        red = self.red
        engine = self.engine
        parts: List[np.ndarray] = []
        codes: List[np.ndarray] = []
        pcs: List[np.ndarray] = []
        cost_parts: List[Optional[np.ndarray]] = []
        any_costs = False
        for c in self._order:
            t, cost = c.take_until(hi, closed)
            n = t.shape[0]
            if not n:
                continue
            c.issued += n
            parts.append(t)
            codes.append(np.full(n, c._code, dtype=np.int64))
            pcs.append(np.full(n, c._pcode, dtype=np.int64))
            cost_parts.append(cost)
            if cost is not None:
                any_costs = True
        if not parts:
            return
        ts = np.concatenate(parts)
        cl = np.concatenate(codes)
        pc = np.concatenate(pcs)
        if any_costs:
            costs = np.concatenate([
                cp if cp is not None else np.ones(pp.shape[0])
                for cp, pp in zip(cost_parts, parts)
            ])
        else:
            costs = np.ones(ts.shape[0])
        order = np.argsort(ts, kind="stable")
        ts = ts[order]
        cl = cl[order]
        pc = pc[order]
        costs = costs[order]
        engine.requests += ts.shape[0]
        quota = red.quota
        arrivals = red._arrivals
        clients = engine.clients_by_code
        names = engine.principal_names
        subs: Dict[object, List[List]] = {}
        for t, code, pcode, cost in zip(
            ts.tolist(), cl.tolist(), pc.tolist(), costs.tolist()
        ):
            p = names[pcode]
            cli = clients[code]
            arrivals[p] += cost
            if quota.try_admit(p, cost=cost):
                server = red._pick_server(p)
                if server is not None:
                    red.admitted[p] += 1
                    cli.admitted += 1
                    rec = subs.get(id(server))
                    if rec is None:
                        rec = subs[id(server)] = [server, [], [], [], []]
                    rec[1].append(t)
                    rec[2].append(cost)
                    rec[3].append(code)
                    rec[4].append(pcode)
                    continue
                quota.rejected[p] += 1
            red.self_redirects[p] += 1
            cli.deferred += 1
            cli.dropped += 1
        for server, t_l, c_l, cl_l, pc_l in subs.values():
            t_a = np.asarray(t_l)
            engine.lane(server).push(
                t_a,
                np.asarray(c_l) if any_costs else None,
                t_a,
                np.asarray(cl_l, dtype=np.int64),
                np.asarray(pc_l, dtype=np.int64),
            )


class ColumnarEngine:
    """One pump event per window boundary driving every columnar group.

    Construct this *before any other scenario component* so the pump's
    boundary events carry the smallest construction sequence numbers: the
    pump then fires first at every boundary (before window drivers, daemon
    accounting and protocol rounds), which is exactly the state a scalar
    run would present to those components — all intra-window events
    applied, no boundary events yet.
    """

    def __init__(self, sim: Simulator, window: WindowConfig, meter: RateMeter):
        self.sim = sim
        self.window = window
        self.meter = meter
        self.principal_names: List[str] = []
        self._pcode: Dict[str, int] = {}
        self.clients_by_code: List[ColumnarClient] = []
        self._groups: List[object] = []
        self._group_of: Dict[int, object] = {}
        self._lanes: Dict[str, _ServerLane] = {}
        self.requests = 0
        self._flushed_to: Optional[float] = None
        sim.schedule(window.length, self._pump)

    def principal_code(self, p: str) -> int:
        code = self._pcode.get(p)
        if code is None:
            code = self._pcode[p] = len(self.principal_names)
            self.principal_names.append(p)
        return code

    def register(self, client: ColumnarClient) -> None:
        red = client.redirector
        group = self._group_of.get(id(red))
        if group is None:
            factory = getattr(red, "columnar_group", None)
            if factory is not None:
                group = factory(self)
            elif isinstance(red, L7Redirector):
                group = _L7Group(self, red)
            else:
                raise ValueError(
                    f"redirector {red!r} does not support the columnar lane"
                )
            self._group_of[id(red)] = group
            self._groups.append(group)
        client._code = len(self.clients_by_code)
        client._pcode = self.principal_code(client.principal)
        self.clients_by_code.append(client)
        group.add_client(client)

    def lane(self, server) -> _ServerLane:
        ln = self._lanes.get(server.name)
        if ln is None:
            ln = self._lanes[server.name] = _ServerLane(self, server)
        return ln

    def _pump(self) -> None:
        now = self.sim.now
        self._advance(now, closed=False)
        self.sim.schedule(self.window.length, self._pump)

    def flush(self, until: float) -> None:
        """Commit the final partial window.

        Boundaries accumulate as ``fl(b + W)`` and drift above exact
        multiples, so the last pump usually lies *beyond* the run horizon;
        the slotted lane still processes arrivals (and completions) up to
        and including ``until`` as individual events.  Idempotent per
        horizon.
        """
        if self._flushed_to == until:
            return
        self._flushed_to = until
        self._advance(until, closed=True)

    def _advance(self, hi: float, closed: bool) -> None:
        for group in self._groups:
            group.advance(hi, closed)
        for lane in self._lanes.values():
            lane.advance(hi)
