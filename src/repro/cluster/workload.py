"""WebBench-like request mixes.

The paper's WebBench configuration "produces static and dynamic web page
requests with an average reply size of 6 KB (individual responses range
from 200 bytes to 500 KB)".  :class:`ReplySizeSampler` reproduces that
marginal with a clipped lognormal calibrated so the post-clipping mean
stays at the target; :class:`RequestMix` adds the static/dynamic split and
optional per-unit cost accounting for large requests.

:class:`WorkloadStream` is the request-path fast lane over a mix: it
pre-draws reply sizes, static/dynamic flags, costs, and arrival gaps in
numpy blocks instead of paying scalar ``rng.lognormal``/``rng.random``
calls per request.  Determinism contract: the stream spawns one dedicated
child generator per field from the client's RNG (spawning does not advance
the parent stream), and each field is consumed strictly in draw order —
numpy generators produce identical sequences whether sampled one value at
a time or in blocks, so the emitted request stream is **invariant to the
chunk size by construction** (asserted for chunks 1/256/4096 in
``tests/cluster/test_workload.py``).  The scalar path is retained as
:meth:`RequestMix.draw` for A/B comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["ReplySizeSampler", "RequestMix", "WorkloadStream"]


class ReplySizeSampler:
    """Clipped lognormal reply sizes (defaults: 200 B – 500 KB, mean 6 KB).

    The lognormal ``mu`` is solved numerically so the *clipped* mean hits
    the target — naive moment matching then clipping at 500 KB would bias
    the mean low.
    """

    def __init__(
        self,
        mean_bytes: float = 6144.0,
        min_bytes: int = 200,
        max_bytes: int = 512_000,
        sigma: float = 1.2,
    ):
        if not (0 < min_bytes < mean_bytes < max_bytes):
            raise ValueError("need 0 < min < mean < max")
        self.mean_bytes = float(mean_bytes)
        self.min_bytes = int(min_bytes)
        self.max_bytes = int(max_bytes)
        self.sigma = float(sigma)
        self.mu = self._calibrate_mu()

    def _clipped_mean(self, mu: float) -> float:
        """E[clip(X, lo, hi)] for X ~ LogNormal(mu, sigma) in closed form."""
        from math import erf, exp, log, sqrt

        s = self.sigma
        lo, hi = math.log(self.min_bytes), math.log(self.max_bytes)

        def phi(z: float) -> float:
            return 0.5 * (1.0 + erf(z / sqrt(2.0)))

        a = (lo - mu) / s
        b = (hi - mu) / s
        # mass below lo contributes lo; above hi contributes hi; middle is a
        # truncated lognormal mean.
        mid = exp(mu + s * s / 2.0) * (phi(b - s) - phi(a - s))
        return self.min_bytes * phi(a) + mid + self.max_bytes * (1.0 - phi(b))

    def _calibrate_mu(self) -> float:
        lo, hi = math.log(self.min_bytes), math.log(self.max_bytes)
        for _ in range(80):  # bisection; the clipped mean is monotone in mu
            mid = 0.5 * (lo + hi)
            if self._clipped_mean(mid) < self.mean_bytes:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        raw = rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)
        return np.clip(raw, self.min_bytes, self.max_bytes).astype(int)


@dataclass(frozen=True)
class RequestMix:
    """Static/dynamic request mix with size-proportional cost accounting.

    ``dynamic_fraction`` of requests are dynamic pages (the paper's
    WebBench mix includes both).  When ``size_cost`` is set, a request's
    scheduling cost is ``max(1, size / unit_bytes)`` rounded — the paper's
    "large requests are treated as multiple small ones".  ``unit_bytes``
    is the *system-wide* average request size defining one scheduling unit
    (the paper's 6 KB); it defaults to this mix's own mean, which is only
    right when every principal sends the same mix.
    """

    dynamic_fraction: float = 0.2
    size_cost: bool = False
    sampler: ReplySizeSampler = ReplySizeSampler()
    unit_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        if self.unit_bytes is not None and self.unit_bytes <= 0:
            raise ValueError("unit_bytes must be positive")

    def draw(self, rng: np.random.Generator) -> tuple:
        """(url, size_bytes, cost) for one request (scalar reference path).

        Kept as the A/B baseline for :class:`WorkloadStream`; per-request
        it pays two scalar generator calls plus numpy scalar clipping.
        """
        size = int(self.sampler.sample(rng))
        dynamic = bool(rng.random() < self.dynamic_fraction)
        url = "/cgi/page" if dynamic else "/static/page"
        if self.size_cost:
            unit = self.unit_bytes or self.sampler.mean_bytes
            cost = max(1.0, round(size / unit))
        else:
            cost = 1.0
        return url, size, cost


_STATIC_URL = "/static/page"
_DYNAMIC_URL = "/cgi/page"


class WorkloadStream:
    """Chunked pre-drawn request fields over a :class:`RequestMix`.

    Args:
        mix: the request mix to sample.
        rng: the owning client's generator.  Three child streams (sizes,
            static/dynamic flags, arrival gaps) are spawned from it —
            spawning never advances the parent, so the client keeps using
            ``rng`` for retry jitter etc. without perturbing the workload.
        chunk: block size for the vectorised draws.  Any value produces
            the identical request stream (see module docstring); larger
            chunks just amortise the numpy call overhead further.
        rate: requests/second for arrival-gap generation; ``None`` when
            the caller does not consume gaps (closed-loop clients).
        arrivals: ``"uniform"`` (fixed/jittered spacing) or ``"poisson"``.
        jitter: relative uniform jitter on the fixed spacing.

    Per-chunk the stream validates what the scalar path checked per
    request: sizes are clipped into ``[min_bytes, max_bytes]`` by the
    sampler and costs are ``>= 1`` by construction, so the
    :class:`repro.cluster.request.Request` constructor's checks never
    fire on streamed fields.
    """

    __slots__ = (
        "mix", "chunk", "arrivals", "spacing", "jitter",
        "_size_rng", "_flag_rng", "_gap_rng",
        "_urls", "_sizes", "_costs", "_gaps", "_i", "_n", "_unit",
    )

    def __init__(
        self,
        mix: RequestMix,
        rng: np.random.Generator,
        chunk: int = 1024,
        rate: Optional[float] = None,
        arrivals: str = "uniform",
        jitter: float = 0.0,
    ):
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive")
        self.mix = mix
        self.chunk = int(chunk)
        self.arrivals = arrivals
        self.spacing = (1.0 / float(rate)) if rate is not None else None
        self.jitter = float(jitter)
        self._size_rng, self._flag_rng, self._gap_rng = rng.spawn(3)
        self._unit = (
            (mix.unit_bytes or mix.sampler.mean_bytes) if mix.size_cost else None
        )
        self._i = 0
        self._n = 0
        self._urls: list = []
        self._sizes: list = []
        self._costs: Optional[list] = None
        self._gaps: Optional[list] = None

    def _refill(self) -> None:
        n = self.chunk
        mix = self.mix
        sizes = mix.sampler.sample(self._size_rng, size=n)
        dynamic = self._flag_rng.random(n) < mix.dynamic_fraction
        self._urls = [_DYNAMIC_URL if d else _STATIC_URL for d in dynamic.tolist()]
        self._sizes = sizes.tolist()
        if self._unit is not None:
            # Mirrors the scalar path's max(1, round(size / unit)) — both
            # numpy and Python round half to even.
            self._costs = np.maximum(1.0, np.round(sizes / self._unit)).tolist()
        else:
            self._costs = None
        if self.spacing is None:
            self._gaps = None
        elif self.arrivals == "poisson":
            self._gaps = self._gap_rng.exponential(self.spacing, size=n).tolist()
        elif self.jitter > 0:
            j = self.jitter
            factors = 1.0 + self._gap_rng.uniform(-j, j, size=n)
            self._gaps = (self.spacing * factors).tolist()
        else:
            self._gaps = [self.spacing] * n
        self._i = 0
        self._n = n

    def draw_next(self) -> Tuple[str, int, float, Optional[float]]:
        """(url, size_bytes, cost, arrival_gap) for the next request.

        ``arrival_gap`` is None when the stream was built without a rate.
        """
        i = self._i
        if i == self._n:
            self._refill()
            i = 0
        self._i = i + 1
        cost = self._costs[i] if self._costs is not None else 1.0
        gap = self._gaps[i] if self._gaps is not None else None
        return self._urls[i], self._sizes[i], cost, gap
