"""WebBench-like request mixes.

The paper's WebBench configuration "produces static and dynamic web page
requests with an average reply size of 6 KB (individual responses range
from 200 bytes to 500 KB)".  :class:`ReplySizeSampler` reproduces that
marginal with a clipped lognormal calibrated so the post-clipping mean
stays at the target; :class:`RequestMix` adds the static/dynamic split and
optional per-unit cost accounting for large requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ReplySizeSampler", "RequestMix"]


class ReplySizeSampler:
    """Clipped lognormal reply sizes (defaults: 200 B – 500 KB, mean 6 KB).

    The lognormal ``mu`` is solved numerically so the *clipped* mean hits
    the target — naive moment matching then clipping at 500 KB would bias
    the mean low.
    """

    def __init__(
        self,
        mean_bytes: float = 6144.0,
        min_bytes: int = 200,
        max_bytes: int = 512_000,
        sigma: float = 1.2,
    ):
        if not (0 < min_bytes < mean_bytes < max_bytes):
            raise ValueError("need 0 < min < mean < max")
        self.mean_bytes = float(mean_bytes)
        self.min_bytes = int(min_bytes)
        self.max_bytes = int(max_bytes)
        self.sigma = float(sigma)
        self.mu = self._calibrate_mu()

    def _clipped_mean(self, mu: float) -> float:
        """E[clip(X, lo, hi)] for X ~ LogNormal(mu, sigma) in closed form."""
        from math import erf, exp, log, sqrt

        s = self.sigma
        lo, hi = math.log(self.min_bytes), math.log(self.max_bytes)

        def phi(z: float) -> float:
            return 0.5 * (1.0 + erf(z / sqrt(2.0)))

        a = (lo - mu) / s
        b = (hi - mu) / s
        # mass below lo contributes lo; above hi contributes hi; middle is a
        # truncated lognormal mean.
        mid = exp(mu + s * s / 2.0) * (phi(b - s) - phi(a - s))
        return self.min_bytes * phi(a) + mid + self.max_bytes * (1.0 - phi(b))

    def _calibrate_mu(self) -> float:
        lo, hi = math.log(self.min_bytes), math.log(self.max_bytes)
        for _ in range(80):  # bisection; the clipped mean is monotone in mu
            mid = 0.5 * (lo + hi)
            if self._clipped_mean(mid) < self.mean_bytes:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        raw = rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)
        return np.clip(raw, self.min_bytes, self.max_bytes).astype(int)


@dataclass(frozen=True)
class RequestMix:
    """Static/dynamic request mix with size-proportional cost accounting.

    ``dynamic_fraction`` of requests are dynamic pages (the paper's
    WebBench mix includes both).  When ``size_cost`` is set, a request's
    scheduling cost is ``max(1, size / unit_bytes)`` rounded — the paper's
    "large requests are treated as multiple small ones".  ``unit_bytes``
    is the *system-wide* average request size defining one scheduling unit
    (the paper's 6 KB); it defaults to this mix's own mean, which is only
    right when every principal sends the same mix.
    """

    dynamic_fraction: float = 0.2
    size_cost: bool = False
    sampler: ReplySizeSampler = ReplySizeSampler()
    unit_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        if self.unit_bytes is not None and self.unit_bytes <= 0:
            raise ValueError("unit_bytes must be positive")

    def draw(self, rng: np.random.Generator) -> tuple:
        """(url, size_bytes, cost) for one request."""
        size = int(self.sampler.sample(rng))
        dynamic = bool(rng.random() < self.dynamic_fraction)
        url = "/cgi/page" if dynamic else "/static/page"
        if self.size_cost:
            unit = self.unit_bytes or self.sampler.mean_bytes
            cost = max(1.0, round(size / unit))
        else:
            cost = 1.0
        return url, size, cost
