"""Experiment phase schedules.

Every figure in §5 runs in phases during which specific client machines
are active ("in the first and third phases, both A's and B's clients are
active, while in the second phase only A's clients are active").
:class:`PhaseSchedule` owns the timeline; clients ask it whether they are
active, and the reporting layer uses it to compute per-phase mean rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

__all__ = ["PhaseSchedule"]


@dataclass(frozen=True)
class _Phase:
    name: str
    duration: float
    active: FrozenSet[str]


class PhaseSchedule:
    """An ordered list of (name, duration, active client set) phases.

    >>> ps = PhaseSchedule([("p1", 10.0, {"c1", "c2"}), ("p2", 5.0, {"c1"})])
    >>> ps.is_active("c2", t=12.0)
    False
    >>> ps.total_duration
    15.0
    """

    def __init__(self, phases: Sequence[Tuple[str, float, Iterable[str]]]):
        if not phases:
            raise ValueError("need at least one phase")
        self._phases: List[_Phase] = []
        for name, duration, active in phases:
            if duration <= 0:
                raise ValueError(f"phase {name!r} has non-positive duration")
            self._phases.append(_Phase(name, float(duration), frozenset(active)))

    @property
    def total_duration(self) -> float:
        return sum(p.duration for p in self._phases)

    @property
    def names(self) -> List[str]:
        return [p.name for p in self._phases]

    def bounds(self) -> List[Tuple[str, float, float]]:
        """(name, start, end) per phase."""
        out, t = [], 0.0
        for p in self._phases:
            out.append((p.name, t, t + p.duration))
            t += p.duration
        return out

    def phase_at(self, t: float) -> str:
        for name, t0, t1 in self.bounds():
            if t0 <= t < t1:
                return name
        return self._phases[-1].name

    def is_active(self, client: str, t: float) -> bool:
        for p, (name, t0, t1) in zip(self._phases, self.bounds()):
            if t0 <= t < t1:
                return client in p.active
        return False

    def windows(self, client: str) -> List[Tuple[float, float]]:
        """Merged (start, end) activity windows for a client."""
        out: List[Tuple[float, float]] = []
        for p, (name, t0, t1) in zip(self._phases, self.bounds()):
            if client in p.active:
                if out and abs(out[-1][1] - t0) < 1e-12:
                    out[-1] = (out[-1][0], t1)
                else:
                    out.append((t0, t1))
        return out

    def clients(self) -> List[str]:
        names = set()
        for p in self._phases:
            names |= p.active
        return sorted(names)
