"""Server-side resource containers for longer-lived requests.

The paper's model assumes short-lived requests and notes (§2) that
"extending our architecture to support longer lived requests, such as
continuous media streams or parallel jobs, would require additional (but
orthogonal) support on the server side; such support would provide a
sandbox or a resource container environment" — citing resource containers
and, in §6, the Cluster Reserves technique.

:class:`ContainerServer` implements that orthogonal support:

- every principal gets a *container* with a guaranteed share of the
  server's rate capacity;
- short requests are served by deficit round-robin (DRR) across
  containers — work-conserving, so an idle container's share flows to
  busy ones, proportional under overload, and robust to *dynamic*
  weights (virtual-finish-tag WFQ pathologically starves a session whose
  weight passes near zero, because its inflated tags persist);
- long-lived *streams* reserve a rate for a duration; admission control
  keeps each container's reserved rate within its guarantee (plus an
  optional borrowing headroom).  A stream charges *its own* container:
  the container's DRR quantum for short requests shrinks by the reserved
  rate, so one principal's streams never dilute another's guarantee —
  the isolation property Cluster Reserves provides.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.cluster.request import Request
from repro.sim.engine import Simulator

__all__ = ["ContainerServer", "StreamHandle"]

_stream_ids = itertools.count(1)


@dataclass
class StreamHandle:
    """A long-lived reservation (media stream / parallel job slice)."""

    stream_id: int
    principal: str
    rate: float
    started_at: float
    ends_at: float
    active: bool = True


@dataclass
class _Container:
    principal: str
    share: float                     # guaranteed fraction of capacity
    queue: Deque[Tuple[Request, Optional[Callable]]] = field(default_factory=deque)
    deficit: float = 0.0             # DRR deficit counter
    stream_rate: float = 0.0
    served: int = 0

    def quantum(self, capacity: float) -> float:
        """Per-round service credit: the guaranteed rate net of the
        container's own stream reservations, as a capacity fraction."""
        return max(self.share - self.stream_rate / capacity, 0.0)


class ContainerServer:
    """A server whose capacity is partitioned by per-principal containers.

    Args:
        sim: simulation kernel.
        name: server name.
        capacity: total rate capacity (request-units/second).
        shares: guaranteed fraction per principal; must sum to <= 1.
        borrow_limit: how far above its guarantee a container's *stream*
            reservations may go when the server has slack (1.0 = no
            borrowing beyond the guarantee).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float,
        shares: Mapping[str, float],
        borrow_limit: float = 1.0,
        owner: Optional[str] = None,
        on_complete: Optional[Callable[[Request, "ContainerServer"], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"guaranteed shares sum to {total:.3f} > 1")
        if any(s < 0 for s in shares.values()):
            raise ValueError("shares must be non-negative")
        if borrow_limit < 1.0:
            raise ValueError("borrow_limit must be >= 1")
        self.sim = sim
        self.name = name
        self.owner = owner or name
        self.capacity = float(capacity)
        self.borrow_limit = float(borrow_limit)
        self.on_complete = on_complete
        self._containers: Dict[str, _Container] = {
            p: _Container(principal=p, share=float(s)) for p, s in shares.items()
        }
        self._order: List[_Container] = list(self._containers.values())
        self._rr = 0                               # DRR ring cursor
        self._active: Optional[_Container] = None  # container mid-turn
        self._busy = False
        self._streams: Dict[int, StreamHandle] = {}
        self.rejected_streams = 0
        self.dropped = 0

    # -- capacity accounting ------------------------------------------------

    @property
    def reserved_rate(self) -> float:
        return sum(c.stream_rate for c in self._containers.values())

    @property
    def service_rate(self) -> float:
        """Rate left for the short-request queues after live streams."""
        return max(0.0, self.capacity - self.reserved_rate)

    def container_usage(self, principal: str) -> Tuple[float, float]:
        c = self._containers[principal]
        return c.stream_rate, c.share * self.capacity

    # -- streams (long-lived requests) ----------------------------------------

    def open_stream(self, principal: str, rate: float, duration: float) -> Optional[StreamHandle]:
        """Reserve ``rate`` units/s for ``duration`` seconds.

        Admission: the container's total stream rate must stay within
        ``share * capacity * borrow_limit`` *and* the server must retain a
        non-negative service rate.  Returns None if rejected.
        """
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        c = self._containers.get(principal)
        if c is None:
            return None
        cap = c.share * self.capacity * self.borrow_limit
        if c.stream_rate + rate > cap + 1e-9:
            self.rejected_streams += 1
            return None
        if self.reserved_rate + rate > self.capacity + 1e-9:
            self.rejected_streams += 1
            return None
        handle = StreamHandle(
            stream_id=next(_stream_ids), principal=principal, rate=float(rate),
            started_at=self.sim.now, ends_at=self.sim.now + duration,
        )
        c.stream_rate += rate
        self._streams[handle.stream_id] = handle
        self.sim.schedule(duration, self._close_stream, handle.stream_id)
        return handle

    def close_stream(self, handle: StreamHandle) -> None:
        """Tear a stream down early."""
        self._close_stream(handle.stream_id)

    def _close_stream(self, stream_id: int) -> None:
        handle = self._streams.pop(stream_id, None)
        if handle is None or not handle.active:
            return
        handle.active = False
        self._containers[handle.principal].stream_rate -= handle.rate

    # -- short requests: deficit round-robin --------------------------------------

    def submit(self, request: Request, done: Optional[Callable[[Request], None]] = None) -> bool:
        c = self._containers.get(request.principal)
        if c is None:
            self.dropped += 1
            return False
        c.queue.append((request, done))
        if not self._busy:
            self._busy = True
            self.sim.schedule(0.0, self._serve_next)
        return True

    def _pick(self) -> Optional[_Container]:
        """Classic DRR: the quantum is added once per ring visit; a
        container keeps its turn while the accumulated deficit covers its
        head-of-line cost.

        Dynamic weights just work: a fully stream-reserved container has a
        zero quantum (never accumulates, never served) but recovers the
        moment its streams end — unlike virtual-finish-tag WFQ, whose
        inflated tags starve a session long after its weight returns.
        """
        # Continue the current turn while the deficit lasts.
        if self._active is not None:
            c = self._active
            if c.queue and c.deficit >= c.queue[0][0].cost:
                return c
            if not c.queue:
                c.deficit = 0.0  # idle containers do not bank service
            self._active = None

        n = len(self._order)
        busy = [c for c in self._order if c.queue]
        if not busy:
            return None
        quanta = [c.quantum(self.capacity) for c in busy]
        if all(q <= 0.0 for q in quanta):
            return None  # everything backlogged is fully reserved
        max_cost = max(c.queue[0][0].cost for c in busy)
        min_quantum = min(q for q in quanta if q > 0)
        # Enough sweeps for the slowest-accumulating head to qualify.
        max_visits = n * (int(max_cost / min_quantum) + 2)
        for _ in range(max_visits):
            c = self._order[self._rr % n]
            self._rr += 1
            if not c.queue:
                c.deficit = 0.0
                continue
            q = c.quantum(self.capacity)
            if q <= 0.0:
                continue
            c.deficit += q
            if c.deficit >= c.queue[0][0].cost:
                self._active = c
                return c
        return None  # pragma: no cover - max_visits is an upper bound

    def _serve_next(self) -> None:
        c = self._pick()
        if c is None:
            if any(cc.queue for cc in self._order):
                # Backlogged but fully reserved: poll until a stream ends.
                self.sim.schedule(0.05, self._serve_next)
            else:
                self._busy = False
            return
        request, done = c.queue.popleft()
        c.deficit -= request.cost
        if not c.queue:
            c.deficit = 0.0
        rate = self.service_rate
        if rate <= 0:
            c.queue.appendleft((request, done))
            self.sim.schedule(0.05, self._serve_next)
            return
        service = request.cost / rate
        self.sim.schedule(service, self._finish, c, request, done)

    def _finish(self, c: _Container, request: Request, done: Optional[Callable]) -> None:
        request.completed_at = self.sim.now
        request.served_by = self.name
        c.served += 1
        if self.on_complete is not None:
            self.on_complete(request, self)
        if done is not None:
            done(request)
        self._serve_next()

    # -- introspection --------------------------------------------------------------

    def queue_length(self, principal: Optional[str] = None) -> int:
        if principal is not None:
            return len(self._containers[principal].queue)
        return sum(len(c.queue) for c in self._containers.values())

    def served(self, principal: str) -> int:
        return self._containers[principal].served

    @property
    def active_streams(self) -> List[StreamHandle]:
        return [h for h in self._streams.values() if h.active]
