"""Web-cluster substrate: the stand-in for the paper's physical testbed.

- :mod:`repro.cluster.request` — the request record flowing through the
  system.
- :mod:`repro.cluster.workload` — WebBench-like request mixes (static and
  dynamic pages, 200 B–500 KB replies averaging 6 KB).
- :mod:`repro.cluster.server` — capacity-rate servers (Apache on a 1 GHz
  PC ~ 320 req/s in the paper) with FIFO service and saturation.
- :mod:`repro.cluster.client` — WebBench-like client machines: rate-capped
  generators that honour redirects and retry on self-redirection.
- :mod:`repro.cluster.phases` — experiment phase schedules (clients
  starting/stopping), as in every figure of §5.
"""

from repro.cluster.client import ClientMachine
from repro.cluster.containers import ContainerServer, StreamHandle
from repro.cluster.endpoint_server import EndpointEnforcingServer
from repro.cluster.phases import PhaseSchedule
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.cluster.workload import ReplySizeSampler, RequestMix, WorkloadStream

__all__ = [
    "Request",
    "Server",
    "ContainerServer",
    "EndpointEnforcingServer",
    "StreamHandle",
    "ClientMachine",
    "PhaseSchedule",
    "ReplySizeSampler",
    "RequestMix",
    "WorkloadStream",
]
