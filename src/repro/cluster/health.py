"""Backend health checking for redirectors (L7) and the L4 switch.

The paper's prototypes assume live Apache backends; under the fault model
(:mod:`repro.faults`) servers fail-stop and restart, so every redirecting
component needs the standard production loop: periodically *probe* each
backend, take it out of rotation after ``fail_after`` consecutive failed
probes, keep probing a down backend with exponential backoff (capped at
``max_interval``), and return it to rotation on the first successful
probe.  :class:`BackendHealthChecker` implements that loop against the
simulated :class:`repro.cluster.server.Server` (a probe observes
``server.alive`` — the analogue of an HTTP health endpoint).

It also supports *draining*: an administratively drained backend accepts
no new connections (``is_healthy`` goes False) while its queued work keeps
serving out — the graceful half of taking a backend down.

Everything is driven by one ``sim.every`` timer and per-backend absolute
next-probe times; there is no randomness, so the checker adds nothing to
the determinism surface.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.cluster.server import Server
from repro.sim.engine import Simulator

__all__ = ["BackendHealthChecker"]

# (event, backend-name); event is "down", "up", "drain", or "undrain".
ChangeFn = Callable[[str, str], None]


class _BackendState:
    __slots__ = ("server", "healthy", "fails", "interval", "next_probe", "draining")

    def __init__(self, server: Server, interval: float, now: float) -> None:
        self.server = server
        self.healthy = True
        self.fails = 0
        self.interval = interval
        self.next_probe = now + interval
        self.draining = False


class BackendHealthChecker:
    """Probe-based backend liveness with backoff retry and draining."""

    def __init__(
        self,
        sim: Simulator,
        servers: Iterable[Server],
        probe_interval: float = 0.05,
        fail_after: int = 2,
        backoff: float = 2.0,
        max_interval: float = 1.0,
        on_change: Optional[ChangeFn] = None,
    ) -> None:
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if fail_after < 1:
            raise ValueError("fail_after must be >= 1")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        self.sim = sim
        self.probe_interval = float(probe_interval)
        self.fail_after = int(fail_after)
        self.backoff = float(backoff)
        self.max_interval = float(max_interval)
        self.on_change = on_change
        self.probes = 0
        self.marked_down = 0
        self.marked_up = 0
        self._states: Dict[str, _BackendState] = {}
        for server in servers:
            self.watch(server)
        sim.every(self.probe_interval, self._tick, start=self.probe_interval)

    # -- membership --------------------------------------------------------

    def watch(self, server: Server) -> None:
        """Start probing a backend; idempotent."""
        if server.name not in self._states:
            self._states[server.name] = _BackendState(
                server, self.probe_interval, self.sim.now
            )

    # -- rotation queries --------------------------------------------------

    def is_healthy(self, name: str) -> bool:
        """May new work be routed to this backend?  Unwatched => yes."""
        state = self._states.get(name)
        if state is None:
            return True
        return state.healthy and not state.draining

    def healthy(self) -> List[str]:
        return [n for n in self._states if self.is_healthy(n)]

    # -- draining ----------------------------------------------------------

    def drain(self, name: str) -> None:
        """Stop routing new work to a backend; in-flight work completes."""
        state = self._states[name]
        if not state.draining:
            state.draining = True
            if self.on_change is not None:
                self.on_change("drain", name)

    def undrain(self, name: str) -> None:
        state = self._states[name]
        if state.draining:
            state.draining = False
            if self.on_change is not None:
                self.on_change("undrain", name)

    # -- probe loop --------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        for name, state in self._states.items():
            if now + 1e-12 < state.next_probe:
                continue
            self.probes += 1
            if state.server.alive:
                if not state.healthy:
                    state.healthy = True
                    self.marked_up += 1
                    if self.on_change is not None:
                        self.on_change("up", name)
                state.fails = 0
                state.interval = self.probe_interval
                state.next_probe = now + self.probe_interval
            else:
                state.fails += 1
                if state.healthy and state.fails >= self.fail_after:
                    state.healthy = False
                    self.marked_down += 1
                    if self.on_change is not None:
                        self.on_change("down", name)
                if not state.healthy:
                    # Down: retry with exponential backoff, capped.
                    state.interval = min(
                        state.interval * self.backoff, self.max_interval
                    )
                state.next_probe = now + state.interval
