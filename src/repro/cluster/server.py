"""Capacity-rate server model.

The paper's servers are Apache instances whose measured capacity is a
request rate (V = 320 req/s on their 1 GHz PCs).  :class:`Server` models
exactly that: a FIFO service queue drained at ``capacity`` request-units
per second (deterministic service time ``cost / capacity`` per request).
Offered load beyond capacity accumulates in the queue — the saturation
behaviour every figure in §5 exercises — optionally bounded, with
overflow drops counted.

Hot-path note: the server consumes exactly **one heap event per served
request** (its completion).  Service on an idle server starts inline in
:meth:`Server.submit` and each completion pulls the next request directly,
so there is no ``_serve_next`` kick event per busy period — at the scale
benchmark tier (millions of requests) those kicks were measurable heap
traffic.  ``max_queue`` bounds the requests *in* the server (waiting plus
the one in service).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.cluster.request import Request
from repro.sim.engine import Simulator

__all__ = ["Server"]

DoneFn = Callable[[Request], None]


class Server:
    """A single server with rate capacity ``capacity`` request-units/sec."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float,
        owner: Optional[str] = None,
        max_queue: int = 0,
        on_complete: Optional[Callable[[Request, "Server"], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError("server capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.owner = owner or name
        self.max_queue = int(max_queue)
        self.on_complete = on_complete
        self._queue: Deque[Tuple[Request, Optional[DoneFn]]] = deque()
        self._busy = False
        self.completed: Dict[str, int] = {}
        self.dropped = 0
        self.busy_time = 0.0
        self._started_at = sim.now
        # Fault model: fail-stop with amnesia.  A crash loses the request
        # in service and everything queued (counted in ``failed``); while
        # down, submissions are refused (counted in ``refused``).  The
        # epoch guard voids completion events scheduled before the crash.
        self.alive = True
        self.failed = 0
        self.refused = 0
        self._epoch = 0

    # -- capacity dynamics -------------------------------------------------

    def set_capacity(self, capacity: float) -> None:
        """Change the service rate (node upgrades, partial failures).

        Takes effect from the next request served; pair with
        :class:`repro.core.dynamic.DynamicAccessManager` so agreements are
        reinterpreted against the new physical resources (§2.2).
        """
        if capacity <= 0:
            raise ValueError("server capacity must be positive")
        self.capacity = float(capacity)

    # -- fault model -------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: lose the request in service and the whole queue."""
        if not self.alive:
            return
        self.alive = False
        self._epoch += 1
        self.failed += len(self._queue) + (1 if self._busy else 0)
        self._queue.clear()
        self._busy = False

    def restart(self) -> None:
        """Come back empty (amnesia); serving resumes with new submissions."""
        self.alive = True

    # -- submission -----------------------------------------------------------

    def submit(self, request: Request, done: Optional[DoneFn] = None) -> bool:
        """Accept a request for service; returns False on queue overflow.

        An idle server starts service inline (no zero-delay kick event);
        a busy one queues the request for :meth:`_finish` to pull.
        """
        if not self.alive:
            self.refused += 1
            return False
        if self._busy:
            if self.max_queue and len(self._queue) + 1 >= self.max_queue:
                self.dropped += 1
                return False
            self._queue.append((request, done))
            return True
        self._busy = True
        service = request.cost / self.capacity
        self.busy_time += service
        self.sim.schedule(service, self._finish, request, done, self._epoch)
        return True

    # -- service loop -------------------------------------------------------------

    def _finish(self, request: Request, done: Optional[DoneFn], epoch: int = 0) -> None:
        if epoch != self._epoch:
            return  # completion scheduled before a crash — already counted
        request.completed_at = self.sim.now
        request.served_by = self.name
        self.completed[request.principal] = self.completed.get(request.principal, 0) + 1
        if self.on_complete is not None:
            self.on_complete(request, self)
        if done is not None:
            done(request)
        queue = self._queue
        if queue:
            nxt, nxt_done = queue.popleft()
            service = nxt.cost / self.capacity
            self.busy_time += service
            self.sim.schedule(service, self._finish, nxt, nxt_done, self._epoch)
        else:
            self._busy = False

    # -- introspection ----------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self) -> float:
        elapsed = self.sim.now - self._started_at
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def total_completed(self) -> int:
        return sum(self.completed.values())
