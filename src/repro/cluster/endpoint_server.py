"""A server that enforces sharing agreements *by itself* (the Fig 1 baseline).

This is the end-point enforcement model the paper's motivating example
shows failing: the server applies per-window admission on the demand *it*
happens to see (guaranteed share first, then water-filling), with no
knowledge of what other servers are doing.  Excess requests are deferred
(the client retries), so clients experience it like any other admission
control.

Used by the distributed Fig 1 experiment to demonstrate the SLA violation
end-to-end, against the coordinated redirectors that fix it.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.scheduling.endpoint import endpoint_allocate
from repro.scheduling.queueing import ImplicitQuota
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator

__all__ = ["EndpointEnforcingServer"]


class EndpointEnforcingServer(Server):
    """A :class:`Server` with built-in independent agreement enforcement.

    Every window it runs the end-point allocation (guarantee-then-
    water-fill) on its *locally observed* demand and admits accordingly;
    requests beyond the allocation are bounced back to the caller's
    ``rejected`` callback (clients treat it as a deferral).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: float,
        shares: Mapping[str, float],
        window: WindowConfig = WindowConfig(),
        smoothing: float = 0.7,
        **kw,
    ):
        super().__init__(sim, name, capacity, **kw)
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"guaranteed shares sum to {total:.3f} > 1")
        self.shares = dict(shares)
        self.window = window
        self.smoothing = float(smoothing)
        self._arrivals: Dict[str, float] = {p: 0.0 for p in shares}
        self.demand_estimate: Dict[str, float] = {p: 0.0 for p in shares}
        self.quota = ImplicitQuota(list(shares))
        self.rejected: Dict[str, int] = {p: 0 for p in shares}
        sim.process(self._window_driver(), name=f"endpoint[{name}]")

    def _window_driver(self):
        while True:
            yield self.window.length
            alpha = self.smoothing
            for p in self._arrivals:
                self.demand_estimate[p] = (
                    alpha * self._arrivals[p]
                    + (1 - alpha) * self.demand_estimate[p]
                )
                self._arrivals[p] = 0.0
            alloc = endpoint_allocate(
                self.demand_estimate, self.shares,
                self.capacity * self.window.length,
            )
            self.quota.new_window(alloc)

    def submit(self, request: Request, done=None) -> bool:
        p = request.principal
        if p not in self._arrivals:
            self.dropped += 1
            return False
        self._arrivals[p] += request.cost
        if not self.quota.try_admit(p, cost=request.cost):
            self.rejected[p] += 1
            return False
        return super().submit(request, done=done)
