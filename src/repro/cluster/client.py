"""WebBench-like client machines.

A client machine generates requests for one principal at a bounded rate —
the paper's clients top out at 400 req/s natively, or 135 req/s when
fronted by the proxy the L7 experiments needed.  Clients obey the
redirector's decision: a *redirect* sends the request to the assigned
server; a *defer* (the L7 self-redirect / L4 queueing) makes the client
retry after a delay; requests whose retry pool overflows are dropped, so
offered load stays bounded under sustained overload.

Two generation modes:

- ``open`` (default) — fixed-spacing arrivals at ``rate`` while the phase
  schedule says the client is active; this is what the paper's figures
  measure against.
- ``closed`` — ``users`` virtual users in issue/response/think loops,
  useful for response-time experiments.

The request-path fast lane (``fast_lane=True``, the default):

- workload fields and arrival gaps come pre-drawn in numpy blocks from a
  :class:`repro.cluster.workload.WorkloadStream` (spawned child RNG
  streams; the scalar ``mix.draw`` path is retained with
  ``fast_lane=False`` for A/B runs);
- the open loop is a self-rescheduling heap callback instead of a
  generator process — no per-request ``Timer`` allocation or generator
  resume;
- activity lookups bisect a precomputed sorted window-boundary array
  (O(log n) instead of scanning every window per request);
- response times feed bounded :class:`repro.sim.stats.StreamingStats`
  (count/mean/M2 + reservoir) instead of an unbounded list.

Fast lane on/off changes which RNG stream each draw comes from, so the two
lanes are statistically equivalent, not bit-identical; the A/B figure test
(``tests/integration/test_fast_lane_ab.py``) pins both within the paper
tolerances.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.cluster.workload import RequestMix, WorkloadStream
from repro.sim.engine import Simulator
from repro.sim.stats import StreamingStats

__all__ = ["ClientMachine", "Redirect", "Defer", "Drop", "Held", "RedirectorAPI"]


@dataclass(frozen=True)
class Redirect:
    """Forward the request to this server (HTTP 302 / NAT rewrite)."""

    server: Server


@dataclass(frozen=True)
class Defer:
    """Not admitted this window; client should retry (self-redirect)."""

    delay: float = 0.0


@dataclass(frozen=True)
class Drop:
    """Reject outright (used by bounded-queue configurations)."""


@dataclass(frozen=True)
class Held:
    """The redirector holds the request and will forward it itself at a
    later window boundary (explicit queuing)."""


Decision = Union[Redirect, Defer, Drop, Held]


class RedirectorAPI(Protocol):
    """What clients need from any redirector implementation."""

    def handle(self, request: Request, done=None) -> Decision:  # pragma: no cover
        ...


def _merge_windows(
    windows: List[Tuple[float, float]],
) -> Tuple[List[float], List[float]]:
    """Sorted, overlap-merged window boundaries for bisect lookups."""
    starts: List[float] = []
    ends: List[float] = []
    for t0, t1 in sorted(windows):
        if starts and t0 <= ends[-1]:
            if t1 > ends[-1]:
                ends[-1] = t1
        else:
            starts.append(t0)
            ends.append(t1)
    return starts, ends


class ClientMachine:
    """One rate-bounded client machine issuing requests for a principal."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        principal: str,
        redirector: RedirectorAPI,
        rate: float,
        rng: np.random.Generator,
        active_windows: Optional[List[Tuple[float, float]]] = None,
        mix: Optional[RequestMix] = None,
        retry_delay: float = 0.2,
        retry_jitter: float = 0.5,
        max_retry_pool: Optional[int] = None,
        mode: str = "open",
        users: int = 8,
        think: float = 0.0,
        jitter: float = 0.0,
        arrivals: str = "uniform",
        on_response: Optional[Callable[[Request], None]] = None,
        fast_lane: bool = True,
        stream_chunk: int = 1024,
        rt_reservoir: int = 4096,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if mode not in ("open", "closed"):
            raise ValueError(f"unknown mode {mode!r}")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        self.sim = sim
        self.name = name
        self.principal = principal
        self.redirector = redirector
        self.rate = float(rate)
        self.rng = rng
        self.active_windows = active_windows  # None = always active
        self.mix = mix or RequestMix()
        self.retry_delay = float(retry_delay)
        # Jitter decorrelates retries from window boundaries: a retry delay
        # that is an exact multiple of the scheduling window makes deferred
        # bursts resonate (alternating heavy/light windows).
        self.retry_jitter = float(retry_jitter)
        # Default pool: half a second of offered load.  Bounds both memory
        # and the retry-storm rate under sustained overload (a retry can at
        # most double the offered load at the default retry_delay).
        self.max_retry_pool = (
            int(max_retry_pool) if max_retry_pool is not None else max(8, int(0.5 * rate))
        )
        self.mode = mode
        self.users = int(users)
        self.think = float(think)
        self.jitter = float(jitter)
        self.arrivals = arrivals
        self.on_response = on_response
        self.fast_lane = bool(fast_lane)

        if active_windows is None:
            self._win_starts: Optional[List[float]] = None
            self._win_ends: Optional[List[float]] = None
        else:
            self._win_starts, self._win_ends = _merge_windows(list(active_windows))

        self.issued = 0
        self.admitted = 0
        self.completed = 0
        self.deferred = 0
        self.dropped = 0
        self.response_stats = StreamingStats(
            reservoir=rt_reservoir, seed=zlib.crc32(name.encode("utf-8")) or 1
        )
        self._retry_pool = 0

        self._stream: Optional[WorkloadStream] = None
        if self.fast_lane:
            self._stream = WorkloadStream(
                self.mix, rng, chunk=stream_chunk,
                rate=self.rate if mode == "open" else None,
                arrivals=arrivals, jitter=self.jitter,
            )

        if mode == "open":
            if self.fast_lane:
                sim.schedule(0.0, self._open_tick)
            else:
                sim.process(self._open_loop(), name=f"client[{name}]")
        else:
            for u in range(self.users):
                sim.process(self._closed_user(u), name=f"client[{name}]#{u}")

    # -- measurements ---------------------------------------------------------

    @property
    def response_times(self) -> List[float]:
        """Recorded response-time samples (the full set while the run is
        within the reservoir capacity, a uniform sample beyond it)."""
        return self.response_stats.samples

    # -- activity -------------------------------------------------------------

    def is_active(self, t: float) -> bool:
        starts = self._win_starts
        if starts is None:
            return True
        i = bisect_right(starts, t) - 1
        return i >= 0 and t < self._win_ends[i]

    def _next_activity_start(self, t: float) -> Optional[float]:
        starts = self._win_starts or []
        i = bisect_right(starts, t)
        return starts[i] if i < len(starts) else None

    # -- open-loop generation ------------------------------------------------

    def _open_tick(self) -> None:
        """Fast-lane open loop: one self-rescheduling heap callback per
        request — no generator, no per-request Timer."""
        sim = self.sim
        now = sim.now
        if not self.is_active(now):
            nxt = self._next_activity_start(now)
            if nxt is not None:
                sim.schedule_at(nxt, self._open_tick)
            return
        url, size, cost, gap = self._stream.draw_next()
        req = Request(
            principal=self.principal,
            client_id=self.name,
            created_at=now,
            size_bytes=size,
            cost=cost,
            url=url,
        )
        self.issued += 1
        self._dispatch(req)
        sim.schedule(gap, self._open_tick)

    def _open_loop(self):
        """Scalar open loop (``fast_lane=False``): the pre-fast-lane path,
        kept for A/B comparisons."""
        spacing = 1.0 / self.rate
        while True:
            now = self.sim.now
            if not self.is_active(now):
                nxt = self._next_activity_start(now)
                if nxt is None:
                    return  # no future activity; stop the generator
                yield nxt - now
                continue
            self._issue_fresh()
            if self.arrivals == "poisson":
                gap = float(self.rng.exponential(spacing))
            else:
                gap = spacing
                if self.jitter > 0:
                    gap *= 1.0 + float(self.rng.uniform(-self.jitter, self.jitter))
            yield gap

    def _issue_fresh(self) -> None:
        url, size, cost = self.mix.draw(self.rng)
        req = Request(
            principal=self.principal,
            client_id=self.name,
            created_at=self.sim.now,
            size_bytes=size,
            cost=cost,
            url=url,
        )
        self.issued += 1
        self._dispatch(req)

    def _dispatch(self, req: Request) -> None:
        req.attempts += 1
        decision = self.redirector.handle(req, done=self._on_done)
        if isinstance(decision, Redirect):
            if decision.server.submit(req, done=self._on_done):
                self.admitted += 1
                return
            # Server-side rejection (bounded queue, or end-point
            # enforcement): behaves like a deferral to the client.
            decision = Defer()
        if isinstance(decision, Held):
            self.admitted += 1  # the redirector owns it now
        elif isinstance(decision, Defer):
            self.deferred += 1
            if self._retry_pool >= self.max_retry_pool:
                self.dropped += 1
                return
            self._retry_pool += 1
            self.sim.schedule(self._retry_after() + decision.delay, self._retry, req)
        elif isinstance(decision, Drop):
            self.dropped += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected decision {decision!r}")

    def _retry_after(self) -> float:
        if self.retry_jitter <= 0:
            return self.retry_delay
        lo = 1.0 - self.retry_jitter
        hi = 1.0 + self.retry_jitter
        return self.retry_delay * float(self.rng.uniform(lo, hi))

    def _retry(self, req: Request) -> None:
        self._retry_pool -= 1
        if not self.is_active(self.sim.now):
            self.dropped += 1
            return
        self._dispatch(req)

    def _on_done(self, req: Request) -> None:
        self.completed += 1
        completed_at = req.completed_at
        if completed_at is not None:
            self.response_stats.add(completed_at - req.created_at)
        if self.on_response is not None:
            self.on_response(req)

    # -- closed-loop users ----------------------------------------------------------

    def _draw_fields(self) -> Tuple[str, int, float]:
        if self._stream is not None:
            url, size, cost, _gap = self._stream.draw_next()
            return url, size, cost
        return self.mix.draw(self.rng)

    def _closed_user(self, user_id: int):
        # Stagger user start so users do not lock-step.
        yield float(self.rng.uniform(0.0, self.users / self.rate))
        while True:
            now = self.sim.now
            if not self.is_active(now):
                nxt = self._next_activity_start(now)
                if nxt is None:
                    return
                yield nxt - now
                continue
            url, size, cost = self._draw_fields()
            req = Request(
                principal=self.principal,
                client_id=self.name,
                created_at=now,
                size_bytes=size,
                cost=cost,
                url=url,
            )
            self.issued += 1
            served = yield from self._closed_dispatch(req)
            if served and self.think > 0:
                yield float(self.rng.exponential(self.think))

    def _closed_dispatch(self, req: Request):
        while True:
            req.attempts += 1
            done = self.sim.event(f"resp-{req.request_id}")
            decision = self.redirector.handle(req, done=lambda r: done.succeed(r))
            if isinstance(decision, Redirect):
                if decision.server.submit(req, done=lambda r: done.succeed(r)):
                    self.admitted += 1
                    yield done
                    self._on_done(req)
                    return True
                # Queue overflow at the server: without this the ``done``
                # event never fires and the virtual user would hang forever
                # — treat it as a deferral, like the open loop does.
                decision = Defer()
            if isinstance(decision, Held):
                self.admitted += 1
                yield done
                self._on_done(req)
                return True
            if isinstance(decision, Defer):
                self.deferred += 1
                yield self._retry_after() + decision.delay
                continue
            self.dropped += 1
            return False
