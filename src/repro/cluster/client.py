"""WebBench-like client machines.

A client machine generates requests for one principal at a bounded rate —
the paper's clients top out at 400 req/s natively, or 135 req/s when
fronted by the proxy the L7 experiments needed.  Clients obey the
redirector's decision: a *redirect* sends the request to the assigned
server; a *defer* (the L7 self-redirect / L4 queueing) makes the client
retry after a delay; requests whose retry pool overflows are dropped, so
offered load stays bounded under sustained overload.

Two generation modes:

- ``open`` (default) — fixed-spacing arrivals at ``rate`` while the phase
  schedule says the client is active; this is what the paper's figures
  measure against.
- ``closed`` — ``users`` virtual users in issue/response/think loops,
  useful for response-time experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.cluster.workload import RequestMix
from repro.sim.engine import Simulator

__all__ = ["ClientMachine", "Redirect", "Defer", "Drop", "Held", "RedirectorAPI"]


@dataclass(frozen=True)
class Redirect:
    """Forward the request to this server (HTTP 302 / NAT rewrite)."""

    server: Server


@dataclass(frozen=True)
class Defer:
    """Not admitted this window; client should retry (self-redirect)."""

    delay: float = 0.0


@dataclass(frozen=True)
class Drop:
    """Reject outright (used by bounded-queue configurations)."""


@dataclass(frozen=True)
class Held:
    """The redirector holds the request and will forward it itself at a
    later window boundary (explicit queuing)."""


Decision = Union[Redirect, Defer, Drop, Held]


class RedirectorAPI(Protocol):
    """What clients need from any redirector implementation."""

    def handle(self, request: Request, done=None) -> Decision:  # pragma: no cover
        ...


class ClientMachine:
    """One rate-bounded client machine issuing requests for a principal."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        principal: str,
        redirector: RedirectorAPI,
        rate: float,
        rng: np.random.Generator,
        active_windows: Optional[List[Tuple[float, float]]] = None,
        mix: Optional[RequestMix] = None,
        retry_delay: float = 0.2,
        retry_jitter: float = 0.5,
        max_retry_pool: Optional[int] = None,
        mode: str = "open",
        users: int = 8,
        think: float = 0.0,
        jitter: float = 0.0,
        arrivals: str = "uniform",
        on_response: Optional[Callable[[Request], None]] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if mode not in ("open", "closed"):
            raise ValueError(f"unknown mode {mode!r}")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        self.sim = sim
        self.name = name
        self.principal = principal
        self.redirector = redirector
        self.rate = float(rate)
        self.rng = rng
        self.active_windows = active_windows  # None = always active
        self.mix = mix or RequestMix()
        self.retry_delay = float(retry_delay)
        # Jitter decorrelates retries from window boundaries: a retry delay
        # that is an exact multiple of the scheduling window makes deferred
        # bursts resonate (alternating heavy/light windows).
        self.retry_jitter = float(retry_jitter)
        # Default pool: half a second of offered load.  Bounds both memory
        # and the retry-storm rate under sustained overload (a retry can at
        # most double the offered load at the default retry_delay).
        self.max_retry_pool = (
            int(max_retry_pool) if max_retry_pool is not None else max(8, int(0.5 * rate))
        )
        self.mode = mode
        self.users = int(users)
        self.think = float(think)
        self.jitter = float(jitter)
        self.arrivals = arrivals
        self.on_response = on_response

        self.issued = 0
        self.admitted = 0
        self.completed = 0
        self.deferred = 0
        self.dropped = 0
        self.response_times: List[float] = []
        self._retry_pool = 0

        if mode == "open":
            sim.process(self._open_loop(), name=f"client[{name}]")
        else:
            for u in range(self.users):
                sim.process(self._closed_user(u), name=f"client[{name}]#{u}")

    # -- activity -------------------------------------------------------------

    def is_active(self, t: float) -> bool:
        if self.active_windows is None:
            return True
        return any(t0 <= t < t1 for t0, t1 in self.active_windows)

    def _next_activity_start(self, t: float) -> Optional[float]:
        starts = [t0 for t0, t1 in (self.active_windows or []) if t0 > t]
        return min(starts) if starts else None

    # -- open-loop generation ------------------------------------------------

    def _open_loop(self):
        spacing = 1.0 / self.rate
        while True:
            now = self.sim.now
            if not self.is_active(now):
                nxt = self._next_activity_start(now)
                if nxt is None:
                    return  # no future activity; stop the generator
                yield nxt - now
                continue
            self._issue_fresh()
            if self.arrivals == "poisson":
                gap = float(self.rng.exponential(spacing))
            else:
                gap = spacing
                if self.jitter > 0:
                    gap *= 1.0 + float(self.rng.uniform(-self.jitter, self.jitter))
            yield gap

    def _issue_fresh(self) -> None:
        url, size, cost = self.mix.draw(self.rng)
        req = Request(
            principal=self.principal,
            client_id=self.name,
            created_at=self.sim.now,
            size_bytes=size,
            cost=cost,
            url=url,
        )
        self.issued += 1
        self._dispatch(req)

    def _dispatch(self, req: Request) -> None:
        req.attempts += 1
        decision = self.redirector.handle(req, done=self._on_done)
        if isinstance(decision, Redirect):
            if decision.server.submit(req, done=self._on_done):
                self.admitted += 1
                return
            # Server-side rejection (bounded queue, or end-point
            # enforcement): behaves like a deferral to the client.
            decision = Defer()
        if isinstance(decision, Held):
            self.admitted += 1  # the redirector owns it now
        elif isinstance(decision, Defer):
            self.deferred += 1
            if self._retry_pool >= self.max_retry_pool:
                self.dropped += 1
                return
            self._retry_pool += 1
            self.sim.schedule(self._retry_after() + decision.delay, self._retry, req)
        elif isinstance(decision, Drop):
            self.dropped += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected decision {decision!r}")

    def _retry_after(self) -> float:
        if self.retry_jitter <= 0:
            return self.retry_delay
        lo = 1.0 - self.retry_jitter
        hi = 1.0 + self.retry_jitter
        return self.retry_delay * float(self.rng.uniform(lo, hi))

    def _retry(self, req: Request) -> None:
        self._retry_pool -= 1
        if not self.is_active(self.sim.now):
            self.dropped += 1
            return
        self._dispatch(req)

    def _on_done(self, req: Request) -> None:
        self.completed += 1
        rt = req.response_time
        if rt is not None:
            self.response_times.append(rt)
        if self.on_response is not None:
            self.on_response(req)

    # -- closed-loop users ----------------------------------------------------------

    def _closed_user(self, user_id: int):
        # Stagger user start so users do not lock-step.
        yield float(self.rng.uniform(0.0, self.users / self.rate))
        while True:
            now = self.sim.now
            if not self.is_active(now):
                nxt = self._next_activity_start(now)
                if nxt is None:
                    return
                yield nxt - now
                continue
            url, size, cost = self.mix.draw(self.rng)
            req = Request(
                principal=self.principal,
                client_id=self.name,
                created_at=now,
                size_bytes=size,
                cost=cost,
                url=url,
            )
            self.issued += 1
            served = yield from self._closed_dispatch(req)
            if served and self.think > 0:
                yield float(self.rng.exponential(self.think))

    def _closed_dispatch(self, req: Request):
        while True:
            req.attempts += 1
            done = self.sim.event(f"resp-{req.request_id}")
            decision = self.redirector.handle(req, done=lambda r: done.succeed(r))
            if isinstance(decision, Redirect):
                self.admitted += 1
                decision.server.submit(req, done=lambda r: done.succeed(r))
                yield done
                self._on_done(req)
                return True
            if isinstance(decision, Held):
                self.admitted += 1
                yield done
                self._on_done(req)
                return True
            if isinstance(decision, Defer):
                self.deferred += 1
                yield self._retry_after() + decision.delay
                continue
            self.dropped += 1
            return False
