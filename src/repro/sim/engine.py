"""Event-driven simulation kernel.

A deliberately small simpy-like core: a :class:`Simulator` owns a binary
heap of timestamped events; :class:`Process` wraps a Python generator that
yields either a float delay, an :class:`Event` to wait on, or another
process.  The kernel is single-threaded and deterministic — ties are broken
by a monotonically increasing sequence number, so two runs with the same
seeds produce identical traces.

Design notes (HPC idioms): the hot loop avoids attribute lookups by binding
locals, events are plain ``__slots__`` objects, and cancelled events are
lazily discarded instead of being removed from the heap (the standard
"tombstone" trick, O(log n) amortised).  Two additions keep the heap lean
on long runs:

- *Tombstone compaction*: cancellations (process timeouts invalidated by an
  interrupt or event resume, :meth:`Timer.cancel`) are counted, and when
  dead entries exceed half the heap it is rebuilt without them — one O(n)
  ``heapify`` that preserves the ``(time, seq)`` dispatch order exactly, so
  long runs with churning timers keep bounded memory.
- *Periodic-event fast path*: :meth:`Simulator.every` timers (the
  per-window ticks that dominate heap traffic) self-reschedule as plain
  heap entries instead of driving a generator process.  The fast path
  consumes exactly the same sequence numbers at the same timestamps as the
  process-based path, so simulations are bit-identical with it on or off
  (``Simulator(fast_periodic=False)`` selects the generator path).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator", "Event", "Process", "Interrupt", "SimulationError",
    "Timer", "PeriodicTimer",
]

# Compaction floor: below this many tombstones a rebuild is not worth it.
_COMPACT_MIN = 64


def _fire(timer: "_TimerBase") -> None:
    """Heap trampoline for timers; module-level so dead entries are cheap
    to recognise (``entry[2] is _fire and entry[3][0].cancelled``)."""
    timer._fire()


class _TimerBase:
    """Shared cancellation bookkeeping for heap-scheduled timers."""

    __slots__ = ("sim", "cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the timer; its heap entry becomes a counted tombstone."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        sim._dead += 1
        if sim._dead >= _COMPACT_MIN and sim._dead * 2 > len(sim._heap):
            sim._compact()


class Timer(_TimerBase):
    """A cancellable one-shot callback (see :meth:`Simulator.call_later`)."""

    __slots__ = ("fn", "args")

    def __init__(self, sim: "Simulator", fn: Callable, args: tuple) -> None:
        super().__init__(sim)
        self.fn = fn
        self.args = args

    def _fire(self) -> None:
        if self.cancelled:
            self.sim._dead -= 1
            return
        self.cancelled = True   # fired: a later cancel() must be a no-op
        self.fn(*self.args)


class PeriodicTimer(_TimerBase):
    """A self-rescheduling periodic callback (see :meth:`Simulator.every`).

    ``start`` (when not None) is a one-shot initial delay consumed by the
    first firing, mirroring the generator path's ``yield start`` tick —
    same sequence-number consumption, same timestamps.
    """

    __slots__ = ("fn", "args", "period", "start")

    def __init__(self, sim: "Simulator", fn: Callable, args: tuple,
                 period: float, start: Optional[float] = None):
        super().__init__(sim)
        self.fn = fn
        self.args = args
        self.period = period
        self.start = start

    def _fire(self) -> None:
        sim = self.sim
        if self.cancelled:
            sim._dead -= 1
            return
        if self.start is not None:
            delay, self.start = self.start, None
            sim.schedule(delay, _fire, self)
            return
        self.fn(*self.args)
        sim.schedule(self.period, _fire, self)


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it, resuming every waiting process with the event's value.
    Events may be triggered at most once.
    """

    __slots__ = ("sim", "_value", "_exc", "triggered", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self._waiters: list[Process] = []

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._value = value
        for proc in self._waiters:
            self.sim._resume(proc, value, None)
        self._waiters.clear()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._exc = exc
        for proc in self._waiters:
            self.sim._resume(proc, None, exc)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._resume(proc, self._value, self._exc)
        else:
            self._waiters.append(proc)


class Process:
    """A generator-driven simulation process.

    The wrapped generator may yield:

    - ``float``/``int`` — sleep for that many simulated seconds;
    - :class:`Event` — suspend until the event triggers;
    - :class:`Process` — suspend until that process terminates.

    A process is itself an event-like object: other processes can wait for
    its completion, and :meth:`interrupt` throws :class:`Interrupt` into it.
    """

    __slots__ = ("sim", "gen", "name", "alive", "value", "_done_event", "_timer")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self._done_event = Event(sim, name=f"{self.name}.done")
        # The currently armed wake-up timer; cancelled (leaving a counted
        # tombstone) when the process is resumed some other way.
        self._timer: Optional[Timer] = None

    @property
    def done(self) -> Event:
        return self._done_event

    def interrupt(self, cause: Any = None) -> None:
        if not self.alive:
            return
        self.sim._resume(self, None, Interrupt(cause))

    # -- kernel interface -------------------------------------------------

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.value = stop.value
            self._done_event.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as termination.
            self.alive = False
            self._done_event.succeed(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        sim = self.sim
        if isinstance(target, (int, float)):
            timer = Timer(sim, self._timeout_fired, ())
            self._timer = timer
            sim.schedule(float(target), _fire, timer)
        elif isinstance(target, Process):
            target._done_event._add_waiter(self)
        elif isinstance(target, Event):
            target._add_waiter(self)
        else:
            self.gen.throw(
                SimulationError(f"process {self.name!r} yielded {target!r}")
            )

    def _timeout_fired(self) -> None:
        self._timer = None
        if self.alive:
            self._step(None, None)


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> out = []
    >>> def worker():
    ...     yield 1.5
    ...     out.append(sim.now)
    >>> _ = sim.process(worker())
    >>> sim.run(until=10)
    >>> out
    [1.5]
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_dead", "fast_periodic")

    def __init__(self, fast_periodic: bool = True) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False
        self._dead = 0          # cancelled-timer tombstones still in the heap
        self.fast_periodic = fast_periodic

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Live (non-tombstoned) events still queued."""
        return len(self._heap) - self._dead

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # SIM004 contract: `_seq` gives every entry a total order, so
        # equal-time events pop in push order (fn/args never compared).
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        Pushes ``when`` exactly (no now-relative round trip, which could
        lose a ULP and reorder same-time events).
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule into the past (t={when})")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, gen, name)
        self.schedule(0.0, proc._step, None, None)
        return proc

    def call_later(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Like :meth:`schedule`, but returns a cancellable :class:`Timer`.

        A cancelled timer's heap entry becomes a tombstone, counted toward
        the compaction threshold (see module docstring).
        """
        timer = Timer(self, fn, args)
        self.schedule(delay, _fire, timer)
        return timer

    def every(self, period: float, fn: Callable, *args: Any,
              start: float = 0.0):
        """Call ``fn(*args)`` every ``period`` seconds forever.

        With ``fast_periodic`` (the default) this is a self-rescheduling
        heap entry — no generator, no process bookkeeping — returning a
        cancellable :class:`PeriodicTimer`.  With ``fast_periodic=False``
        the original generator-process path is used (it consumes identical
        sequence numbers, so both paths produce bit-identical simulations).
        """
        if self.fast_periodic:
            timer = PeriodicTimer(
                self, fn, args, period, start=start if start > 0 else None
            )
            self.schedule(0.0, _fire, timer)
            return timer

        def _ticker() -> Generator[float, Any, None]:
            if start > 0:
                yield start
            while True:
                fn(*args)
                yield period
        return self.process(_ticker(), name=f"every({getattr(fn, '__name__', 'fn')})")

    def _compact(self) -> None:
        """Rebuild the heap without cancelled-timer tombstones.

        ``heapify`` re-establishes the invariant over the surviving
        ``(time, seq)`` tuples, so dispatch order is unchanged.  In-place
        (slice assignment) because :meth:`run` holds a local binding to the
        heap list while dispatching."""
        survivors = [
            entry for entry in self._heap
            if not (entry[2] is _fire and entry[3][0].cancelled)
        ]
        self._heap[:] = survivors
        heapq.heapify(self._heap)
        self._dead = 0

    def _resume(self, proc: Process, value: Any, exc: Optional[BaseException]) -> None:
        if proc.alive:
            timer = proc._timer
            if timer is not None:     # invalidate armed timeout, if any
                timer.cancel()
                proc._timer = None
            self.schedule(0.0, proc._step, value, exc)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order until the horizon (or drain)."""
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                when, _seq, fn, args = heap[0]
                if until is not None and when > until:
                    break
                pop(heap)
                self._now = when
                fn(*args)
            if until is not None and (not heap or self._now < until):
                self._now = until
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if drained."""
        return self._heap[0][0] if self._heap else None

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every input event has triggered."""
        events = list(events)
        done = self.event("all_of")
        remaining = [len(events)]
        if remaining[0] == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * len(events)

        def _arm(i: int, ev: Event) -> None:
            def waiter() -> Generator[Event, Any, None]:
                values[i] = yield ev
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))
            self.process(waiter(), name=f"all_of[{i}]")

        for i, ev in enumerate(events):
            _arm(i, ev)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when the first input event triggers."""
        done = self.event("any_of")

        def _arm(ev: Event) -> None:
            def waiter() -> Generator[Event, Any, None]:
                val = yield ev
                if not done.triggered:
                    done.succeed(val)
            self.process(waiter(), name="any_of")

        for ev in events:
            _arm(ev)
        return done
