"""Event-driven simulation kernel.

A deliberately small simpy-like core: a :class:`Simulator` owns a binary
heap of timestamped events; :class:`Process` wraps a Python generator that
yields either a float delay, an :class:`Event` to wait on, or another
process.  The kernel is single-threaded and deterministic — ties are broken
by a monotonically increasing sequence number, so two runs with the same
seeds produce identical traces.

Design notes (HPC idioms): the hot loop avoids attribute lookups by binding
locals, events are plain ``__slots__`` objects, and cancelled events are
lazily discarded instead of being removed from the heap (the standard
"tombstone" trick, O(log n) amortised).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Simulator", "Event", "Process", "Interrupt", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it, resuming every waiting process with the event's value.
    Events may be triggered at most once.
    """

    __slots__ = ("sim", "_value", "_exc", "triggered", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self._waiters: list[Process] = []

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._value = value
        for proc in self._waiters:
            self.sim._resume(proc, value, None)
        self._waiters.clear()
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self._exc = exc
        for proc in self._waiters:
            self.sim._resume(proc, None, exc)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._resume(proc, self._value, self._exc)
        else:
            self._waiters.append(proc)


class Process:
    """A generator-driven simulation process.

    The wrapped generator may yield:

    - ``float``/``int`` — sleep for that many simulated seconds;
    - :class:`Event` — suspend until the event triggers;
    - :class:`Process` — suspend until that process terminates.

    A process is itself an event-like object: other processes can wait for
    its completion, and :meth:`interrupt` throws :class:`Interrupt` into it.
    """

    __slots__ = ("sim", "gen", "name", "alive", "value", "_done_event", "_pending_timeout")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self._done_event = Event(sim, name=f"{self.name}.done")
        # Token identifying the currently armed wake-up; bumping it cancels
        # a pending timeout when the process is resumed some other way.
        self._pending_timeout = 0

    @property
    def done(self) -> Event:
        return self._done_event

    def interrupt(self, cause: Any = None) -> None:
        if not self.alive:
            return
        self._pending_timeout += 1  # cancel any armed timeout
        self.sim._resume(self, None, Interrupt(cause))

    # -- kernel interface -------------------------------------------------

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.value = stop.value
            self._done_event.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as termination.
            self.alive = False
            self._done_event.succeed(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        sim = self.sim
        if isinstance(target, (int, float)):
            self._pending_timeout += 1
            token = self._pending_timeout
            sim.schedule(float(target), self._timeout_fired, token)
        elif isinstance(target, Process):
            target._done_event._add_waiter(self)
        elif isinstance(target, Event):
            target._add_waiter(self)
        else:
            self.gen.throw(
                SimulationError(f"process {self.name!r} yielded {target!r}")
            )

    def _timeout_fired(self, token: int) -> None:
        if token == self._pending_timeout and self.alive:
            self._step(None, None)


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> out = []
    >>> def worker():
    ...     yield 1.5
    ...     out.append(sim.now)
    >>> _ = sim.process(worker())
    >>> sim.run(until=10)
    >>> out
    [1.5]
    """

    __slots__ = ("_now", "_heap", "_seq", "_running")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        Pushes ``when`` exactly (no now-relative round trip, which could
        lose a ULP and reorder same-time events).
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule into the past (t={when})")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; it starts at the current time."""
        proc = Process(self, gen, name)
        self.schedule(0.0, proc._step, None, None)
        return proc

    def every(self, period: float, fn: Callable, *args: Any,
              start: float = 0.0) -> Process:
        """Convenience: call ``fn(*args)`` every ``period`` seconds forever."""
        def _ticker():
            if start > 0:
                yield start
            while True:
                fn(*args)
                yield period
        return self.process(_ticker(), name=f"every({getattr(fn, '__name__', 'fn')})")

    def _resume(self, proc: Process, value: Any, exc: Optional[BaseException]) -> None:
        if proc.alive:
            proc._pending_timeout += 1  # invalidate armed timeout, if any
            self.schedule(0.0, proc._step, value, exc)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in timestamp order until the horizon (or drain)."""
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                when, _seq, fn, args = heap[0]
                if until is not None and when > until:
                    break
                pop(heap)
                self._now = when
                fn(*args)
            if until is not None and (not heap or self._now < until):
                self._now = until
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if drained."""
        return self._heap[0][0] if self._heap else None

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every input event has triggered."""
        events = list(events)
        done = self.event("all_of")
        remaining = [len(events)]
        if remaining[0] == 0:
            done.succeed([])
            return done
        values: list[Any] = [None] * len(events)

        def _arm(i: int, ev: Event) -> None:
            def waiter():
                values[i] = yield ev
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))
            self.process(waiter(), name=f"all_of[{i}]")

        for i, ev in enumerate(events):
            _arm(i, ev)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when the first input event triggers."""
        done = self.event("any_of")

        def _arm(ev: Event) -> None:
            def waiter():
                val = yield ev
                if not done.triggered:
                    done.succeed(val)
            self.process(waiter(), name="any_of")

        for ev in events:
            _arm(ev)
        return done
