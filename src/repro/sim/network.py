"""Latency-modelled message delivery between simulation endpoints.

The combining-tree protocol (paper §3.2) and the Fig 8 WAN-delay experiment
only require point-to-point delivery with a configurable propagation delay;
:class:`Link` provides exactly that, with optional jitter and in-order
delivery (messages on one link never overtake each other, matching TCP).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import Simulator

__all__ = ["Endpoint", "Link"]


class Endpoint:
    """Anything that can receive messages: override :meth:`on_message`."""

    def on_message(self, msg: Any, sender: "Endpoint") -> None:  # pragma: no cover
        raise NotImplementedError


class Link:
    """Unidirectional point-to-point link with propagation delay.

    Delivery is in-order: if jitter would reorder two messages, the later
    one is held back until the earlier has been delivered.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Endpoint,
        dst: Endpoint,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self.rng = rng
        self.on_deliver = on_deliver
        self._last_delivery = 0.0
        self.sent = 0
        self.delivered = 0
        self.lost = 0

    def send(self, msg: Any) -> None:
        if (self.jitter > 0.0 or self.loss > 0.0) and self.rng is None:
            raise ValueError("jitter/loss require an rng")
        if self.loss > 0.0 and float(self.rng.random()) < self.loss:
            self.sent += 1
            self.lost += 1
            return
        d = self.delay
        if self.jitter > 0.0:
            d += float(self.rng.uniform(0.0, self.jitter))
        arrival = self.sim.now + d
        if arrival < self._last_delivery:  # enforce FIFO ordering
            arrival = self._last_delivery
        self._last_delivery = arrival
        self.sent += 1
        self.sim.schedule_at(arrival, self._deliver, msg)

    def _deliver(self, msg: Any) -> None:
        self.delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(msg)
        self.dst.on_message(msg, self.src)
