"""Latency-modelled message delivery between simulation endpoints.

The combining-tree protocol (paper §3.2) and the Fig 8 WAN-delay experiment
only require point-to-point delivery with a configurable propagation delay;
:class:`Link` provides exactly that, with optional jitter and in-order
delivery (messages on one link never overtake each other, matching TCP).

For the fault-injection subsystem (:mod:`repro.faults`) a link is also the
natural place to model network misbehaviour, so every impairment a WAN can
inflict is a link property that can be changed mid-run:

- ``loss`` — drop probability per message;
- ``duplicate`` — probability a message is delivered twice;
- ``reorder`` — probability a message may overtake earlier ones (only
  observable with ``jitter > 0``, which is what spreads arrivals);
- :meth:`cut` / :meth:`restore` — hard partition: sends are blackholed
  (messages already in flight still arrive, like packets that left the
  interface before the cable was pulled).

All stochastic draws come from ``rng`` — in fault scenarios a *per-link
spawned substream* (see :func:`repro.coordination.protocol.build_protocol`),
so one link's perturbation never shifts another link's draws and the same
seed + fault plan replays bit-identically.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import Simulator

__all__ = ["Endpoint", "Link"]


class Endpoint:
    """Anything that can receive messages: override :meth:`on_message`."""

    def on_message(self, msg: Any, sender: "Endpoint") -> None:  # pragma: no cover
        raise NotImplementedError


class Link:
    """Unidirectional point-to-point link with propagation delay.

    Delivery is in-order: if jitter would reorder two messages, the later
    one is held back until the earlier has been delivered — unless a
    ``reorder`` draw explicitly permits the overtake.
    """

    def __init__(
        self,
        sim: Simulator,
        src: Endpoint,
        dst: Endpoint,
        delay: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        on_deliver: Optional[Callable[[Any], None]] = None,
        name: str = "",
    ) -> None:
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        for label, p in (("loss", loss), ("duplicate", duplicate), ("reorder", reorder)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{label} probability must be in [0, 1)")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.delay = float(delay)
        self.jitter = float(jitter)
        self.loss = float(loss)
        self.duplicate = float(duplicate)
        self.reorder = float(reorder)
        self.rng = rng
        self.on_deliver = on_deliver
        self.name = name
        self.up = True
        self._last_delivery = 0.0
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.blackholed = 0
        self.duplicated = 0

    # -- fault controls ----------------------------------------------------

    def cut(self) -> None:
        """Partition this link: subsequent sends are blackholed."""
        self.up = False

    def restore(self) -> None:
        """Heal a cut link: sends flow again."""
        self.up = True

    def set_delay(self, delay: float, jitter: Optional[float] = None) -> None:
        """Change propagation delay (and optionally jitter) mid-run."""
        if delay < 0 or (jitter is not None and jitter < 0):
            raise ValueError("delay and jitter must be non-negative")
        self.delay = float(delay)
        if jitter is not None:
            self.jitter = float(jitter)

    def set_impairment(
        self,
        loss: Optional[float] = None,
        duplicate: Optional[float] = None,
        reorder: Optional[float] = None,
    ) -> None:
        """Change stochastic impairments mid-run (None leaves one as-is)."""
        for label, p in (("loss", loss), ("duplicate", duplicate), ("reorder", reorder)):
            if p is not None and not 0.0 <= p < 1.0:
                raise ValueError(f"{label} probability must be in [0, 1)")
        if loss is not None:
            self.loss = float(loss)
        if duplicate is not None:
            self.duplicate = float(duplicate)
        if reorder is not None:
            self.reorder = float(reorder)

    # -- transmission ------------------------------------------------------

    def send(self, msg: Any) -> None:
        if not self.up:
            self.sent += 1
            self.blackholed += 1
            return
        stochastic = (
            self.jitter > 0.0 or self.loss > 0.0
            or self.duplicate > 0.0 or self.reorder > 0.0
        )
        if stochastic and self.rng is None:
            raise ValueError("jitter/loss/duplicate/reorder require an rng")
        if self.loss > 0.0 and float(self.rng.random()) < self.loss:
            self.sent += 1
            self.lost += 1
            return
        copies = 1
        if self.duplicate > 0.0 and float(self.rng.random()) < self.duplicate:
            copies = 2
            self.duplicated += 1
        self.sent += 1
        for _ in range(copies):
            d = self.delay
            if self.jitter > 0.0:
                d += float(self.rng.uniform(0.0, self.jitter))
            arrival = self.sim.now + d
            overtake = (
                self.reorder > 0.0 and float(self.rng.random()) < self.reorder
            )
            if not overtake:
                if arrival < self._last_delivery:  # enforce FIFO ordering
                    arrival = self._last_delivery
                self._last_delivery = arrival
            self.sim.schedule_at(arrival, self._deliver, msg)

    def _deliver(self, msg: Any) -> None:
        self.delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(msg)
        self.dst.on_message(msg, self.src)
