"""Discrete-event simulation kernel.

This package is the substrate that stands in for the paper's physical
testbed (1 GHz PCs on a 100 Mbps switched LAN).  It provides:

- :class:`repro.sim.engine.Simulator` — a heapq-based event kernel with
  generator-style processes (a deliberately small simpy-like core).
- :class:`repro.sim.network.Link` — latency-modelled message delivery.
- :class:`repro.sim.monitor.RateMeter` / :class:`repro.sim.monitor.TimeSeries`
  — measurement instruments used by the experiment harness.
- :class:`repro.sim.stats.StreamingStats` — bounded running moments +
  reservoir quantiles for per-request measurements at scale.
- :mod:`repro.sim.rng` — reproducible named random substreams.
"""

from repro.sim.engine import (
    Event, Interrupt, PeriodicTimer, Process, Simulator, Timer,
)
from repro.sim.monitor import PhaseStats, RateMeter, TimeSeries
from repro.sim.network import Link, Endpoint
from repro.sim.rng import RngStreams
from repro.sim.stats import StreamingStats
from repro.sim.trace import Tracer

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Interrupt",
    "Timer",
    "PeriodicTimer",
    "Link",
    "Endpoint",
    "RateMeter",
    "TimeSeries",
    "PhaseStats",
    "RngStreams",
    "StreamingStats",
    "Tracer",
]
