"""Reproducible named random substreams.

Every stochastic component (client machines, reply-size sampling, jittered
links) draws from its own independent substream derived from a single root
seed via :class:`numpy.random.SeedSequence`, so adding a component never
perturbs the draws of existing ones — the standard trick for reproducible
parallel/discrete-event experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of independent per-name :class:`numpy.random.Generator` s.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("client:A:0")
    >>> b = streams.get("client:B:0")
    >>> a is streams.get("client:A:0")   # cached
    True
    """

    def __init__(self, seed: int = 0, _entropy: Optional[List[int]] = None) -> None:
        self.seed = int(seed)
        self._entropy = list(_entropy) if _entropy is not None else [self.seed]
        self._cache: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        gen = self._cache.get(name)
        if gen is None:
            # Stable derivation: hash the name into seed entropy on top of
            # this factory's root entropy.
            entropy = self._entropy + [ord(c) for c in name]
            gen = np.random.Generator(np.random.Philox(np.random.SeedSequence(entropy)))
            self._cache[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        return RngStreams(
            seed=self.seed,
            _entropy=self._entropy + [ord(c) for c in name] + [0x5EED],
        )
