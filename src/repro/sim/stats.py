"""Bounded streaming statistics.

Long scale runs complete millions of requests; keeping every response time
in a Python list (the previous ``ClientMachine.response_times``) grows
without bound and dominates memory at the benchmark tier.
:class:`StreamingStats` replaces it with O(1) running moments (count, mean,
M2 — Welford's algorithm, numerically stable) plus an optional bounded
reservoir for quantiles.

The reservoir is classic Algorithm R with a deterministic xorshift64*
index stream (seeded per instance), so runs are reproducible without
touching the simulation's named numpy substreams.  While ``count`` is
within the reservoir capacity the samples are simply *all* observations in
insertion order, so small runs report exact quantiles — only beyond the
cap do quantiles become reservoir estimates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["StreamingStats"]

_MASK64 = (1 << 64) - 1


class StreamingStats:
    """Running count/mean/M2 with an optional fixed-size sample reservoir.

    >>> st = StreamingStats(reservoir=8)
    >>> for x in (1.0, 2.0, 3.0):
    ...     st.add(x)
    >>> st.count, st.mean, st.std
    (3, 2.0, 1.0)
    """

    __slots__ = (
        "count", "mean", "_m2", "min", "max",
        "_cap", "_samples", "_sample_seq", "_state",
    )

    def __init__(self, reservoir: int = 4096, seed: int = 0x9E3779B9) -> None:
        if reservoir < 0:
            raise ValueError("reservoir must be >= 0")
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._cap = int(reservoir)
        self._samples: List[float] = []
        # Original observation index of each reservoir slot, so callers can
        # trim warm-up samples by insertion order even after replacements.
        self._sample_seq: List[int] = []
        self._state = (int(seed) | 1) & _MASK64

    def add(self, x: float) -> None:
        n = self.count + 1
        self.count = n
        delta = x - self.mean
        self.mean += delta / n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        cap = self._cap
        if not cap:
            return
        if n <= cap:
            self._samples.append(x)
            self._sample_seq.append(n - 1)
            return
        # Algorithm R: replace a random slot with probability cap/n.
        s = self._state
        s = (s ^ (s << 13)) & _MASK64
        s ^= s >> 7
        s = (s ^ (s << 17)) & _MASK64
        self._state = s
        j = s % n
        if j < cap:
            self._samples[j] = x
            self._sample_seq[j] = n - 1

    def update_many(self, values, weights=None) -> None:
        """Fold a batch of observations in — the columnar lane's bulk path.

        Without ``weights`` this is *bit-identical* to ``for x in values:
        self.add(x)``: Welford's recurrence and the reservoir's xorshift
        index stream are inherently sequential, so the moments are replayed
        element-wise with all state hoisted into locals (one method call
        per batch instead of per sample) and min/max reduced vectorised.

        With ``weights`` the batch is folded as *frequency-weighted*
        observations (West 1979): ``count`` grows by the weight sum and the
        moments match repeating each value ``w`` times, but the reservoir
        only sees the distinct values once — weighted batches are a moments
        contract, not a sample-stream one.
        """
        vals = np.asarray(values, dtype=float)
        if vals.ndim != 1:
            vals = vals.ravel()
        if vals.size == 0:
            return
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if w.shape != vals.shape:
                raise ValueError("weights must match values in shape")
            if np.any(w < 0):
                raise ValueError("weights must be non-negative")
            count = float(self.count)
            mean = self.mean
            m2 = self._m2
            for x, wi in zip(vals.tolist(), w.tolist()):
                if wi == 0.0:
                    continue
                count += wi
                delta = x - mean
                mean += (wi / count) * delta
                m2 += wi * delta * (x - mean)
            self.count = int(count)
            self.mean = mean
            self._m2 = m2
            # Zero-weight values occurred zero times: exclude from extrema.
            seen = vals[w > 0.0]
            if seen.size:
                lo = float(seen.min())
                hi = float(seen.max())
                if lo < self.min:
                    self.min = lo
                if hi > self.max:
                    self.max = hi
            return
        lo = float(vals.min())
        hi = float(vals.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        n = self.count
        mean = self.mean
        m2 = self._m2
        cap = self._cap
        samples = self._samples
        sample_seq = self._sample_seq
        s = self._state
        xs = vals.tolist()
        if not cap:
            for x in xs:
                n += 1
                delta = x - mean
                mean += delta / n
                m2 += delta * (x - mean)
        else:
            for x in xs:
                n += 1
                delta = x - mean
                mean += delta / n
                m2 += delta * (x - mean)
                if n <= cap:
                    samples.append(x)
                    sample_seq.append(n - 1)
                    continue
                s = (s ^ (s << 13)) & _MASK64
                s ^= s >> 7
                s = (s ^ (s << 17)) & _MASK64
                j = s % n
                if j < cap:
                    samples[j] = x
                    sample_seq[j] = n - 1
        self.count = n
        self.mean = mean
        self._m2 = m2
        self._state = s

    # -- derived moments ---------------------------------------------------

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 for fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return self.variance ** 0.5

    # -- reservoir access --------------------------------------------------

    @property
    def samples(self) -> List[float]:
        """Reservoir contents (every observation while under capacity)."""
        return list(self._samples)

    def tail_values(self, skip: int) -> List[float]:
        """Reservoir samples whose original index is >= ``skip``.

        Used to discard warm-up transients: while the reservoir is under
        capacity this equals ``all_observations[skip:]`` exactly.
        """
        if skip <= 0:
            return list(self._samples)
        return [
            v for v, s in zip(self._samples, self._sample_seq) if s >= skip
        ]

    def percentile(self, q: float, skip: int = 0) -> Optional[float]:
        """Percentile estimate from the reservoir (None when empty)."""
        vals = self.tail_values(skip)
        if not vals:
            return None
        return float(np.percentile(np.asarray(vals), q))
