"""Structured event tracing for simulation runs.

A bounded, queryable record of what happened — completions, window
allocations, protocol rounds — for debugging experiments whose aggregate
numbers look wrong.  Enable via ``Scenario(..., trace=True)`` and inspect
``scenario.tracer``.

Events are plain dicts with a timestamp and category; the buffer is a ring
so long runs cannot exhaust memory.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Tracer", "TraceEvent"]

TraceEvent = Dict[str, Any]


class Tracer:
    """Bounded in-memory event log.

    >>> tr = Tracer(maxlen=100)
    >>> tr.record(0.5, "completion", principal="A", server="S1")
    >>> tr.count("completion")
    1
    """

    def __init__(self, maxlen: int = 100_000) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.maxlen = int(maxlen)
        self._events: Deque[TraceEvent] = deque(maxlen=self.maxlen)
        self.dropped = 0

    def record(self, t: float, category: str, **fields: Any) -> None:
        if len(self._events) == self.maxlen:
            self.dropped += 1
        event = {"t": float(t), "category": category}
        event.update(fields)
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries ----------------------------------------------------------

    def query(
        self,
        category: Optional[str] = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
        **match: Any,
    ) -> List[TraceEvent]:
        """Events in [t0, t1) with the given category and field values."""
        out = []
        for ev in self._events:
            if category is not None and ev["category"] != category:
                continue
            if not t0 <= ev["t"] < t1:
                continue
            if any(ev.get(k) != v for k, v in match.items()):
                continue
            out.append(ev)
        return out

    def iter(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def count(self, category: Optional[str] = None, **match: Any) -> int:
        return len(self.query(category=category, **match))

    def summary(self) -> Dict[str, int]:
        """Event counts per category."""
        return dict(Counter(ev["category"] for ev in self._events))

    def last(self, category: Optional[str] = None) -> Optional[TraceEvent]:
        for ev in reversed(self._events):
            if category is None or ev["category"] == category:
                return ev
        return None

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
