"""Measurement instruments for simulation runs.

The paper's figures plot per-principal service rates (requests/sec) against
wall-clock time, then discuss phase means.  :class:`RateMeter` reproduces
that measurement: it bins discrete occurrences into fixed-width time bins;
:meth:`RateMeter.series` yields the (time, rate) curve a figure would plot
and :meth:`RateMeter.mean_rate` the steady-state number quoted in the text.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RateMeter", "TimeSeries", "PhaseStats", "summarize_phases"]


class RateMeter:
    """Counts discrete events per key, binned into fixed-width time bins.

    >>> m = RateMeter(bin_width=1.0)
    >>> for t in (0.1, 0.2, 1.5):
    ...     m.record("A", t)
    >>> m.series("A")
    (array([0.5, 1.5]), array([2., 1.]))
    """

    def __init__(self, bin_width: float = 1.0) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = float(bin_width)
        self._bins: Dict[str, Dict[int, float]] = {}

    def record(self, key: str, t: float, weight: float = 1.0) -> None:
        # Hot path (called 2-3x per completed request): plain .get beats
        # setdefault, which builds the default dict on every call.
        bins = self._bins.get(key)
        if bins is None:
            bins = self._bins[key] = {}
        idx = int(t // self.bin_width)
        bins[idx] = bins.get(idx, 0.0) + weight

    def record_many(self, key: str, times, weight: float = 1.0, weights=None) -> None:
        """Record a batch of occurrence times for ``key`` in one call.

        Equivalent to ``for t, w in zip(times, weights): record(key, t, w)``
        (or a constant ``weight`` when ``weights`` is None) but binned with
        one vectorised floor-divide and accumulated via ``np.bincount`` —
        no intermediate Python list.  ``np.bincount`` sums sequentially in
        array order, so batches of integer-valued weights reproduce the
        scalar path's per-bin totals bit-for-bit.
        """
        ts = np.asarray(times, dtype=float)
        if ts.size == 0:
            return
        bins = self._bins.get(key)
        if bins is None:
            bins = self._bins[key] = {}
        idx = np.floor_divide(ts, self.bin_width).astype(np.int64)
        lo = int(idx.min())
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if w.shape != ts.shape:
                raise ValueError("weights must match times in shape")
            counts = np.bincount(idx - lo, weights=w)
        else:
            counts = np.bincount(idx - lo).astype(float)
            if weight != 1.0:
                counts *= weight
        for off in np.flatnonzero(counts).tolist():
            i = lo + off
            bins[i] = bins.get(i, 0.0) + float(counts[off])

    @property
    def keys(self) -> List[str]:
        return sorted(self._bins)

    def total(self, key: str, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Total weight recorded for ``key`` in the half-open window [t0, t1).

        Bins straddling a window boundary are prorated by overlap (events
        are assumed uniform within a bin), so fractional windows are not
        biased by whichever whole bin the boundary lands in.
        """
        if t1 <= t0:
            return 0.0
        bins = self._bins.get(key, {})
        w = self.bin_width
        total = 0.0
        for i, v in bins.items():
            b0, b1 = i * w, (i + 1) * w
            overlap = min(b1, t1) - max(b0, t0)
            if overlap <= 0:
                continue
            total += v * min(1.0, overlap / w)
        return total

    def mean_rate(self, key: str, t0: float, t1: float) -> float:
        """Average rate (events per second) over [t0, t1)."""
        if t1 <= t0:
            raise ValueError("empty window")
        return self.total(key, t0, t1) / (t1 - t0)

    def series(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """(bin-centre times, per-second rates) — the curve a figure plots."""
        bins = self._bins.get(key, {})
        if not bins:
            return np.empty(0), np.empty(0)
        lo, hi = min(bins), max(bins)
        idx = np.arange(lo, hi + 1)
        counts = np.array([bins.get(int(i), 0.0) for i in idx])
        times = (idx + 0.5) * self.bin_width
        return times, counts / self.bin_width


class TimeSeries:
    """Append-only (time, value) series with window statistics."""

    def __init__(self) -> None:
        self._t: List[float] = []
        self._v: List[float] = []

    def record(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._t.append(float(t))
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v)

    def window(self, t0: float, t1: float) -> np.ndarray:
        """Values with timestamps in [t0, t1)."""
        lo = bisect_left(self._t, t0)
        hi = bisect_left(self._t, t1)
        return np.asarray(self._v[lo:hi])

    def mean(self, t0: float, t1: float) -> float:
        vals = self.window(t0, t1)
        return float(vals.mean()) if vals.size else float("nan")

    def last_before(self, t: float) -> Optional[float]:
        idx = bisect_right(self._t, t) - 1
        return self._v[idx] if idx >= 0 else None


@dataclass
class PhaseStats:
    """Per-phase summary of a rate series, mirroring the paper's phase text."""

    name: str
    t0: float
    t1: float
    rates: Dict[str, float] = field(default_factory=dict)

    def rate(self, key: str) -> float:
        return self.rates.get(key, 0.0)


def summarize_phases(
    meter: RateMeter,
    phases: Sequence[Tuple[str, float, float]],
    keys: Optional[Iterable[str]] = None,
    settle: float = 0.0,
) -> List[PhaseStats]:
    """Mean rate per key per phase; ``settle`` trims phase-start transients."""
    keys = list(keys) if keys is not None else meter.keys
    out = []
    for name, t0, t1 in phases:
        start = min(t0 + settle, t1)
        stats = PhaseStats(name=name, t0=t0, t1=t1)
        for k in keys:
            stats.rates[k] = meter.mean_rate(k, start, t1) if t1 > start else 0.0
        out.append(stats)
    return out
