"""Credit-based virtual-time scheduler.

The paper (§6) notes that instead of the explicit queue structures used by
classical fair-queueing/virtual-time systems, "an alternative credit-based
implementation [is] more suitable to our distributed context".  This module
implements that variant: each principal accrues credits at its entitled
rate (mandatory plus an optional share); a request is admitted when the
principal holds enough credits, otherwise deferred.  Credits are bounded by
a burst cap so idle principals cannot bank unlimited service — the analogue
of bounded lag in virtual-time schedulers.

It is API-compatible with :class:`repro.scheduling.queueing.ImplicitQuota`
(``try_admit``), so redirectors can switch admission engines for ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

__all__ = ["CreditScheduler"]


class CreditScheduler:
    """Continuous-time credit accrual admission control.

    Args:
        rates: credit accrual per second per principal (their entitled
            request rate).
        burst: per-principal credit cap, in requests (default: one window's
            worth at 10 windows/sec, i.e. ``rate * 0.1``, floor 1).
    """

    def __init__(self, rates: Mapping[str, float], burst: float = 0.0):
        self.rates: Dict[str, float] = {}
        self.burst: Dict[str, float] = {}
        self._credits: Dict[str, float] = {}
        self._last: Dict[str, float] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}
        for p, r in rates.items():
            if r < 0:
                raise ValueError(f"negative rate for {p!r}")
            self.rates[p] = float(r)
            self.burst[p] = float(burst) if burst > 0 else max(1.0, r * 0.1)
            self._credits[p] = self.burst[p]  # start full: no cold-start penalty
            self._last[p] = 0.0
            self.admitted[p] = 0
            self.rejected[p] = 0

    @property
    def principals(self) -> Iterable[str]:
        return self.rates.keys()

    def set_rate(self, principal: str, rate: float, now: float) -> None:
        """Retarget a principal's accrual rate (schedulers call this per
        window as LP allocations change)."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self._accrue(principal, now)
        self.rates[principal] = float(rate)
        self.burst[principal] = max(1.0, rate * 0.1)

    def credits(self, principal: str, now: float) -> float:
        self._accrue(principal, now)
        return self._credits[principal]

    def try_admit(self, principal: str, now: float, cost: float = 1.0) -> bool:
        if cost <= 0:
            raise ValueError("cost must be positive")
        self._accrue(principal, now)
        if self._credits[principal] >= cost:
            self._credits[principal] -= cost
            self.admitted[principal] += 1
            return True
        self.rejected[principal] += 1
        return False

    def _accrue(self, principal: str, now: float) -> None:
        last = self._last[principal]
        if now < last:
            raise ValueError("time went backwards")
        if now > last:
            c = self._credits[principal] + self.rates[principal] * (now - last)
            self._credits[principal] = min(c, self.burst[principal])
            self._last[principal] = now
