"""Per-principal request queues: explicit and implicit variants (§4.1).

The paper's first Layer-7 prototype used *explicit* queuing — requests are
enqueued and released at window boundaries (:class:`PrincipalQueues`).
Measurements showed this bunches releases at window starts, so the shipped
implementation switched to *implicit* queuing (:class:`ImplicitQuota`):
each window grants every principal a quota; requests within quota are
forwarded immediately, the rest are bounced back to the client with a
self-redirect.  Both are implemented so the ablation benchmark can
reproduce the bunching anomaly the paper describes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["PrincipalQueues", "ImplicitQuota", "QueueStats"]


@dataclass
class QueueStats:
    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    peak: int = 0


class PrincipalQueues:
    """Explicit FIFO queues, one per principal (paper Fig 4, right).

    Entries are ``(item, enqueue_time)`` so response-time accounting can
    include queueing delay.  ``max_depth`` bounds each queue (0 = unbounded);
    arrivals beyond the bound are dropped and counted.
    """

    def __init__(self, principals: Iterable[str], max_depth: int = 0):
        self._q: Dict[str, Deque[Tuple[Any, float]]] = {
            p: deque() for p in principals
        }
        self.max_depth = int(max_depth)
        self.stats: Dict[str, QueueStats] = {p: QueueStats() for p in self._q}

    @property
    def principals(self) -> List[str]:
        return list(self._q)

    def enqueue(self, principal: str, item: Any, now: float) -> bool:
        q = self._q[principal]
        st = self.stats[principal]
        if self.max_depth and len(q) >= self.max_depth:
            st.dropped += 1
            return False
        q.append((item, now))
        st.enqueued += 1
        st.peak = max(st.peak, len(q))
        return True

    def length(self, principal: str) -> int:
        return len(self._q[principal])

    def lengths(self) -> Dict[str, int]:
        return {p: len(q) for p, q in self._q.items()}

    def dequeue_upto(self, principal: str, count: int) -> List[Tuple[Any, float]]:
        """Remove and return up to ``count`` oldest entries (FIFO)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        q = self._q[principal]
        out = []
        for _ in range(min(count, len(q))):
            out.append(q.popleft())
        self.stats[principal].dequeued += len(out)
        return out

    def peek_ages(self, principal: str, now: float) -> List[float]:
        return [now - t for _, t in self._q[principal]]


class ImplicitQuota:
    """Implicit queuing: per-window admission quotas with residual carry.

    The scheduler sets a (possibly fractional) quota per principal per
    window; :meth:`try_admit` consumes it.  Fractional quotas accumulate as
    a carried residual so, e.g., a quota of 0.5/window admits one request
    every two windows instead of rounding to zero forever — this is the
    deterministic rounding distributed redirectors rely on to hit aggregate
    targets despite small local shares.
    """

    def __init__(self, principals: Iterable[str], carry_cap: float = 1.0):
        # carry_cap bounds how much unused quota rolls over (in requests);
        # the paper's windows do not bank unused service, so the cap
        # defaults to under one request (pure rounding residue).
        self._budget: Dict[str, float] = {p: 0.0 for p in principals}
        self.carry_cap = float(carry_cap)
        self.admitted: Dict[str, int] = {p: 0 for p in self._budget}
        self.rejected: Dict[str, int] = {p: 0 for p in self._budget}

    @property
    def principals(self) -> List[str]:
        return list(self._budget)

    def new_window(self, quotas: Mapping[str, float]) -> None:
        """Start a window: carry the bounded fractional residue, then add
        this window's quota.  Carrying the sub-request remainder makes the
        long-run admission rate equal the average quota (e.g. 18.5/window
        admits 18 and 19 on alternating windows)."""
        for p in self._budget:
            residue = min(max(self._budget[p], 0.0), self.carry_cap)
            self._budget[p] = residue + float(quotas.get(p, 0.0))

    def budget(self, principal: str) -> float:
        return self._budget[principal]

    def try_admit(self, principal: str, cost: float = 1.0) -> bool:
        """Admit a request of the given cost if quota remains.

        Large requests are treated as multiple small ones (paper §4): a
        request of cost c consumes c units of quota.
        """
        if cost <= 0:
            raise ValueError("cost must be positive")
        if principal not in self._budget:
            raise KeyError(f"unknown principal {principal!r}")
        if self._budget[principal] >= cost - 1e-9:
            self._budget[principal] -= cost
            self.admitted[principal] += 1
            return True
        self.rejected[principal] += 1
        return False
