"""Shared window-allocation engine for redirector implementations.

Both prototypes (the Layer-7 redirector and the Layer-4 daemon) perform the
same per-window computation (paper §3.2): form a globally consistent demand
estimate from the latest combining-tree broadcast, solve the window LP on
it, and scale the resulting allocation to this node's local share
(``x_i * local_i / global_i``).  :class:`WindowAllocator` packages that
computation so the two network layers only differ in admission mechanics.

Snapshot consistency: the broadcast aggregate is a past-round snapshot; the
allocator substitutes this node's own round-r contribution with its current
local vector (``global - local_then + local_now``) so the fraction applied
locally matches the data the LP saw.  When no broadcast has ever arrived,
it falls back to the conservative ``1/R`` split of mandatory entitlements —
the behaviour visible in the paper's Fig 8 phase 1, where a redirector with
no global information uses only half of its principal's mandatory tickets.

Graceful degradation (fault model): with ``stale_after`` set, the same
conservative split is used whenever the newest broadcast is older than
``stale_after`` seconds — a partitioned or orphaned redirector snaps back
to 1/R instead of acting on a frozen world view, and re-converges on the
first fresh broadcast after the heal.  Degraded windows are counted in
``degraded_windows`` (a subset of ``fallback_windows``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.coordination.protocol import AggregationNode
from repro.core.access import AccessLevels
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.provider import ProviderScheduler
from repro.scheduling.window import WindowConfig

__all__ = ["WindowAllocator", "Allocation"]


@dataclass
class Allocation:
    """Result of one window's allocation at one node."""

    quotas: Dict[str, float]                 # local admission budget per principal
    weights: Dict[str, Dict[str, float]]     # per-principal server-owner weights
    global_estimate: Dict[str, float]
    used_fallback: bool


class WindowAllocator:
    """The per-window allocation computation shared by all redirectors.

    Args:
        access: per-second access levels for the agreement graph.
        window: scheduling window.
        mode: ``"community"`` or ``"provider"``.
        prices: provider mode — price per additional request per customer.
        capacity: provider mode — total provider capacity override.
        n_redirectors: redirector count, for the conservative fallback.
        backend: LP backend.
    """

    def __init__(
        self,
        access: AccessLevels,
        window: WindowConfig = WindowConfig(),
        mode: str = "community",
        prices: Optional[Mapping[str, float]] = None,
        capacity: Optional[float] = None,
        n_redirectors: int = 1,
        backend: str = "auto",
        server_owners: Optional[List[str]] = None,
        server_capacities: Optional[Mapping[str, float]] = None,
        cache_tolerance: float = 0.05,
        lp_cache: bool = True,
        stale_after: Optional[float] = None,
    ):
        if mode not in ("community", "provider"):
            raise ValueError(f"unknown mode {mode!r}")
        if cache_tolerance < 0:
            raise ValueError("cache_tolerance must be >= 0")
        self.access = access
        self.window = window
        self.mode = mode
        self.n_redirectors = max(1, int(n_redirectors))
        self._w = access.per_window(window.length)
        self.agg_node: Optional[AggregationNode] = None
        if stale_after is not None and stale_after <= 0:
            raise ValueError("stale_after must be positive (or None to disable)")
        self.stale_after = stale_after
        self.lp_solves = 0
        self.cache_hits = 0
        self.fallback_windows = 0
        self.degraded_windows = 0
        self._server_capacities = dict(server_capacities or {})
        # Demand barely moves between adjacent 100 ms windows in steady
        # state; re-solving a near-identical LP dominates simulation cost.
        # A solve is reused while every principal's global estimate stays
        # within cache_tolerance (relative) of the solved one (0 disables).
        # Quotas are still rescaled by the *fresh* local share every
        # window, so the reuse error is bounded by the estimate drift —
        # at most cache_tolerance, transiently.
        self.cache_tolerance = float(cache_tolerance)
        self._cached_est: Optional[Dict[str, float]] = None
        self._cached_plan = None  # CommunitySchedule or ProviderSchedule
        # The tolerance cache above reuses a plan for *nearby* demand; the
        # scheduler's own exact-match SolveCache (lp_cache) dedups repeats
        # of identical demand with bit-identical results.
        self.lp_cache = bool(lp_cache)

        if mode == "community":
            self.scheduler: Union[CommunityScheduler, ProviderScheduler] = (
                CommunityScheduler(access, window, backend=backend, lp_cache=lp_cache)
            )
        else:
            self.scheduler = ProviderScheduler(
                access, prices or {}, capacity=capacity, window=window,
                backend=backend, lp_cache=lp_cache,
            )

    @property
    def principals(self) -> Tuple[str, ...]:
        return self.access.names

    def attach(self, node: AggregationNode) -> None:
        self.agg_node = node

    def set_access(self, access: AccessLevels) -> None:
        """Swap in renegotiated access levels (dynamic agreements, §2.2).

        Suitable as a :class:`repro.core.dynamic.DynamicAccessManager`
        subscriber; takes effect from the next window's LP solve.
        """
        if access.names != self.access.names:
            raise ValueError("renegotiated levels must cover the same principals")
        self.access = access
        self._w = access.per_window(self.window.length)
        self.invalidate_cache()
        if self.mode == "community":
            self.scheduler = CommunityScheduler(
                access, self.window, backend=self.scheduler.backend,
                lp_cache=self.lp_cache,
            )
        else:
            old = self.scheduler
            self.scheduler = ProviderScheduler(
                access, old.prices, capacity=old.capacity, window=self.window,
                backend=old.backend, lp_cache=self.lp_cache,
            )

    # -- global estimate -----------------------------------------------------

    def global_estimate(
        self, local: Mapping[str, float], now: Optional[float] = None
    ) -> Tuple[Dict[str, float], bool]:
        view = self.agg_node.view if self.agg_node is not None else None
        if view is None or view.aggregate is None:
            if self.agg_node is None:
                return dict(local), False   # standalone node: local is global
            return dict(local), True        # no broadcast yet
        if (
            self.stale_after is not None
            and now is not None
            and view.age(now) > self.stale_after
        ):
            return dict(local), True        # stale view: degrade to 1/R
        then = view.local_contribution
        est = {}
        for p in self.principals:
            others = view.aggregate.get(p, 0.0)
            if then is not None:
                others = max(0.0, others - then.get(p, 0.0))
            est[p] = others + local.get(p, 0.0)
        return est, False

    # -- allocation -------------------------------------------------------------

    def compute(
        self, local: Mapping[str, float], now: Optional[float] = None
    ) -> Allocation:
        """Allocate one window given this node's local demand (req/window).

        ``now`` enables the ``stale_after`` degradation check; callers that
        never set ``stale_after`` may omit it.
        """
        global_est, fallback = self.global_estimate(local, now)
        if fallback:
            view = self.agg_node.view if self.agg_node is not None else None
            if view is not None and view.aggregate is not None:
                self.degraded_windows += 1   # had a view once — it went stale
            self.fallback_windows += 1
            return Allocation(
                *self._conservative(local), global_estimate=global_est,
                used_fallback=True,
            )
        if self.mode == "community":
            sched = self._solve(global_est)
            quotas: Dict[str, float] = {}
            weights: Dict[str, Dict[str, float]] = {}
            for p in self.principals:
                total = sched.served(p)
                g = global_est.get(p, 0.0)
                frac = min(1.0, total / g) if g > 1e-9 else 0.0
                quotas[p] = frac * local.get(p, 0.0)
                weights[p] = sched.assignments(p)
        else:
            res = self._solve(global_est)
            quotas, weights = {}, {}
            cap = self._server_capacities or {
                name: float(self.access.V[self.access.index(name)])
                for name in self.principals
                if self.access.V[self.access.index(name)] > 0
            }
            for p in self.principals:
                total = res.x.get(p, 0.0)
                g = global_est.get(p, 0.0)
                frac = min(1.0, total / g) if g > 1e-9 else 0.0
                quotas[p] = frac * local.get(p, 0.0)
                weights[p] = dict(cap)
        return Allocation(
            quotas=quotas, weights=weights, global_estimate=global_est,
            used_fallback=False,
        )

    def _solve(self, global_est: Dict[str, float]):
        """LP solve with a relative-tolerance reuse cache."""
        if self._cached_plan is not None and self.cache_tolerance > 0:
            tol = self.cache_tolerance
            cached = self._cached_est
            if all(
                abs(global_est.get(p, 0.0) - cached.get(p, 0.0))
                <= tol * max(global_est.get(p, 0.0), cached.get(p, 0.0), 1.0)
                for p in self.principals
            ):
                self.cache_hits += 1
                return self._cached_plan
        self.lp_solves += 1
        plan = self.scheduler.schedule(global_est)
        self._cached_est = dict(global_est)
        self._cached_plan = plan
        return plan

    def invalidate_cache(self) -> None:
        self._cached_est = None
        self._cached_plan = None

    def _conservative(
        self, local: Mapping[str, float]
    ) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
        """No global information: use 1/R of the mandatory entitlements."""
        share = 1.0 / self.n_redirectors
        quotas, weights = {}, {}
        for p in self.principals:
            i = self.access.index(p)
            quotas[p] = min(local.get(p, 0.0), float(self._w.MC[i]) * share)
            weights[p] = {
                k: float(self._w.MI[i, self.access.index(k)])
                for k in self.principals
                if self._w.MI[i, self.access.index(k)] > 1e-12
            }
        return quotas, weights
