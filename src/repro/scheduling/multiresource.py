"""Community scheduling over multiple resource types.

The vector extension of :mod:`repro.scheduling.community`: each principal's
requests carry a *demand profile* (units of CPU, bandwidth, ... consumed
per request) and every server has a capacity vector.  The window LP becomes

    maximize theta
    s.t.     sum_k x_ik >= theta * n_i
             sum_i x_ik * profile_i[r] <= V[k, r]        for all k, r
             x_ik <= bottleneck((MI+OI)[i,k], profile_i)
             sum_k x_ik <= n_i
             sum_k x_ik >= min(n_i, guaranteed_requests_i)

where ``guaranteed_requests_i = sum_k bottleneck(MI[i,k], profile_i)`` is
always jointly feasible because mandatory entitlements partition each
server's capacity per type.

Packing effect worth knowing: with complementary profiles (a CPU-heavy and
a bandwidth-heavy principal) the vector LP co-schedules both at rates a
scalar single-resource scheduler cannot see — quantified by
``benchmarks/bench_ablation_multiresource.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.core.multiresource import MultiResourceAccess, bottleneck_rate
from repro.lp import Model, Solution, SolveCache, solve, structural_fingerprint
from repro.scheduling.window import WindowConfig

__all__ = ["MultiResourceCommunityScheduler", "MultiResourceSchedule"]


@dataclass
class MultiResourceSchedule:
    names: Tuple[str, ...]
    resources: Tuple[str, ...]
    x: np.ndarray          # x[i, k]: requests from queue i to server k
    theta: float
    solution: Solution

    def served(self, principal: str) -> float:
        return float(self.x[self.names.index(principal)].sum())

    def load(self, owner: str, resource: str, profiles: Mapping[str, Mapping[str, float]]) -> float:
        """Resource units placed on ``owner``'s server this window."""
        k = self.names.index(owner)
        total = 0.0
        for i, name in enumerate(self.names):
            total += self.x[i, k] * float(profiles.get(name, {}).get(resource, 0.0))
        return total


class MultiResourceCommunityScheduler:
    """Max-min window scheduler over vector resources.

    Args:
        access: vector access levels from
            :func:`repro.core.multiresource.compute_multiresource_access`.
        profiles: per-principal per-request demand ``{resource: units}``.
            Principals without a profile are assumed to demand 1 unit of
            every resource per request.
        window: scheduling window.
    """

    def __init__(
        self,
        access: MultiResourceAccess,
        profiles: Mapping[str, Mapping[str, float]],
        window: WindowConfig = WindowConfig(),
        backend: str = "auto",
        lp_cache: bool = True,
        warm_start: bool = True,
    ):
        self.access = access
        self.window = window
        self.backend = backend
        self.profiles: Dict[str, Dict[str, float]] = {}
        for name in access.names:
            prof = dict(profiles.get(name, {}))
            if not prof:
                prof = {r: 1.0 for r in access.resources}
            for r, v in prof.items():
                if r not in access.resources:
                    raise ValueError(f"unknown resource {r!r} in {name}'s profile")
                if v < 0:
                    raise ValueError(f"negative demand in {name}'s profile")
            self.profiles[name] = prof
        # Per-window quantities.
        w = window.length
        self._MIw = access.MI * w
        self._OIw = access.OI * w
        self._Vw = access.V * w
        self.warm_start = warm_start
        self.lp_solves = 0
        self.cache_hits = 0
        self.lp_iterations = 0
        self._basis = None
        self._cache = SolveCache() if lp_cache else None
        self._fp = structural_fingerprint(
            "multiresource", access.names, access.resources,
            self._MIw, self._OIw, self._Vw,
            tuple(sorted((p, tuple(sorted(prof.items())))
                         for p, prof in self.profiles.items())),
            window.length, backend,
        )

    @property
    def names(self) -> Tuple[str, ...]:
        return self.access.names

    def guaranteed_requests(self, principal: str) -> float:
        """Per-window request guarantee given the principal's profile."""
        i = self.access.index(principal)
        total = 0.0
        for k in range(self.access.n):
            total += bottleneck_rate(
                self._MIw[i, k], self.profiles[principal], self.access.resources
            )
        return total

    def schedule(self, queue_lengths: Mapping[str, float]) -> MultiResourceSchedule:
        names = self.names
        n = self.access.n
        resources = self.access.resources
        q = np.array([float(queue_lengths.get(p, 0.0)) for p in names])
        if np.any(q < 0):
            raise ValueError("queue lengths must be non-negative")

        key = None
        if self._cache is not None:
            key = self._cache.key(self._fp, q)
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                xmat, theta_v, sol = hit
                return MultiResourceSchedule(
                    names=names, resources=resources, x=xmat.copy(),
                    theta=theta_v, solution=sol,
                )

        m = Model("multiresource-community")
        theta = m.var("theta", lb=0.0, ub=1.0)
        x = np.empty((n, n), dtype=object)
        for i, holder in enumerate(names):
            for k in range(n):
                hi = bottleneck_rate(
                    self._MIw[i, k] + self._OIw[i, k],
                    self.profiles[holder],
                    resources,
                )
                x[i, k] = m.var(f"x_{holder}_{names[k]}", ub=hi) if hi > 1e-12 else None

        for i, holder in enumerate(names):
            row = [v for v in x[i] if v is not None]
            if not row:
                continue
            total = sum(v for v in row)
            if q[i] > 1e-12:
                m.add(total >= theta * float(q[i]))
            m.add(total <= float(q[i]))
            guarantee = min(float(q[i]), self.guaranteed_requests(holder))
            if guarantee > 1e-12:
                m.add(total >= guarantee)

        for k in range(n):
            for r, res in enumerate(resources):
                if self._Vw[k, r] <= 1e-12:
                    continue
                terms = []
                for i, holder in enumerate(names):
                    if x[i, k] is None:
                        continue
                    demand = self.profiles[holder].get(res, 0.0)
                    if demand > 1e-12:
                        terms.append(demand * x[i, k])
                if terms:
                    m.add(sum(terms) <= float(self._Vw[k, r]))

        m.maximize(theta)
        sol = solve(
            m, backend=self.backend,
            warm_start=self._basis if self.warm_start else None,
        )
        self.lp_solves += 1
        self.lp_iterations += int(sol.iterations)
        if sol.basis is not None:
            self._basis = sol.basis
        if not sol.optimal:
            raise RuntimeError(f"multi-resource LP {sol.status.value}")
        xmat = np.zeros((n, n))
        for i in range(n):
            for k in range(n):
                if x[i, k] is not None:
                    xmat[i, k] = sol.value(x[i, k])
        theta_v = float(sol.value(theta))
        if key is not None:
            self._cache.put(key, (xmat.copy(), theta_v, sol))
        return MultiResourceSchedule(
            names=names, resources=resources, x=xmat,
            theta=theta_v, solution=sol,
        )
