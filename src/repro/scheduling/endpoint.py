"""End-point enforcement: the baseline the paper argues against (Fig 1).

Each server enforces sharing agreements *independently* on the demand it
happens to see.  The allocation rule is water-filling: every principal
first receives its guaranteed share of this server (``lb_i * V``, capped by
its demand), then leftover capacity is distributed across still-unserved
demand.  With distributed requests and locality-biased redirectors this
violates aggregate agreements — the paper's Fig 1 example yields
(A 30, B 70) against a negotiated 20/80 split, which the motivating
benchmark reproduces.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["endpoint_allocate", "EndpointEnforcer"]


def endpoint_allocate(
    demands: Mapping[str, float],
    shares: Mapping[str, float],
    capacity: float,
) -> Dict[str, float]:
    """Single-server independent enforcement.

    Args:
        demands: offered load per principal (requests this window).
        shares: guaranteed fraction of this server per principal
            (lower bounds; must sum to <= 1).
        capacity: server capacity this window.

    Returns:
        Allocation per principal; sums to min(capacity, total demand).
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    total_share = sum(shares.values())
    if total_share > 1.0 + 1e-9:
        raise ValueError(f"guaranteed shares sum to {total_share:.3f} > 1")
    alloc = {p: 0.0 for p in demands}
    # Guaranteed pass: everyone gets min(demand, lb * V).
    for p, d in demands.items():
        if d < 0:
            raise ValueError(f"negative demand for {p!r}")
        alloc[p] = min(d, shares.get(p, 0.0) * capacity)
    leftover = capacity - sum(alloc.values())
    # Water-fill the leftover across unserved demand, proportionally to the
    # remaining demand (iterating handles principals that saturate early).
    for _ in range(len(demands) + 1):
        if leftover <= 1e-12:
            break
        unserved = {p: demands[p] - alloc[p] for p in demands if demands[p] - alloc[p] > 1e-12}
        if not unserved:
            break
        total_unserved = sum(unserved.values())
        grant_total = min(leftover, total_unserved)
        for p, u in unserved.items():
            grant = grant_total * (u / total_unserved)
            alloc[p] += min(grant, u)
        leftover = capacity - sum(alloc.values())
    return alloc


class EndpointEnforcer:
    """Stateful per-server wrapper around :func:`endpoint_allocate`."""

    def __init__(self, server: str, capacity: float, shares: Mapping[str, float]):
        self.server = server
        self.capacity = float(capacity)
        self.shares = dict(shares)

    def allocate(self, demands: Mapping[str, float]) -> Dict[str, float]:
        return endpoint_allocate(demands, self.shares, self.capacity)
