"""Smooth weighted round-robin.

After the LP fixes how many of principal i's requests go to each server
(``x_ik``), the redirector must interleave actual forwards across servers
in those proportions without bunching.  Smooth WRR (the nginx variant of
classical WRR, itself one of the two request-distribution families the
paper surveys in §6) produces the maximally spread deterministic sequence:
each pick adds every weight to a running score and selects the max,
subtracting the total.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["SmoothWeightedRoundRobin"]


class SmoothWeightedRoundRobin:
    """Deterministic proportional interleaving over weighted choices.

    >>> wrr = SmoothWeightedRoundRobin({"a": 3, "b": 1})
    >>> [wrr.next() for _ in range(4)]
    ['a', 'a', 'b', 'a']
    """

    def __init__(self, weights: Optional[Mapping[str, float]] = None):
        self._weights: Dict[str, float] = {}
        self._current: Dict[str, float] = {}
        if weights:
            self.set_weights(weights)

    def set_weights(self, weights: Mapping[str, float]) -> None:
        """Replace the weight set; accumulated scores of kept keys survive
        so proportions stay smooth across LP window updates."""
        cleaned = {}
        for k, w in weights.items():
            if w < 0:
                raise ValueError(f"negative weight for {k!r}")
            if w > 0:
                cleaned[k] = float(w)
        self._weights = cleaned
        self._current = {k: self._current.get(k, 0.0) for k in cleaned}

    @property
    def total(self) -> float:
        return sum(self._weights.values())

    def next(self) -> Optional[str]:
        """The next choice, or None when all weights are zero."""
        if not self._weights:
            return None
        best = None
        for k, w in self._weights.items():
            self._current[k] += w
            if best is None or self._current[k] > self._current[best]:
                best = k
        self._current[best] -= self.total
        return best
