"""Community scheduler: minimise the global maximum response time (§3.1.2).

Per window, with ``x_ik`` the number of requests from principal i's queue
scheduled onto principal k's server and ``theta`` the minimum served queue
fraction, the paper's LP is::

    maximize theta
    s.t.     sum_k x_ik >= theta * n_i                     (min fraction)
             sum_i x_ik <= V_k                             (server capacity)
             MI_ki <= x_ik <= MI_ki + OI_ki                (agreements)
             sum_k x_ik <= n_i                             (queue size)
             sum_i x_ik <= c_k                             (locality, optional)

The agreement lower bound is dropped for principals whose queue is too
small to absorb it (``n_i < MC_i``), exactly as the paper prescribes.

Two refinements over the paper's literal formulation (both reproduce the
*measured* behaviour of the prototypes better than the printed LP; the
literal form remains available via ``pairwise_lower_bounds=True``):

1. The mandatory guarantee is enforced on the principal's *total* service,
   ``sum_k x_ik >= min(n_i, MC_i)``, not per (principal, server) pair.  A
   per-pair lower bound turns an entitlement into an obligation — it forces
   requests onto a remote server even when the principal's own server has
   room, which mis-reproduces Fig 9 phase 3 (B would be held to ~187 req/s
   instead of the paper's 240).
2. Rather than dropping the lower bound entirely when ``n_i < MC_i``, it
   shrinks to the demand: a principal offering less than its mandatory
   level is served in full (Fig 6 phase 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.access import AccessLevels
from repro.lp import Model, Solution, SolveCache, solve, structural_fingerprint
from repro.scheduling.window import WindowConfig

__all__ = ["CommunityScheduler", "CommunitySchedule"]

QueueLengths = Union[Mapping[str, float], Sequence[float], np.ndarray]


def _as_vector(names: Tuple[str, ...], q: QueueLengths) -> np.ndarray:
    if isinstance(q, Mapping):
        return np.array([float(q.get(name, 0.0)) for name in names])
    arr = np.asarray(q, dtype=float)
    if arr.shape != (len(names),):
        raise ValueError(f"expected {len(names)} queue lengths, got shape {arr.shape}")
    return arr.copy()


@dataclass
class CommunitySchedule:
    """Result of one scheduling window."""

    names: Tuple[str, ...]
    x: np.ndarray        # x[i, k]: requests from queue i to server k
    theta: float
    solution: Solution

    def served(self, principal: str) -> float:
        """Total requests scheduled from this principal's queue."""
        return float(self.x[self.names.index(principal)].sum())

    def load(self, owner: str) -> float:
        """Total requests scheduled onto this principal's server."""
        return float(self.x[:, self.names.index(owner)].sum())

    def assignments(self, principal: str) -> Dict[str, float]:
        i = self.names.index(principal)
        return {
            k: float(self.x[i, j])
            for j, k in enumerate(self.names)
            if self.x[i, j] > 1e-9
        }

    def fractions(self, queue_lengths: QueueLengths) -> np.ndarray:
        """Per-(principal, server) fraction of the queue to forward.

        This is the quantity distributed redirectors apply to their *local*
        queues (paper §3.2): ``x_ik / n_i``.
        """
        n = _as_vector(self.names, queue_lengths)
        with np.errstate(divide="ignore", invalid="ignore"):
            f = np.where(n[:, None] > 0, self.x / np.maximum(n[:, None], 1e-300), 0.0)
        return np.clip(f, 0.0, 1.0)


class CommunityScheduler:
    """Builds and solves the community LP for each scheduling window.

    Args:
        access: per-second access levels from
            :func:`repro.core.access.compute_access_levels`.
        window: scheduling window; access levels are scaled by its length.
        backend: LP backend (``"auto"``/``"scipy"``/``"simplex"``).
        enforce_lower_bounds: when False, mandatory lower bounds become
            advisory (useful for ablations).
        lp_cache: memoise solves on the exact demand vector.  Steady-state
            traffic re-presents identical windows, so a hit returns the
            bit-identical schedule a fresh solve would have produced.
        warm_start: re-use the previous window's optimal basis when the
            backend supports it (``"bounded"``); ignored otherwise.
    """

    def __init__(
        self,
        access: AccessLevels,
        window: WindowConfig = WindowConfig(),
        backend: str = "auto",
        enforce_lower_bounds: bool = True,
        pairwise_lower_bounds: bool = False,
        lp_cache: bool = True,
        warm_start: bool = True,
    ):
        self.access = access
        self.window = window
        self.backend = backend
        self.enforce_lower_bounds = enforce_lower_bounds
        self.pairwise_lower_bounds = pairwise_lower_bounds
        self.warm_start = warm_start
        self._w = access.per_window(window.length)
        self.lp_solves = 0
        self.cache_hits = 0
        self.lp_iterations = 0
        self._basis = None
        self._cache: Optional[SolveCache] = SolveCache() if lp_cache else None
        w = self._w
        self._fp = structural_fingerprint(
            "community", access.names, w.MI, w.OI, w.MC, w.V,
            window.length, backend, enforce_lower_bounds, pairwise_lower_bounds,
        )

    @property
    def names(self) -> Tuple[str, ...]:
        return self.access.names

    def schedule(
        self,
        queue_lengths: QueueLengths,
        locality_caps: Optional[QueueLengths] = None,
    ) -> CommunitySchedule:
        """Solve one window; ``queue_lengths`` are *global* per-principal
        queue sizes in requests (aggregated across redirectors)."""
        names = self.names
        n_p = len(names)
        q = _as_vector(names, queue_lengths)
        if np.any(q < 0):
            raise ValueError("queue lengths must be non-negative")
        caps = _as_vector(names, locality_caps) if locality_caps is not None else None

        key = None
        if self._cache is not None:
            key = self._cache.key(
                self._fp, q, tag=tuple(caps) if caps is not None else None
            )
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                xmat, theta_v, sol = hit
                return CommunitySchedule(
                    names=names, x=xmat.copy(), theta=theta_v, solution=sol
                )

        w = self._w
        m = Model("community")
        theta = m.var("theta", lb=0.0, ub=1.0)
        x = np.empty((n_p, n_p), dtype=object)
        for i in range(n_p):
            # Literal paper form (ablation only): per-pair lower bounds,
            # scaled down when the queue cannot absorb the mandatory level.
            if (
                self.pairwise_lower_bounds
                and self.enforce_lower_bounds
                and w.MC[i] > 1e-12
            ):
                lb_scale = min(1.0, q[i] / w.MC[i])
            else:
                lb_scale = 0.0
            for k in range(n_p):
                hi = w.MI[i, k] + w.OI[i, k]
                if hi <= 1e-12:
                    x[i, k] = None
                    continue
                lo = w.MI[i, k] * lb_scale
                x[i, k] = m.var(f"x_{names[i]}_{names[k]}", lb=lo, ub=hi)

        for i in range(n_p):
            row = [x[i, k] for k in range(n_p) if x[i, k] is not None]
            if not row:
                continue
            total = sum(v for v in row)
            if q[i] > 1e-12:
                m.add(total >= theta * float(q[i]))
            m.add(total <= float(q[i]))
            # Aggregate mandatory guarantee: serve at least the smaller of
            # the demand and the mandatory access level.
            if self.enforce_lower_bounds and not self.pairwise_lower_bounds:
                guarantee = min(float(q[i]), float(w.MC[i]))
                if guarantee > 1e-12:
                    m.add(total >= guarantee)
        for k in range(n_p):
            col = [x[i, k] for i in range(n_p) if x[i, k] is not None]
            if not col:
                continue
            load = sum(v for v in col)
            m.add(load <= float(w.V[k]))
            if caps is not None and np.isfinite(caps[k]):
                m.add(load <= float(caps[k]))

        m.maximize(theta)
        sol = solve(
            m, backend=self.backend,
            warm_start=self._basis if self.warm_start else None,
        )
        self.lp_solves += 1
        self.lp_iterations += int(sol.iterations)
        if sol.basis is not None:
            self._basis = sol.basis
        if not sol.optimal:
            raise RuntimeError(
                f"community LP {sol.status.value}; agreement structure is "
                "inconsistent with the queue state"
            )

        xmat = np.zeros((n_p, n_p))
        for i in range(n_p):
            for k in range(n_p):
                if x[i, k] is not None:
                    xmat[i, k] = sol.value(x[i, k])
        theta_v = float(sol.value(theta))
        if key is not None:
            self._cache.put(key, (xmat.copy(), theta_v, sol))
        return CommunitySchedule(
            names=names, x=xmat, theta=theta_v, solution=sol
        )
