"""Locality modelling (§3.1.2, "Note that this model can be easily extended
to take locality costs into consideration").

Locality is modelled as a cap ``c_i`` on the number of requests a
redirector may push to principal i's servers per window.  Figure 1's
redirectors bias forwarding 75/25 between the two servers for cost
reasons; :func:`locality_caps_from_bias` converts such a bias row plus the
redirector's local offered load into per-server caps the community LP
accepts as its optional ``locality_caps`` argument.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["locality_caps_from_bias", "normalize_bias"]


def normalize_bias(bias: Mapping[str, float]) -> Dict[str, float]:
    """Scale a non-negative bias row to sum to 1."""
    total = sum(bias.values())
    if total <= 0:
        raise ValueError("bias weights must have positive sum")
    if any(b < 0 for b in bias.values()):
        raise ValueError("bias weights must be non-negative")
    return {k: b / total for k, b in bias.items()}


def locality_caps_from_bias(
    offered_load: float,
    bias: Mapping[str, float],
    slack: float = 1.0,
) -> Dict[str, float]:
    """Per-server push caps for one redirector.

    Args:
        offered_load: requests this redirector must place this window.
        bias: relative preference per server (e.g. ``{"S1": 3, "S2": 1}``
            for the paper's 75/25 split).
        slack: multiplier >= 1 loosening the caps (1.0 = hard bias).
    """
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if slack < 1.0:
        raise ValueError("slack must be >= 1")
    norm = normalize_bias(bias)
    return {k: offered_load * f * slack for k, f in norm.items()}
