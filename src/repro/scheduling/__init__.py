"""Window schedulers for agreement enforcement (paper §3.1.2).

- :mod:`repro.scheduling.community` — maximise the minimum served queue
  fraction (minimises the community's maximum response time).
- :mod:`repro.scheduling.provider` — maximise service-provider income.
- :mod:`repro.scheduling.locality` — locality push caps (the ``c_i``
  extension) and forwarding-bias helpers.
- :mod:`repro.scheduling.queueing` — explicit per-principal queues and the
  implicit quota scheme the Layer-7 prototype settled on (§4.1).
- :mod:`repro.scheduling.credits` — the credit-based virtual-time variant
  mentioned in the paper's related-work discussion (§6).
- :mod:`repro.scheduling.endpoint` — the *baseline* the paper argues
  against: independent per-server enforcement (Fig 1).
- :mod:`repro.scheduling.wrr` — smooth weighted round-robin used to spread
  a principal's admitted requests across servers per the LP allocation.
"""

from repro.scheduling.allocator import Allocation, WindowAllocator
from repro.scheduling.community import CommunitySchedule, CommunityScheduler
from repro.scheduling.credits import CreditScheduler
from repro.scheduling.endpoint import EndpointEnforcer, endpoint_allocate
from repro.scheduling.locality import locality_caps_from_bias
from repro.scheduling.multiresource import (
    MultiResourceCommunityScheduler,
    MultiResourceSchedule,
)
from repro.scheduling.provider import ProviderSchedule, ProviderScheduler
from repro.scheduling.queueing import ImplicitQuota, PrincipalQueues
from repro.scheduling.window import WindowConfig
from repro.scheduling.wrr import SmoothWeightedRoundRobin

__all__ = [
    "WindowConfig",
    "WindowAllocator",
    "Allocation",
    "CommunityScheduler",
    "CommunitySchedule",
    "ProviderScheduler",
    "ProviderSchedule",
    "PrincipalQueues",
    "ImplicitQuota",
    "CreditScheduler",
    "EndpointEnforcer",
    "endpoint_allocate",
    "SmoothWeightedRoundRobin",
    "locality_caps_from_bias",
    "MultiResourceCommunityScheduler",
    "MultiResourceSchedule",
]
