"""Provider scheduler: maximise service-provider income (§3.1.2).

The provider negotiates a price ``p_i`` per request processed for customer
i beyond the mandatory service level.  Per window, with ``x_i`` the number
of customer-i requests admitted::

    maximize sum_i p_i (x_i - MC_i)
    s.t.     sum_i x_i <= V_s
             MC_i <= x_i <= MC_i + OC_i
             x_i <= n_i

As in the community model, the mandatory lower bound shrinks to the demand
(``x_i >= min(n_i, MC_i)``) when a queue is below its mandatory level, so a
customer's sub-mandatory load is always served in full while the surplus
goes to the highest payer (the paper's Fig 10 behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.access import AccessLevels
from repro.lp import Model, Solution, SolveCache, Status, solve, structural_fingerprint
from repro.scheduling.window import WindowConfig

__all__ = ["ProviderScheduler", "ProviderSchedule"]


@dataclass
class ProviderSchedule:
    """Result of one provider scheduling window."""

    customers: Tuple[str, ...]
    x: Dict[str, float]            # admitted requests per customer
    income: float                  # sum p_i (x_i - MC_i), in price units
    solution: Solution

    def admitted(self, customer: str) -> float:
        return self.x.get(customer, 0.0)

    def total(self) -> float:
        return sum(self.x.values())


class ProviderScheduler:
    """Builds and solves the provider-income LP each window.

    Args:
        access: per-second access levels; customer entitlements must stem
            from agreements the provider granted.
        prices: price per additional request for each customer; customers
            not listed are treated as paying zero.
        capacity: the provider's total server capacity ``V_s`` in req/s.
            Defaults to the sum of capacities in ``access``.
        window: scheduling window.
        lp_cache: memoise solves on the exact demand vector (bit-identical
            results; see :class:`repro.lp.SolveCache`).
        warm_start: re-use the previous window's basis on the ``"bounded"``
            backend; ignored by the others.
    """

    def __init__(
        self,
        access: AccessLevels,
        prices: Mapping[str, float],
        capacity: Optional[float] = None,
        window: WindowConfig = WindowConfig(),
        backend: str = "auto",
        lp_cache: bool = True,
        warm_start: bool = True,
    ):
        self.access = access
        self.window = window
        self.backend = backend
        self.prices = dict(prices)
        for name, p in self.prices.items():
            if p < 0:
                raise ValueError(f"negative price for {name!r}")
        self.capacity = float(capacity if capacity is not None else access.V.sum())
        # Customers: principals with a non-zero entitlement and no capacity
        # of their own counted against V_s (the provider itself is excluded).
        self.customers: Tuple[str, ...] = tuple(
            name
            for name in access.names
            if access.mandatory(name) + access.optional(name) > 1e-12
            and access.V[access.index(name)] == 0.0
        )
        self._w = access.per_window(window.length)
        self._vs = self.capacity * window.length
        self.warm_start = warm_start
        self.lp_solves = 0
        self.cache_hits = 0
        self.lp_iterations = 0
        self._basis = None
        self._cache: Optional[SolveCache] = SolveCache() if lp_cache else None
        self._fp = structural_fingerprint(
            "provider", self.customers, self._w.MC, self._w.OC,
            tuple(sorted(self.prices.items())), self._vs, window.length, backend,
        )

    def schedule(self, queue_lengths: Mapping[str, float]) -> ProviderSchedule:
        """Solve one window; ``queue_lengths`` are global per-customer
        queue sizes in requests."""
        key = None
        if self._cache is not None:
            demand = np.array(
                [float(queue_lengths.get(name, 0.0)) for name in self.customers]
            )
            key = self._cache.key(self._fp, demand)
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                x, income, sol = hit
                return ProviderSchedule(
                    customers=self.customers, x=dict(x), income=income, solution=sol
                )
        w = self._w
        m = Model("provider")
        xs: Dict[str, object] = {}
        obj = None
        for name in self.customers:
            i = self.access.index(name)
            n_i = float(queue_lengths.get(name, 0.0))
            if n_i < 0:
                raise ValueError(f"negative queue length for {name!r}")
            mc, oc = w.MC[i], w.OC[i]
            lo = min(mc, n_i)
            hi = min(mc + oc, n_i)
            if hi <= 1e-12:
                xs[name] = None
                continue
            v = m.var(f"x_{name}", lb=lo, ub=hi)
            xs[name] = v
            p = self.prices.get(name, 0.0)
            term = p * (v - mc)
            obj = term if obj is None else obj + term

        live = [v for v in xs.values() if v is not None]
        if not live:
            return ProviderSchedule(
                customers=self.customers,
                x={name: 0.0 for name in self.customers},
                income=0.0,
                solution=Solution(status=Status.OPTIMAL, objective=0.0),
            )
        m.add(sum(live) <= self._vs)
        m.maximize(obj if obj is not None else live[0] * 0.0)
        sol = solve(
            m, backend=self.backend,
            warm_start=self._basis if self.warm_start else None,
        )
        self.lp_solves += 1
        self.lp_iterations += int(sol.iterations)
        if sol.basis is not None:
            self._basis = sol.basis
        if not sol.optimal:
            raise RuntimeError(f"provider LP {sol.status.value}")
        x = {
            name: (sol.value(v) if v is not None else 0.0)
            for name, v in xs.items()
        }
        income = float(sol.objective)
        if key is not None:
            self._cache.put(key, (dict(x), income, sol))
        return ProviderSchedule(
            customers=self.customers, x=x, income=income, solution=sol
        )
