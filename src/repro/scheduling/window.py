"""Scheduling time windows.

All of the paper's experiments make scheduling decisions over 100 ms
windows; access levels specified in requests/second are scaled by the
window length to get per-window request budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WindowConfig"]


@dataclass(frozen=True)
class WindowConfig:
    """Length of the scheduling window, in seconds (paper: 0.1 s)."""

    length: float = 0.1

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"window length must be positive, got {self.length}")

    def requests(self, rate_per_second: float) -> float:
        """Requests per window at the given per-second rate."""
        return rate_per_second * self.length

    def rate(self, requests_per_window: float) -> float:
        """Per-second rate for the given per-window count."""
        return requests_per_window / self.length

    def index(self, t: float) -> int:
        """Which window the timestamp ``t`` falls into.

        Floor division alone misclassifies exact boundaries that are not
        representable in binary (``0.3 // 0.1 == 2.0``): a timestamp within
        relative epsilon of the *next* boundary is snapped onto it.
        """
        i = int(t // self.length)
        boundary = (i + 1) * self.length
        if abs(t - boundary) <= 1e-9 * max(abs(t), self.length):
            return i + 1
        return i
