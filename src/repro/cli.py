"""Command-line interface.

::

    python -m repro figures [--scale 0.3] [--seed 0] [--only fig6,fig9]
    python -m repro report  [--scale 0.5] [-o EXPERIMENTS.md]
    python -m repro inspect A:1000 B:1500 C A-B:0.4:0.6 B-C:0.6:1.0
    python -m repro baseline [--duration 20]
    python -m repro lint    [src/repro ...] [--format sarif] [--baseline F]
    python -m repro check   [--scenario fig6 [--scenario fig9 ...]] [--runs 2]
    python -m repro chaos   [--random N | --plan plan.json] [--replay 2]

``figures`` reruns the paper's evaluation and prints pass/fail per figure;
``report`` renders the full paper-vs-measured markdown; ``inspect`` values
an agreement graph given on the command line; ``baseline`` compares
coordinated enforcement against a WRR front end; ``lint`` runs the
whole-program simulation-determinism lint (SIM001–SIM011, see
docs/DETERMINISM.md; exit 0 clean / 1 findings / 2 usage error, with
``--format {text,json,sarif}``, an incremental content-hash cache, a
reviewed-baseline workflow and ``--jobs N`` parallel parsing);
``check`` replays one or more scenarios and compares trace digests, with
the runtime invariant checker on the final run — for fig6/fig9/fig10 it
also diffs the scalar, slotted and columnar lanes against each other, and
``check --shards N`` instead proves the sharded lane's window-epoch
barrier parity (``shards=1`` vs ``shards=N`` digests on fig6/fig9, with
the ``shards=N`` run repeated on both the pipe and shared-memory data
planes — ``--transport`` picks the plane for the crash runs), and
``--with-crashes`` additionally kills workers mid-run (exception and
SIGKILL deaths, plus a forced shard retirement) and requires the
recovered digests to match bit-for-bit;
``chaos`` injects faults (the canonical coordination partition, a seeded
random plan, or a JSON plan file) into the fault-matrix world and reports
degradation and recovery (see docs/FAULTS.md); ``chaos --shards R`` runs
the crash-recovery matrix on the sharded execution lane instead (a plan
with ``revoke_shard`` events, or the canonical exc+kill matrix), exit
0 parity held / 1 diverged / 2 invalid plan.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.valuation import value_currencies
from repro.core.access import compute_access_levels

__all__ = ["main", "build_parser", "parse_graph_spec"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Enforcing Resource Sharing Agreements "
                    "among Distributed Server Clusters' (IPDPS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="rerun the paper's figures")
    p_fig.add_argument("--scale", type=float, default=0.3,
                       help="phase-duration scale (1.0 = paper timeline)")
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.add_argument("--only", type=str, default="",
                       help="comma-separated figure ids (default: all)")
    p_fig.add_argument("--plot", action="store_true",
                       help="render each figure's rate series as a terminal chart")
    p_fig.add_argument("--lp-cache", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="memoise window LP solves on exact demand "
                            "(bit-identical results; --no-lp-cache disables)")
    p_fig.add_argument("--fast-lane", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="vectorised request-path fast lane "
                            "(--no-fast-lane runs the scalar A/B path)")
    p_fig.add_argument("--l4-fast-lane", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="L4 switch flow-record fast lane for fig9/fig10 "
                            "(--no-l4-fast-lane runs the per-packet scalar "
                            "path; traces are bit-identical either way)")
    p_fig.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="run fig6/fig9 on the columnar lane (strict "
                            "open-loop scenario variant, whole workload "
                            "phases advanced as numpy columns)")
    p_fig.add_argument("--shards", type=int, default=0, metavar="R",
                       help="run fig6/fig9 on the sharded lane with R "
                            "worker processes synchronised at window-epoch "
                            "barriers (digests are independent of R)")
    p_fig.add_argument("--transport", type=str, default="shm",
                       choices=["pipe", "shm"],
                       help="sharded-lane data plane: shm (zero-copy "
                            "shared-memory seqlock slots, the default; "
                            "falls back to pipe with a warning where "
                            "shared memory is unavailable) or pipe "
                            "(pickled messages); digests are identical "
                            "either way")
    p_fig.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the figure batch "
                            "(results are independent of this)")
    p_fig.add_argument("--check-invariants", action="store_true",
                       help="enable the runtime conservation checker "
                            "(equivalent to REPRO_CHECK=1; traces stay "
                            "bit-identical, violations raise)")

    p_rep = sub.add_parser("report", help="render the paper-vs-measured report")
    p_rep.add_argument("--scale", type=float, default=0.5)
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.add_argument("-o", "--output", type=str, default="",
                       help="write to a file instead of stdout")

    p_ins = sub.add_parser(
        "inspect", help="value an agreement graph (CLI spec or JSON file)"
    )
    p_ins.add_argument(
        "spec", nargs="*",
        help="principals as NAME[:CAPACITY], agreements as FROM-TO:LB[:UB]",
    )
    p_ins.add_argument("--file", type=str, default="",
                       help="load the graph from a JSON file instead")
    p_ins.add_argument("--save", type=str, default="",
                       help="also write the graph to this JSON file")

    p_base = sub.add_parser("baseline", help="coordinated vs WRR comparison")
    p_base.add_argument("--duration", type=float, default=20.0)
    p_base.add_argument("--seed", type=int, default=0)

    p_lint = sub.add_parser(
        "lint", help="determinism/conservation static analysis (SIM001-SIM011)"
    )
    p_lint.add_argument("paths", nargs="*", default=[],
                        help="files or directories to lint (default: src/repro)")
    p_lint.add_argument("--format", dest="fmt", default="text",
                        choices=["text", "json", "sarif"],
                        help="finding output format")
    p_lint.add_argument("--output", default="",
                        help="write formatted findings to a file")
    p_lint.add_argument("--baseline", default="",
                        help="baseline file of accepted findings to subtract")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    p_lint.add_argument("--cache", default=".simlint-cache.json",
                        help="incremental cache file (content-hash keyed)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    p_lint.add_argument("--jobs", type=int, default=1,
                        help="parse worker processes (0 = default_jobs())")

    p_chk = sub.add_parser(
        "check", help="replay-determinism harness with runtime invariants"
    )
    p_chk.add_argument("--scenario", type=str, action="append", default=None,
                       choices=["fig6", "faultmatrix", "fig9", "fig10"],
                       help="scenario to replay; repeatable (default: fig6). "
                            "fig6 covers the full stack; faultmatrix adds "
                            "fault injection, failure detection and tree "
                            "healing; fig9/fig10 diff the L4 fast lane "
                            "against the scalar packet path")
    p_chk.add_argument("--scale", type=float, default=0.05,
                       help="phase-duration scale for each replay run")
    p_chk.add_argument("--seed", type=int, default=0)
    p_chk.add_argument("--runs", type=int, default=2,
                       help="plain runs to compare before the checked run")
    p_chk.add_argument("--check-invariants", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="add a final run with the runtime invariant "
                            "checker on; its digest must match too")
    p_chk.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="for fig6/fig9/fig10, also require the scalar, "
                            "slotted and columnar lanes to produce identical "
                            "digests on the strict open-loop scenario "
                            "(--no-columnar skips the three-lane diff)")
    p_chk.add_argument("--shards", type=int, default=0, metavar="R",
                       help="shard-parity mode: run each scenario's sharded "
                            "world with shards=1 and shards=R and require "
                            "bit-identical digests (fig6/fig9 only; skips "
                            "the ordinary replay diff)")
    p_chk.add_argument("--transport", type=str, default="shm",
                       choices=["pipe", "shm"],
                       help="with --shards: data plane for the crash runs "
                            "(the plain shards=R comparison always runs "
                            "both planes and requires all digests equal)")
    p_chk.add_argument("--with-crashes", action="store_true",
                       help="with --shards: also run the crash-recovery "
                            "paths — worker deaths (exception and SIGKILL "
                            "at two distinct epochs) recovered by respawn, "
                            "and a forced shard retirement recovered by "
                            "reassignment — all digest-identical")

    p_chaos = sub.add_parser(
        "chaos", help="fault injection: partition/heal matrix or a custom plan"
    )
    p_chaos.add_argument("--scale", type=float, default=0.4,
                         help="phase-duration scale for the fault-matrix world")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--plan", type=str, default="",
                         help="JSON fault plan to inject instead of the "
                              "canonical coordination partition")
    p_chaos.add_argument("--random", type=int, default=0, metavar="N",
                         help="inject N seeded random faults instead of "
                              "the canonical partition")
    p_chaos.add_argument("--save-plan", type=str, default="",
                         help="write the executed plan (JSON) to this file")
    p_chaos.add_argument("--replay", type=int, default=0, metavar="RUNS",
                         help="also rerun the faulted scenario RUNS times "
                              "and require identical SHA-256 digests")
    p_chaos.add_argument("--check-invariants", action="store_true",
                         help="run with the runtime invariant checker on "
                              "(includes the post-heal liveness ledger)")
    p_chaos.add_argument("--plot", action="store_true",
                         help="render the A/B rate series as a terminal chart")
    p_chaos.add_argument("--shards", type=int, default=0, metavar="R",
                         help="crash-recovery mode: drive the sharded "
                              "execution lane with R shards through worker "
                              "deaths (a --plan with revoke_shard events, or "
                              "the canonical exc+SIGKILL matrix) and require "
                              "digest parity with the unfaulted shards=1 run")
    p_chaos.add_argument("--figure", type=str, default="fig6",
                         choices=["fig6", "fig9"],
                         help="sharded world for --shards mode")
    p_chaos.add_argument("--transport", type=str, default="shm",
                         choices=["pipe", "shm"],
                         help="sharded-lane data plane for --shards mode "
                              "(recovery digests are identical either way)")
    return parser


def parse_graph_spec(tokens: List[str]) -> AgreementGraph:
    """Build a graph from CLI tokens.

    ``A:1000`` declares principal A with 1000 units/s (``A`` alone means
    zero capacity); ``A-B:0.4:0.6`` is an agreement A->B [0.4, 0.6]
    (``A-B:0.4`` means [0.4, 0.4]).
    """
    g = AgreementGraph()
    agreements = []
    for tok in tokens:
        head = tok.split(":", 1)[0]
        if "-" in head:
            parts = tok.split(":")
            endpoints = parts[0].split("-")
            if len(endpoints) != 2 or len(parts) not in (2, 3):
                raise ValueError(f"malformed agreement {tok!r}")
            lb = float(parts[1])
            ub = float(parts[2]) if len(parts) == 3 else lb
            agreements.append((endpoints[0], endpoints[1], lb, ub))
        else:
            parts = tok.split(":")
            if len(parts) > 2:
                raise ValueError(f"malformed principal {tok!r}")
            capacity = float(parts[1]) if len(parts) == 2 else 0.0
            g.add_principal(parts[0], capacity=capacity)
    for grantor, grantee, lb, ub in agreements:
        g.add_agreement(Agreement(grantor, grantee, lb, ub))
    return g


def _cmd_figures(args) -> int:
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.parallel import figure_kwargs, run_figures_parallel

    if getattr(args, "check_invariants", False):
        # Env (not a kwarg) so fork-based parallel workers inherit it.
        import os

        os.environ["REPRO_CHECK"] = "1"
    wanted = [f.strip() for f in args.only.split(",") if f.strip()] or list(ALL_FIGURES)
    failures = 0
    known = [n for n in wanted if n in ALL_FIGURES]
    lp_cache = getattr(args, "lp_cache", True)
    fast_lane = getattr(args, "fast_lane", True)
    l4_fast_lane = getattr(args, "l4_fast_lane", True)
    lane = "columnar" if getattr(args, "columnar", False) else None
    shards = getattr(args, "shards", 0) or None
    transport = getattr(args, "transport", "shm")
    jobs = max(1, getattr(args, "jobs", 1))
    if jobs > 1:
        results = dict(run_figures_parallel(
            known, scale=args.scale, seed=args.seed, jobs=jobs,
            lp_cache=lp_cache, fast_lane=fast_lane, l4_fast_lane=l4_fast_lane,
            lane=lane, shards=shards, transport=transport,
        ))
    else:
        results = {
            n: ALL_FIGURES[n](**figure_kwargs(n, args.scale, args.seed, lp_cache,
                                              fast_lane=fast_lane,
                                              l4_fast_lane=l4_fast_lane,
                                              lane=lane, shards=shards,
                                              transport=transport))
            for n in known
        }
    for name in wanted:
        result = results.get(name)
        if result is None:
            print(f"{name}: unknown figure (have {', '.join(ALL_FIGURES)})")
            failures += 1
            continue
        status = "ok" if result.ok else "FAILED"
        print(f"{name}: {status}")
        if not result.ok and hasattr(result, "deviations"):
            for phase, principal, got, want, ok in result.deviations():
                if not ok:
                    print(f"    {phase}/{principal}: measured {got:.1f}, "
                          f"paper {want:.1f}")
        if args.plot and getattr(result, "series", None):
            from repro.experiments.ascii import timeseries_plot

            print(timeseries_plot(result.series, title=f"  {result.title}"))
        failures += 0 if result.ok else 1
    return 1 if failures else 0


def _cmd_report(args) -> int:
    from repro.experiments.report import render_all

    text = render_all(duration_scale=args.scale, seed=args.seed)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_inspect(args) -> int:
    from repro.core.serialization import dump_graph, load_graph

    if args.file:
        if args.spec:
            raise ValueError("give either a CLI spec or --file, not both")
        g = load_graph(args.file)
    elif args.spec:
        g = parse_graph_spec(args.spec)
    else:
        raise ValueError("need a graph: CLI spec tokens or --file")
    if args.save:
        dump_graph(g, args.save)
        print(f"wrote {args.save}\n")
    val = value_currencies(g)
    access = compute_access_levels(g)
    print(f"{'principal':>12} | {'capacity':>9} | {'mandatory':>9} | {'optional':>9}")
    for name in g.names:
        m, o = val.final(name)
        print(f"{name:>12} | {g.principal(name).capacity:9.1f} | {m:9.1f} | {o:9.1f}")
    print("\nper-pair mandatory entitlements (holder on owner's servers):")
    for holder in g.names:
        for owner in g.names:
            mi, oi = access.entitlement(holder, owner)
            if mi > 1e-9 or oi > 1e-9:
                print(f"  {holder} on {owner}: mandatory {mi:.1f}, optional {oi:.1f}")
    return 0


def _cmd_baseline(args) -> int:
    from repro.experiments.baselines import run_enforcement_comparison

    cmp = run_enforcement_comparison(duration=args.duration, seed=args.seed)
    print(f"{'strategy':>12} | {'A req/s':>8} | {'B req/s':>8}")
    print(f"{'coordinated':>12} | {cmp.coordinated['A']:8.1f} | {cmp.coordinated['B']:8.1f}")
    print(f"{'wrr':>12} | {cmp.passthrough['A']:8.1f} | {cmp.passthrough['B']:8.1f}")
    floor = min(cmp.demands["B"], cmp.guarantees["B"])
    print(f"\nB's effective guarantee: {floor:.0f} req/s — "
          f"{'violated by WRR' if cmp.passthrough_violates else 'met by both'}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.simlint import run

    return run(
        args.paths or ["src/repro"],
        fmt=args.fmt,
        output=args.output or None,
        baseline_path=args.baseline or None,
        update_baseline=args.update_baseline,
        cache_path=None if args.no_cache else args.cache,
        jobs=args.jobs,
    )


def _cmd_check(args) -> int:
    from functools import partial

    from repro.analysis.replay import (
        chaos_replay, columnar_replay, fig6_replay, l4_replay, sharded_replay,
    )

    scenarios = args.scenario or ["fig6"]
    failures = 0
    if getattr(args, "shards", 0):
        # Shard-parity mode: prove the window-epoch barrier moves no bits.
        for scenario in scenarios:
            if scenario not in ("fig6", "fig9"):
                raise ValueError(
                    f"--shards supports fig6/fig9 worlds, not {scenario!r}"
                )
            report = sharded_replay(
                figure=scenario, duration_scale=args.scale, seed=args.seed,
                shards=args.shards,
                with_crashes=getattr(args, "with_crashes", False),
                transport=getattr(args, "transport", "shm"),
            )
            print(report.render())
            failures += 0 if report.ok else 1
        return 1 if failures else 0
    for scenario in scenarios:
        if scenario == "fig6":
            replay = fig6_replay
        elif scenario == "faultmatrix":
            replay = chaos_replay
        else:
            # fig9/fig10: fast-vs-scalar L4 lane parity, not just replay.
            replay = partial(l4_replay, figure=scenario)
        report = replay(
            duration_scale=args.scale,
            seed=args.seed,
            runs=args.runs,
            with_invariants=args.check_invariants,
        )
        print(report.render())
        failures += 0 if report.ok else 1
        if args.columnar and scenario != "faultmatrix":
            three = columnar_replay(
                figure=scenario, duration_scale=args.scale, seed=args.seed,
            )
            print(three.render())
            failures += 0 if three.ok else 1
    return 1 if failures else 0


def _chaos_plan(args):
    """Resolve the plan for ``repro chaos``: file, seeded random, or None."""
    from repro.faults.plan import FaultPlan, random_plan
    from repro.sim.rng import RngStreams

    if args.plan and args.random:
        raise ValueError("give either --plan or --random, not both")
    if args.plan:
        with open(args.plan) as fh:
            return FaultPlan.from_json(fh.read())
    if args.random:
        phase = max(8.0, 20.0 * args.scale)
        # A dedicated substream: plan generation never perturbs the
        # scenario's own streams, so --random N is reproducible per seed.
        rng = RngStreams(args.seed).get("faults:plan")
        return random_plan(
            rng, duration=3.0 * phase,
            nodes=("R1", "R2", "__root__"), servers=("S",),
            links=(("R1", "__root__"), ("R2", "__root__")),
            n_faults=args.random, name=f"random-{args.seed}",
        )
    return None


def _cmd_chaos_sharded(args) -> int:
    """``chaos --shards R``: worker deaths on the sharded execution lane.

    With ``--plan`` the plan's ``revoke_shard`` events are bound to window
    epochs (a shard index out of range is a typed
    :class:`~repro.faults.plan.FaultPlanError`, surfaced by :func:`main`
    as exit 2); without one the canonical crash-recovery matrix runs.
    Either way the recovered run must reproduce the unfaulted ``shards=1``
    digest bit-for-bit: exit 0 on parity, 1 on divergence.
    """
    from repro.experiments.faultmatrix import (
        canonical_shard_plan, run_crash_recovery_matrix,
    )

    if args.random:
        raise ValueError(
            "--random drives the fault-matrix world; give --plan with "
            "revoke_shard events (or no plan for the canonical matrix) "
            "with --shards"
        )
    figure, replicas = args.figure, 4
    if args.plan:
        from repro.experiments.sharded import (
            SHARDED_WORLDS, run_sharded, shard_faults_from_plan,
        )
        from repro.faults.plan import FaultPlan

        with open(args.plan) as fh:
            plan = FaultPlan.from_json(fh.read())
        world = SHARDED_WORLDS[figure](
            duration_scale=args.scale, seed=args.seed, replicas=replicas,
        )
        bound = shard_faults_from_plan(
            plan, world.window, world.n_windows, args.shards,
        )
        print(f"plan {plan.name or '(unnamed)'}  events={len(plan.events)}  "
              f"digest={plan.digest()[:16]}")
        for shard, epoch, mode in bound:
            print(f"  shard {shard}: {mode} at epoch {epoch}")
        baseline = run_sharded(figure, duration_scale=args.scale,
                               seed=args.seed, shards=1, replicas=replicas)
        res = run_sharded(figure, duration_scale=args.scale, seed=args.seed,
                          shards=args.shards, replicas=replicas, faults=bound,
                          transport=getattr(args, "transport", "shm"))
        match = res.digest() == baseline.digest()
        print(f"  restarts={len(res.restarts)} "
              f"reassignments={len(res.reassignments)}")
        print(f"  digest {'match' if match else 'MISMATCH'}: "
              f"{res.digest()[:16]} vs {baseline.digest()[:16]}")
        ok = match
    else:
        report = run_crash_recovery_matrix(
            figure=figure, duration_scale=args.scale, seed=args.seed,
            shards=args.shards, replicas=replicas,
            transport=getattr(args, "transport", "shm"),
        )
        e1, e2 = report["epochs"]
        print(f"crash-recovery matrix ({figure}, shards={args.shards}, "
              f"transport {report['transport']}, "
              f"deaths at epochs {e1}/{e2}): "
              f"{'ok' if report['ok'] else 'FAILED'}")
        for name, cell in report["cells"].items():
            print(f"  {name:9s} {'ok' if cell['ok'] else 'FAILED':6s} "
                  f"digest={'match' if cell['match'] else 'MISMATCH'} "
                  f"restarts={cell['restarts']} "
                  f"reassignments={cell['reassignments']}")
        ok = report["ok"]
    if args.save_plan:
        executed = (plan if args.plan
                    else canonical_shard_plan(figure, args.scale, args.shards))
        with open(args.save_plan, "w") as fh:
            fh.write(executed.to_json() + "\n")
        print(f"wrote {args.save_plan}")
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    from repro.experiments.faultmatrix import (
        CONSERVATIVE_B, fault_matrix_scenario, run_fault_matrix,
    )

    if getattr(args, "shards", 0):
        return _cmd_chaos_sharded(args)
    plan = _chaos_plan(args)
    check = True if args.check_invariants else None
    failures = 0
    if plan is None:
        result = run_fault_matrix(
            duration_scale=args.scale, seed=args.seed, check_invariants=check,
        )
        print(f"fault matrix: {'ok' if result.ok else 'FAILED'}")
        print(f"  {result.notes}")
        for phase in result.phases:
            rates = "  ".join(f"{k}={v:7.1f}" for k, v in sorted(phase.rates.items()))
            print(f"  {phase.name:14s} {rates}")
        floor = result.phase("p2_partition").rates.get("B", 0.0)
        print(f"  B through partition: {floor:.1f} req/s "
              f"(conservative floor {CONSERVATIVE_B:.0f})")
        for ph, principal, got, want, ok in result.deviations():
            if not ok:
                print(f"  DEVIATION {ph}/{principal}: measured {got:.1f}, "
                      f"expected {want:.1f}")
        failures += 0 if result.ok else 1
        series = result.series
    else:
        print(f"plan {plan.name or '(unnamed)'}  "
              f"events={len(plan.events)}  digest={plan.digest()[:16]}")
        sc, injector, (t1, t2, end) = fault_matrix_scenario(
            duration_scale=args.scale, seed=args.seed,
            check_invariants=check, plan=plan,
        )
        for when, kind, target in injector.log:
            print(f"  t={when:7.2f}  {kind:18s} {target}")
        stats = sc.phase_rates([("overall", 0.0, end)], keys=["A", "B"],
                               settle=3.0)[0]
        rates = "  ".join(f"{k}={v:7.1f}" for k, v in sorted(stats.rates.items()))
        print(f"  overall        {rates}")
        membership = sc.membership
        if membership is not None:
            print(f"  evictions={membership.reconfigurations} "
                  f"rejoins={membership.rejoins}")
        series = sc.series(["A", "B"])
    if args.save_plan:
        from repro.experiments.faultmatrix import canonical_plan

        executed = plan if plan is not None else canonical_plan(args.scale)
        with open(args.save_plan, "w") as fh:
            fh.write(executed.to_json() + "\n")
        print(f"wrote {args.save_plan}")
    if args.replay:
        from repro.analysis.replay import chaos_replay

        report = chaos_replay(
            duration_scale=args.scale, seed=args.seed, runs=args.replay,
            with_invariants=bool(args.check_invariants), plan=plan,
        )
        print(report.render())
        failures += 0 if report.ok else 1
    if args.plot and series:
        from repro.experiments.ascii import timeseries_plot

        print(timeseries_plot(series, title="  fault matrix (A/B req/s)"))
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "report": _cmd_report,
        "inspect": _cmd_inspect,
        "baseline": _cmd_baseline,
        "lint": _cmd_lint,
        "check": _cmd_check,
        "chaos": _cmd_chaos,
    }
    try:
        return handlers[args.command](args)
    except Exception as exc:  # surfaced as a message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
