"""repro — reproduction of Zhao & Karamcheti, "Enforcing Resource Sharing
Agreements among Distributed Server Clusters" (IPDPS 2002).

The package is organised bottom-up:

- :mod:`repro.sim` — discrete-event simulation kernel (the testbed substrate).
- :mod:`repro.core` — the ticket/currency agreement calculus (paper §2).
- :mod:`repro.lp` — linear-programming solvers (from-scratch simplex + scipy).
- :mod:`repro.scheduling` — window schedulers and baselines (paper §3.1).
- :mod:`repro.coordination` — combining-tree aggregation protocol (paper §3.2).
- :mod:`repro.cluster` — WebBench-like clients, capacity servers, workloads.
- :mod:`repro.l7` — Layer-7 HTTP redirector (simulated + real asyncio).
- :mod:`repro.l4` — Layer-4 NAT packet redirector (paper §4.2).
- :mod:`repro.experiments` — per-figure experiment harness (paper §5).

Quickstart::

    from repro import AgreementGraph, Agreement, compute_access_levels

    g = AgreementGraph()
    g.add_principal("A", capacity=1000.0)
    g.add_principal("B", capacity=1500.0)
    g.add_principal("C", capacity=0.0)
    g.add_agreement(Agreement("A", "B", 0.4, 0.6))
    g.add_agreement(Agreement("B", "C", 0.6, 1.0))
    levels = compute_access_levels(g)
    levels.mandatory("C")   # -> 1140.0
"""

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.access import AccessLevels, compute_access_levels
from repro.core.valuation import CurrencyValuation, value_currencies

__all__ = [
    "Agreement",
    "AgreementGraph",
    "AccessLevels",
    "compute_access_levels",
    "CurrencyValuation",
    "value_currencies",
    "__version__",
]

__version__ = "1.0.0"
