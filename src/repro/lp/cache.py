"""LP solve cache keyed on model structure plus a quantized demand vector.

The window schedulers rebuild near-identical LPs every 100 ms: the model
*structure* (which variables exist, which coefficients appear) is a pure
function of the agreement graph and the scheduler's configuration, while
only the right-hand side — queue lengths / demand estimates — moves between
windows.  :class:`SolveCache` exploits that split:

- a *structural fingerprint* (hash of the configuration-derived arrays,
  computed once per scheduler) identifies the LP family;
- the per-window demand vector, optionally quantized, completes the key.

With ``quantum == 0`` (the default) a hit requires the demand vector to
repeat **exactly**, so the cached plan is bit-identical to what a fresh
solve would produce — enabling the cache never changes results, it only
skips redundant work.  A positive ``quantum`` buckets each demand component
to the nearest multiple, trading a bounded allocation error for a much
higher hit rate under jittery load (useful for capacity planning sweeps,
not for the reproduction figures).

Entries are kept in LRU order with a bounded size so long simulations with
many distinct demand plateaus cannot grow the cache without bound.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Hashable, Iterable, Optional, Tuple

import numpy as np

__all__ = ["SolveCache", "structural_fingerprint"]


def structural_fingerprint(*parts: Any) -> str:
    """Stable hash of heterogeneous structural data (arrays, scalars, str).

    numpy arrays contribute their raw bytes and shape; everything else its
    ``repr``.  Suitable as the structure half of a :class:`SolveCache` key.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(b"ndarray")
            h.update(str(part.shape).encode())
            h.update(np.ascontiguousarray(part).tobytes())
        else:
            h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


class SolveCache:
    """Bounded LRU cache of LP plans keyed on structure + demand.

    Args:
        maxsize: maximum number of retained plans (LRU eviction).
        quantum: demand quantization step.  ``0`` means exact-match keys
            (bit-identical reuse); ``q > 0`` buckets each demand component
            to the nearest multiple of ``q``.
    """

    __slots__ = ("maxsize", "quantum", "hits", "misses", "evictions", "_store")

    def __init__(self, maxsize: int = 256, quantum: float = 0.0):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        if quantum < 0:
            raise ValueError("quantum must be >= 0")
        self.maxsize = int(maxsize)
        self.quantum = float(quantum)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key(
        self,
        fingerprint: str,
        demand: Iterable[float],
        tag: Hashable = None,
    ) -> Tuple:
        """Build a cache key from the structural fingerprint, the per-window
        demand vector and an optional extra discriminator (e.g. locality
        caps)."""
        q = self.quantum
        if q > 0.0:
            vec: Tuple = tuple(int(round(float(d) / q)) for d in demand)
        else:
            vec = tuple(float(d) for d in demand)
        return (fingerprint, vec, tag)

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached plan for ``key`` (refreshing LRU order)."""
        plan = self._store.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: Hashable, plan: Any) -> None:
        self._store[key] = plan
        self._store.move_to_end(key)
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._store.clear()
