"""Backend-selecting solve facade."""

from __future__ import annotations

from typing import List

from repro.lp.bounded_simplex import solve_bounded_simplex
from repro.lp.model import Model, Solution
from repro.lp.scipy_backend import scipy_available, solve_scipy
from repro.lp.simplex import solve_simplex

__all__ = ["solve", "available_backends"]


def available_backends() -> List[str]:
    backends = ["simplex", "bounded"]
    if scipy_available():
        backends.insert(0, "scipy")
    return backends


def solve(model: Model, backend: str = "auto", warm_start=None, **kwargs) -> Solution:
    """Solve ``model``.

    Backends: ``"scipy"`` (HiGHS), ``"simplex"`` (from-scratch tableau,
    bounds as rows), ``"bounded"`` (from-scratch bounded-variable revised
    simplex).  ``"auto"`` prefers scipy when present and falls back to the
    built-in bounded simplex, so the library works with numpy alone.

    ``warm_start`` (a previous ``Solution.basis``) is honoured by the
    bounded backend and silently ignored by the others, so callers can
    always thread the last basis through.
    """
    if backend == "auto":
        backend = "scipy" if scipy_available() else "bounded"
    if backend == "scipy":
        return solve_scipy(model)
    if backend == "simplex":
        return solve_simplex(model, **kwargs)
    if backend == "bounded":
        return solve_bounded_simplex(model, warm_start=warm_start, **kwargs)
    raise ValueError(f"unknown backend {backend!r}; use {available_backends()}")
