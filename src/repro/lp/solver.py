"""Backend-selecting solve facade."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.lp.bounded_simplex import solve_bounded_simplex
from repro.lp.model import Model, Solution
from repro.lp.scipy_backend import scipy_available, solve_scipy
from repro.lp.simplex import solve_simplex

__all__ = ["solve", "available_backends", "set_feasibility_check"]

# Optional post-solve audit (repro.analysis.invariants wires the
# InvariantChecker's primal-feasibility check here under --check-invariants
# / REPRO_CHECK=1).  None — the default — costs one identity test per solve.
_feasibility_check: Optional[Callable[[Model, Solution], None]] = None


def set_feasibility_check(
    hook: Optional[Callable[[Model, Solution], None]]
) -> None:
    """Install (or with ``None`` remove) a post-solve solution audit."""
    global _feasibility_check
    _feasibility_check = hook


def available_backends() -> List[str]:
    backends = ["simplex", "bounded"]
    if scipy_available():
        backends.insert(0, "scipy")
    return backends


def solve(model: Model, backend: str = "auto", warm_start=None, **kwargs) -> Solution:
    """Solve ``model``.

    Backends: ``"scipy"`` (HiGHS), ``"simplex"`` (from-scratch tableau,
    bounds as rows), ``"bounded"`` (from-scratch bounded-variable revised
    simplex).  ``"auto"`` prefers scipy when present and falls back to the
    built-in bounded simplex, so the library works with numpy alone.

    ``warm_start`` (a previous ``Solution.basis``) is honoured by the
    bounded backend and silently ignored by the others, so callers can
    always thread the last basis through.
    """
    if backend == "auto":
        backend = "scipy" if scipy_available() else "bounded"
    if backend == "scipy":
        solution = solve_scipy(model)
    elif backend == "simplex":
        solution = solve_simplex(model, **kwargs)
    elif backend == "bounded":
        solution = solve_bounded_simplex(model, warm_start=warm_start, **kwargs)
    else:
        raise ValueError(f"unknown backend {backend!r}; use {available_backends()}")
    if _feasibility_check is not None:
        _feasibility_check(model, solution)
    return solution
