"""Two-phase dense tableau simplex with Bland's anti-cycling rule.

A from-scratch LP solver: no dependency beyond numpy, fully deterministic
(Bland's pivoting), intended for the small window-scheduling programs the
paper solves every 100 ms (a handful of principals, so ~n^2 variables).
Cross-validated against scipy's HiGHS backend in the test suite.

Pipeline:

1. *Normalisation* — box bounds are removed by substitution
   (``x = lo + y``, free variables split into ``y+ - y-``, finite upper
   bounds become extra rows), inequalities get slack variables, and rows
   with negative right-hand sides are negated, yielding the standard form
   ``min c'y  s.t.  A y = b, y >= 0, b >= 0``.
2. *Phase 1* — artificial variables form the initial basis; minimising
   their sum finds a basic feasible solution or proves infeasibility.
3. *Phase 2* — the real objective is minimised from that basis.

The hot loop is a single vectorised row operation per pivot
(``T -= col * T[pivot_row]``), O(m * n) per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.lp.model import Model, Solution, Status

__all__ = ["solve_simplex", "simplex_arrays", "SimplexResult"]

_TOL = 1e-9


@dataclass
class SimplexResult:
    status: Status
    x: Optional[np.ndarray]
    objective: float
    iterations: int
    # Set by the bounded backend: (basis column list, per-column statuses),
    # reusable to warm-start a re-solve of a same-shaped program.
    basis: Optional[tuple] = None
    warm_started: bool = False


def solve_simplex(model: Model, max_iter: int = 10_000) -> Solution:
    """Solve a :class:`repro.lp.model.Model` with the tableau simplex."""
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
    res = simplex_arrays(c, A_ub, b_ub, A_eq, b_eq, bounds, max_iter=max_iter)
    return model.solution_from_x(
        res.x, res.status, iterations=res.iterations, backend="simplex"
    )


def simplex_arrays(
    c: np.ndarray,
    A_ub: np.ndarray,
    b_ub: np.ndarray,
    A_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: List[Tuple[float, float]],
    max_iter: int = 10_000,
) -> SimplexResult:
    """Minimise ``c @ x`` subject to ``A_ub x <= b_ub``, ``A_eq x = b_eq``,
    and box ``bounds``; returns a :class:`SimplexResult`."""
    c = np.asarray(c, dtype=float)
    nv = c.size

    # --- 1. remove box bounds by substitution ---------------------------
    # x_j = shift_j + sign_j * y_j (+ optional second column for free vars)
    # plus extra <=' rows for finite upper bounds.
    col_of: List[List[Tuple[int, float]]] = []  # per original var: [(ycol, sign)]
    shift = np.zeros(nv)
    ncols = 0
    extra_rows: List[Tuple[int, float]] = []  # (ycol, cap) meaning y_col <= cap
    for j, (lo, hi) in enumerate(bounds):
        if lo == -math.inf and hi == math.inf:
            col_of.append([(ncols, 1.0), (ncols + 1, -1.0)])
            ncols += 2
        elif lo == -math.inf:
            shift[j] = hi
            col_of.append([(ncols, -1.0)])
            ncols += 1
        else:
            shift[j] = lo
            col_of.append([(ncols, 1.0)])
            if hi != math.inf:
                extra_rows.append((ncols, hi - lo))
            ncols += 1

    def expand_matrix(A: np.ndarray) -> np.ndarray:
        out = np.zeros((A.shape[0], ncols))
        for j in range(nv):
            for ycol, sign in col_of[j]:
                out[:, ycol] += sign * A[:, j]
        return out

    A_ub = np.asarray(A_ub, dtype=float).reshape(-1, nv)
    A_eq = np.asarray(A_eq, dtype=float).reshape(-1, nv)
    b_ub = np.asarray(b_ub, dtype=float) - A_ub @ shift
    b_eq = np.asarray(b_eq, dtype=float) - A_eq @ shift
    Aub_y = expand_matrix(A_ub)
    Aeq_y = expand_matrix(A_eq)
    cy = np.zeros(ncols)
    for j in range(nv):
        for ycol, sign in col_of[j]:
            cy[ycol] += sign * c[j]
    c_shift = float(c @ shift)

    # upper-bound rows for substituted vars
    if extra_rows:
        rows = np.zeros((len(extra_rows), ncols))
        rhs = np.zeros(len(extra_rows))
        for r, (ycol, cap) in enumerate(extra_rows):
            rows[r, ycol] = 1.0
            rhs[r] = cap
        Aub_y = np.vstack([Aub_y, rows]) if Aub_y.size else rows
        b_ub = np.concatenate([b_ub, rhs])

    # --- 2. standard form with slacks ------------------------------------
    m_ub, m_eq = Aub_y.shape[0], Aeq_y.shape[0]
    m = m_ub + m_eq
    n_slack = m_ub
    n = ncols + n_slack
    A = np.zeros((m, n))
    b = np.concatenate([b_ub, b_eq])
    if m_ub:
        A[:m_ub, :ncols] = Aub_y
        A[:m_ub, ncols:ncols + n_slack] = np.eye(m_ub)
    if m_eq:
        A[m_ub:, :ncols] = Aeq_y
    neg = b < 0
    A[neg] *= -1.0
    b[neg] *= -1.0

    # --- 3. two-phase tableau --------------------------------------------
    # Tableau layout: m rows of [A | I_artificial | b]; cost rows kept separately.
    n_art = m
    T = np.zeros((m, n + n_art + 1))
    T[:, :n] = A
    T[:, n:n + n_art] = np.eye(m)
    T[:, -1] = b
    basis = list(range(n, n + n_art))

    total_iters = 0

    def pivot(row: int, col: int) -> None:
        T[row] /= T[row, col]
        colvals = T[:, col].copy()
        colvals[row] = 0.0
        T[:, :] -= np.outer(colvals, T[row])
        basis[row] = col

    def run_phase(cost: np.ndarray, allowed: int) -> Tuple[Status, int]:
        """Minimise ``cost @ y`` over columns [0, allowed); returns status."""
        nonlocal total_iters
        iters = 0
        while True:
            if total_iters >= max_iter:
                return Status.ITERATION_LIMIT, iters
            # reduced costs: r = cost - cost_B @ T  (over allowed columns)
            cb = cost[basis]
            r = cost[:allowed] - cb @ T[:, :allowed]
            # Bland: smallest index with negative reduced cost
            candidates = np.nonzero(r < -_TOL)[0]
            if candidates.size == 0:
                return Status.OPTIMAL, iters
            col = int(candidates[0])
            colvals = T[:, col]
            pos = colvals > _TOL
            if not pos.any():
                return Status.UNBOUNDED, iters
            ratios = np.full(m, np.inf)
            ratios[pos] = T[pos, -1] / colvals[pos]
            best = ratios.min()
            # Bland tie-break: smallest basis index among minimal ratios
            tied = np.nonzero(ratios <= best + _TOL)[0]
            row = int(min(tied, key=lambda rr: basis[rr]))
            pivot(row, col)
            total_iters += 1
            iters += 1

    # Phase 1
    cost1 = np.zeros(n + n_art)
    cost1[n:] = 1.0
    status, _ = run_phase(cost1, n + n_art)
    if status is Status.ITERATION_LIMIT:
        return SimplexResult(status, None, math.nan, total_iters)
    phase1_obj = float(cost1[basis] @ T[:, -1])
    if phase1_obj > 1e-7:
        return SimplexResult(Status.INFEASIBLE, None, math.nan, total_iters)

    # Drive remaining artificials out of the basis (degenerate rows).
    drop_rows = []
    for row in range(m):
        if basis[row] >= n:
            nz = np.nonzero(np.abs(T[row, :n]) > _TOL)[0]
            if nz.size:
                pivot(row, int(nz[0]))
            else:
                drop_rows.append(row)  # redundant constraint
    if drop_rows:
        keep = [r for r in range(m) if r not in drop_rows]
        T = T[keep]
        basis = [basis[r] for r in keep]
        m = len(keep)

    # Phase 2
    cost2 = np.zeros(n + n_art)
    cost2[:ncols] = cy
    status, _ = run_phase(cost2, n)  # artificials excluded from entering
    if status is not Status.OPTIMAL:
        return SimplexResult(status, None, math.nan, total_iters)

    y = np.zeros(n)
    for row, bcol in enumerate(basis):
        if bcol < n:
            y[bcol] = T[row, -1]

    # --- 4. map back to original variables --------------------------------
    x = shift.copy()
    for j in range(nv):
        for ycol, sign in col_of[j]:
            x[j] += sign * y[ycol]
    obj = float(cy @ y[:ncols]) + c_shift
    return SimplexResult(Status.OPTIMAL, x, obj, total_iters)
