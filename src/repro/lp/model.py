"""Algebraic LP model builder.

A small modelling layer so scheduler code reads like the paper's math::

    m = Model()
    x = [[m.var(f"x_{i}_{k}") for k in range(n)] for i in range(n)]
    theta = m.var("theta")
    for i in range(n):
        m.add(sum(x[i]) >= theta * n_i[i])
    m.maximize(theta)

Expressions are linear (``LinExpr``); comparisons (``<=``, ``>=``, ``==``)
against expressions or numbers produce :class:`Constraint` objects, which
:meth:`Model.add` registers.  :meth:`Model.to_arrays` lowers the model to
the dense ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` form both backends consume.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "Var", "LinExpr", "Constraint", "Model", "Sense", "Status", "Solution",
    "ModelError",
]

Number = Union[int, float]


class ModelError(ValueError):
    """Raised for malformed models (duplicate names, non-linear use, ...)."""


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "=="


class Status(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


class LinExpr:
    """A linear expression: sum of coef * var plus a constant."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Dict["Var", float]] = None, const: float = 0.0):
        self.coeffs: Dict[Var, float] = dict(coeffs or {})
        self.const = float(const)

    @staticmethod
    def _as_expr(other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return LinExpr({other: 1.0})
        if isinstance(other, (int, float)):
            return LinExpr(const=float(other))
        raise ModelError(f"cannot use {other!r} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.const)

    def __add__(self, other):
        rhs = self._as_expr(other)
        out = self.copy()
        for v, c in rhs.coeffs.items():
            out.coeffs[v] = out.coeffs.get(v, 0.0) + c
        out.const += rhs.const
        return out

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other):
        return self._as_expr(other) + (self * -1.0)

    def __mul__(self, k):
        if not isinstance(k, (int, float)):
            raise ModelError("LP expressions must stay linear")
        return LinExpr({v: c * k for v, c in self.coeffs.items()}, self.const * k)

    __rmul__ = __mul__

    def __truediv__(self, k):
        return self * (1.0 / k)

    def __neg__(self):
        return self * -1.0

    def __le__(self, other):
        return Constraint(self - self._as_expr(other), Sense.LE)

    def __ge__(self, other):
        return Constraint(self - self._as_expr(other), Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - self._as_expr(other), Sense.EQ)

    def __hash__(self):  # constraints use identity; expressions aren't hashable keys
        raise TypeError("LinExpr is unhashable")

    def __repr__(self):
        terms = " + ".join(f"{c:g}*{v.name}" for v, c in self.coeffs.items())
        return f"LinExpr({terms or '0'} + {self.const:g})"


class Var:
    """A decision variable with box bounds."""

    __slots__ = ("name", "lb", "ub", "index")

    def __init__(self, name: str, lb: float = 0.0, ub: float = math.inf, index: int = -1):
        if lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.index = index

    def _expr(self) -> LinExpr:
        return LinExpr({self: 1.0})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return LinExpr._as_expr(other) - self._expr()

    def __mul__(self, k):
        return self._expr() * k

    __rmul__ = __mul__

    def __truediv__(self, k):
        return self._expr() / k

    def __neg__(self):
        return self._expr() * -1.0

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var) and other is self:
            return True
        return self._expr() == other

    def __hash__(self):
        return id(self)

    def __repr__(self):
        return f"Var({self.name!r})"


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — the rhs constant is folded into the expr."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    @property
    def rhs(self) -> float:
        return -self.expr.const


@dataclass
class Solution:
    status: Status
    objective: float = math.nan
    x: Optional[np.ndarray] = None
    _by_var: Dict["Var", float] = field(default_factory=dict)
    iterations: int = 0
    backend: str = ""
    # Warm-start bookkeeping (bounded backend only): the optimal basis of
    # this solve, reusable as ``warm_start`` for a shifted-RHS re-solve, and
    # whether this solve itself started from a supplied basis.
    basis: Optional[Tuple] = None
    warm_started: bool = False

    @property
    def optimal(self) -> bool:
        return self.status is Status.OPTIMAL

    def value(self, var: Union[Var, LinExpr]) -> float:
        if isinstance(var, Var):
            return self._by_var[var]
        if isinstance(var, LinExpr):
            return sum(c * self._by_var[v] for v, c in var.coeffs.items()) + var.const
        raise ModelError(f"cannot evaluate {var!r}")

    def values(self) -> Dict[str, float]:
        return {v.name: x for v, x in self._by_var.items()}


class Model:
    """Container for variables, constraints and the objective."""

    def __init__(self, name: str = "lp"):
        self.name = name
        self.vars: List[Var] = []
        self._names: Dict[str, Var] = {}
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense_max = True

    def var(self, name: str, lb: float = 0.0, ub: float = math.inf) -> Var:
        if name in self._names:
            raise ModelError(f"duplicate variable {name!r}")
        v = Var(name, lb, ub, index=len(self.vars))
        self.vars.append(v)
        self._names[name] = v
        return v

    def __getitem__(self, name: str) -> Var:
        return self._names[name]

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add() expects a Constraint (did you compare a Var to itself?)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def maximize(self, expr: Union[LinExpr, Var]) -> None:
        self.objective = LinExpr._as_expr(expr)
        self.sense_max = True

    def minimize(self, expr: Union[LinExpr, Var]) -> None:
        self.objective = LinExpr._as_expr(expr)
        self.sense_max = False

    # -- lowering ----------------------------------------------------------

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray, List[Tuple[float, float]]]:
        """Dense ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` for *minimisation*.

        The objective is negated when the model maximises, so backends always
        minimise ``c @ x``.
        """
        nv = len(self.vars)
        c = np.zeros(nv)
        for v, coef in self.objective.coeffs.items():
            c[v.index] += coef
        if self.sense_max:
            c = -c

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for con in self.constraints:
            row = np.zeros(nv)
            for v, coef in con.expr.coeffs.items():
                row[v.index] += coef
            rhs = con.rhs
            if con.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif con.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        A_ub = np.array(ub_rows) if ub_rows else np.zeros((0, nv))
        b_ub = np.array(ub_rhs) if ub_rhs else np.zeros(0)
        A_eq = np.array(eq_rows) if eq_rows else np.zeros((0, nv))
        b_eq = np.array(eq_rhs) if eq_rhs else np.zeros(0)
        bounds = [(v.lb, v.ub) for v in self.vars]
        return c, A_ub, b_ub, A_eq, b_eq, bounds

    def solution_from_x(self, x: np.ndarray, status: Status,
                        iterations: int = 0, backend: str = "") -> Solution:
        """Package a raw solution vector, recomputing the model objective."""
        if status is not Status.OPTIMAL or x is None:
            return Solution(status=status, iterations=iterations, backend=backend)
        by_var = {v: float(x[v.index]) for v in self.vars}
        obj = sum(c * by_var[v] for v, c in self.objective.coeffs.items())
        obj += self.objective.const
        return Solution(
            status=status, objective=float(obj), x=np.asarray(x, dtype=float),
            _by_var=by_var, iterations=iterations, backend=backend,
        )
