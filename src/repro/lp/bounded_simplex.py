"""Bounded-variable primal simplex.

The window-scheduling LPs are dominated by *box-bounded* variables (every
``x_ik`` carries ``0 <= x <= MI+OI``).  The baseline tableau simplex
(:mod:`repro.lp.simplex`) turns each finite upper bound into an extra
constraint row, roughly doubling the tableau.  This module implements the
classic bounded-variable revised simplex, which keeps bounds implicit:

- nonbasic variables rest at their lower *or* upper bound;
- an entering variable may *flip* bound without a basis change when its own
  opposite bound is the tightest ratio;
- the ratio test limits basic variables against both of their bounds.

Phase 1 uses artificial variables (minimise their sum) from a basis of
artificials with structurals at their nearest-zero finite bound.  Pivoting
uses Bland's rule throughout, so the method terminates.

Warm starts: the result carries the optimal basis (column list plus
per-column statuses).  Passing it back as ``warm_start`` on a program of
the same shape — the window schedulers' case, where only the demand-driven
RHS moves between solves — skips phase 1 entirely when the old basis is
still primal feasible, so consecutive windows re-pivot from the previous
optimum instead of from scratch.  An infeasible or shape-mismatched basis
silently falls back to the cold two-phase path, so warm starting is always
safe to attempt.

Cross-validated against scipy's HiGHS and the row-based simplex on random
boxed LPs in ``tests/lp/test_bounded_simplex.py``; selectable as
``backend="bounded"`` everywhere an LP backend is accepted.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.lp.model import Model, Solution, Status
from repro.lp.simplex import SimplexResult

__all__ = ["solve_bounded_simplex", "bounded_simplex_arrays"]

_TOL = 1e-9
_INF = math.inf

# Nonbasic status codes
_AT_LO = 0
_AT_UP = 1
_FREE_ZERO = 2   # free variable resting at 0
_BASIC = 3


def solve_bounded_simplex(
    model: Model, max_iter: int = 20_000, warm_start: Optional[Tuple] = None
) -> Solution:
    """Solve a :class:`repro.lp.model.Model` with the bounded simplex.

    ``warm_start`` is a basis from a previous solve's ``Solution.basis``;
    it is used when still feasible for this program and ignored otherwise.
    """
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
    res = bounded_simplex_arrays(
        c, A_ub, b_ub, A_eq, b_eq, bounds, max_iter=max_iter,
        warm_start=warm_start,
    )
    sol = model.solution_from_x(
        res.x, res.status, iterations=res.iterations, backend="bounded"
    )
    sol.basis = res.basis
    sol.warm_started = res.warm_started
    return sol


def bounded_simplex_arrays(
    c: np.ndarray,
    A_ub: np.ndarray,
    b_ub: np.ndarray,
    A_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: List[Tuple[float, float]],
    max_iter: int = 20_000,
    warm_start: Optional[Tuple] = None,
) -> SimplexResult:
    """Minimise ``c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x = b_eq`` and box
    ``bounds``, keeping the bounds implicit in the simplex."""
    c = np.asarray(c, dtype=float)
    nv = c.size
    A_ub = np.asarray(A_ub, dtype=float).reshape(-1, nv)
    A_eq = np.asarray(A_eq, dtype=float).reshape(-1, nv)
    m_ub, m_eq = A_ub.shape[0], A_eq.shape[0]
    m = m_ub + m_eq

    # Structurals + slacks (slack_i in [0, inf) for each <= row).
    n = nv + m_ub
    A = np.zeros((m, n))
    if m_ub:
        A[:m_ub, :nv] = A_ub
        A[:m_ub, nv:] = np.eye(m_ub)
    if m_eq:
        A[m_ub:, :nv] = A_eq
    b = np.concatenate([np.asarray(b_ub, float), np.asarray(b_eq, float)])

    lo = np.full(n, 0.0)
    up = np.full(n, _INF)
    for j, (l, h) in enumerate(bounds):
        lo[j], up[j] = float(l), float(h)
    # slacks: [0, inf) already

    cost = np.zeros(n)
    cost[:nv] = c

    total_iters = 0
    state: Optional[_State] = None
    warm_used = False
    if warm_start is not None:
        state = _warm_state(A, b, lo, up, warm_start, n, m)
        warm_used = state is not None

    if state is None:
        # Initial nonbasic values: nearest-to-zero finite bound (0 for free).
        status = np.empty(n, dtype=int)
        x = np.zeros(n)
        for j in range(n):
            if lo[j] == -_INF and up[j] == _INF:
                status[j] = _FREE_ZERO
                x[j] = 0.0
            elif lo[j] == -_INF:
                status[j] = _AT_UP
                x[j] = up[j]
            else:
                status[j] = _AT_LO
                x[j] = lo[j]

        # Phase 1: artificials absorb the residual b - A x_N.
        resid = b - A @ x
        n_art = m
        A1 = np.hstack([A, np.diag(np.where(resid >= 0, 1.0, -1.0))])
        lo1 = np.concatenate([lo, np.zeros(n_art)])
        up1 = np.concatenate([up, np.full(n_art, _INF)])
        x1 = np.concatenate([x, np.abs(resid)])
        status1 = np.concatenate([status, np.full(n_art, _BASIC, dtype=int)])
        basis = list(range(n, n + n_art))

        cost1 = np.zeros(n + n_art)
        cost1[n:] = 1.0

        state = _State(A1, b, lo1, up1, x1, status1, basis)
        iters1, st = _optimize(state, cost1, allowed=n + n_art, max_iter=max_iter)
        total_iters = iters1
        if st is Status.ITERATION_LIMIT:
            return SimplexResult(st, None, math.nan, total_iters)
        if cost1 @ state.x > 1e-7:
            return SimplexResult(Status.INFEASIBLE, None, math.nan, total_iters)

        # Drive remaining artificials out of the basis where possible.
        for row in range(m):
            if state.basis[row] >= n:
                Binv_row = np.linalg.solve(state.B().T, _unit(m, row))
                coeffs = Binv_row @ state.A[:, :n]
                candidates = np.nonzero(np.abs(coeffs) > 1e-7)[0]
                nonbasic = [j for j in candidates if state.status[j] != _BASIC]
                if nonbasic:
                    j = int(nonbasic[0])
                    state.pivot(row, j)
                # else: redundant row; the artificial stays basic at value 0.

    cost2 = np.zeros(state.A.shape[1])
    cost2[:n] = cost
    iters2, st = _optimize(state, cost2, allowed=n, max_iter=max_iter - total_iters)
    total_iters += iters2
    if st is not Status.OPTIMAL:
        return SimplexResult(
            st, None, math.nan, total_iters, warm_started=warm_used
        )

    xr = state.x[:nv].copy()
    obj = float(c @ xr)
    if all(j < n for j in state.basis):
        basis_out: Optional[Tuple] = (
            list(state.basis), state.status[:n].copy()
        )
    else:
        basis_out = None   # a redundant-row artificial stayed basic
    return SimplexResult(
        Status.OPTIMAL, xr, obj, total_iters,
        basis=basis_out, warm_started=warm_used,
    )


def _warm_state(
    A: np.ndarray,
    b: np.ndarray,
    lo: np.ndarray,
    up: np.ndarray,
    warm: Tuple,
    n: int,
    m: int,
) -> Optional["_State"]:
    """Reconstruct simplex state from a previous basis, or None if the
    basis does not fit this program (shape mismatch, singular B, or primal
    infeasible under the new bounds/RHS)."""
    try:
        basis_in, status_in = warm
    except (TypeError, ValueError):
        return None
    basis = [int(j) for j in basis_in]
    status = np.asarray(status_in, dtype=int).copy()
    if len(basis) != m or status.shape != (n,):
        return None
    if any(j < 0 or j >= n for j in basis):
        return None
    if sorted(j for j in range(n) if status[j] == _BASIC) != sorted(basis):
        return None
    x = np.zeros(n)
    for j in range(n):
        sj = status[j]
        if sj == _BASIC:
            continue
        if sj == _AT_LO:
            if lo[j] == -_INF:
                return None
            x[j] = lo[j]
        elif sj == _AT_UP:
            if up[j] == _INF:
                return None
            x[j] = up[j]
        elif sj == _FREE_ZERO:
            x[j] = 0.0
        else:
            return None
    state = _State(A, b, lo, up, x, status, basis)
    try:
        state._recompute_basics()
    except np.linalg.LinAlgError:
        return None
    xb = state.x[basis]
    if np.any(xb < lo[basis] - 1e-7) or np.any(xb > up[basis] + 1e-7):
        return None   # old optimum no longer primal feasible: cold start
    return state


def _unit(m: int, i: int) -> np.ndarray:
    e = np.zeros(m)
    e[i] = 1.0
    return e


class _State:
    """Mutable simplex state: basis, variable values and statuses."""

    def __init__(self, A, b, lo, up, x, status, basis):
        self.A = A
        self.b = b
        self.lo = lo
        self.up = up
        self.x = x
        self.status = status
        self.basis = basis
        self.m = A.shape[0]

    def B(self) -> np.ndarray:
        return self.A[:, self.basis]

    def pivot(self, row: int, entering: int) -> None:
        """Swap basis[row] out for ``entering`` (values already updated by
        the caller, or both at a consistent point for phase transitions)."""
        leaving = self.basis[row]
        # The leaving variable rests at whichever bound it hit.
        if self.up[leaving] < _INF and abs(self.x[leaving] - self.up[leaving]) < abs(
            self.x[leaving] - self.lo[leaving]
        ):
            self.status[leaving] = _AT_UP
            self.x[leaving] = self.up[leaving]
        elif self.lo[leaving] > -_INF:
            self.status[leaving] = _AT_LO
            self.x[leaving] = self.lo[leaving]
        else:
            self.status[leaving] = _FREE_ZERO
            self.x[leaving] = 0.0
        self.status[entering] = _BASIC
        self.basis[row] = entering
        self._recompute_basics()

    def _recompute_basics(self) -> None:
        nonbasic_contrib = self.b - self.A @ np.where(
            self.status == _BASIC, 0.0, self.x
        )
        xb = np.linalg.solve(self.B(), nonbasic_contrib)
        for i, j in enumerate(self.basis):
            self.x[j] = xb[i]


def _optimize(state: _State, cost: np.ndarray, allowed: int, max_iter: int):
    """Bounded-variable primal simplex iterations (Bland's rule)."""
    m = state.m
    iters = 0
    while True:
        if iters >= max_iter:
            return iters, Status.ITERATION_LIMIT
        B = state.B()
        try:
            y = np.linalg.solve(B.T, cost[state.basis])
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            return iters, Status.INFEASIBLE
        d = cost[:allowed] - y @ state.A[:, :allowed]

        entering = -1
        direction = 0.0
        for j in range(allowed):
            sj = state.status[j]
            if sj == _BASIC:
                continue
            if (sj in (_AT_LO, _FREE_ZERO)) and d[j] < -_TOL:
                entering, direction = j, +1.0
                break  # Bland: first eligible index
            if (sj in (_AT_UP, _FREE_ZERO)) and d[j] > _TOL:
                entering, direction = j, -1.0
                break
        if entering < 0:
            return iters, Status.OPTIMAL

        # Direction of basic variables as entering moves by +direction.
        w = np.linalg.solve(B, state.A[:, entering]) * direction

        # Ratio test.  Candidates: each basic variable hitting one of its
        # bounds, and the entering variable flipping to its opposite bound.
        span = state.up[entering] - state.lo[entering]
        t_max = span if np.isfinite(span) else _INF
        leave_row = -1                           # -1 = bound flip
        for i in range(m):
            j = state.basis[i]
            if w[i] > _TOL and state.lo[j] > -_INF:
                t = max((state.x[j] - state.lo[j]) / w[i], 0.0)
            elif w[i] < -_TOL and state.up[j] < _INF:
                t = max((state.up[j] - state.x[j]) / (-w[i]), 0.0)
            else:
                continue
            if t < t_max - _TOL:
                t_max, leave_row = t, i
            elif t <= t_max + _TOL and (
                leave_row == -1 or state.basis[i] < state.basis[leave_row]
            ):
                # Tie: prefer a basis change (Bland: smallest leaving index).
                t_max, leave_row = min(t_max, t), i

        if not np.isfinite(t_max):
            return iters, Status.UNBOUNDED

        # Apply the step.
        state.x[entering] += direction * t_max
        for i in range(m):
            state.x[state.basis[i]] -= w[i] * t_max

        if leave_row < 0:
            # Bound flip: entering moved across its box; stays nonbasic.
            state.status[entering] = _AT_UP if direction > 0 else _AT_LO
        else:
            leaving = state.basis[leave_row]
            # Leaving rests at the bound it reached.
            if w[leave_row] > 0:
                state.status[leaving] = _AT_LO if state.lo[leaving] > -_INF else _FREE_ZERO
                state.x[leaving] = state.lo[leaving] if state.lo[leaving] > -_INF else 0.0
            else:
                state.status[leaving] = _AT_UP
                state.x[leaving] = state.up[leaving]
            state.status[entering] = _BASIC
            state.basis[leave_row] = entering
        iters += 1
