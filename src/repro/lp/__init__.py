"""Linear programming: the optimisation substrate for the window schedulers.

The paper formulates both admission-control policies (community max-min
response time, provider income) as small linear programs solved every time
window (§3.1.2).  Two interchangeable backends are provided:

- :mod:`repro.lp.simplex` — a from-scratch two-phase dense tableau simplex
  with Bland's anti-cycling rule (no external dependency, deterministic);
- :mod:`repro.lp.scipy_backend` — :func:`scipy.optimize.linprog` (HiGHS),
  used to cross-validate the simplex in tests.

Models are built with :class:`repro.lp.model.Model`; :func:`repro.lp.solve`
is the backend-selecting facade.
"""

from repro.lp.cache import SolveCache, structural_fingerprint
from repro.lp.lpwrite import read_lp, write_lp
from repro.lp.model import Constraint, LinExpr, Model, Sense, Status, Solution, Var
from repro.lp.solver import available_backends, solve

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "Sense",
    "Status",
    "Solution",
    "SolveCache",
    "structural_fingerprint",
    "solve",
    "available_backends",
    "write_lp",
    "read_lp",
]
