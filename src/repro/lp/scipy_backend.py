"""scipy HiGHS backend: lowers a :class:`repro.lp.model.Model` to
:func:`scipy.optimize.linprog`.  Used both as a fast production backend and
to cross-validate the from-scratch simplex."""

from __future__ import annotations

import numpy as np

from repro.lp.model import Model, Solution, Status

__all__ = ["solve_scipy", "scipy_available"]

try:  # pragma: no cover - import guard
    from scipy.optimize import linprog as _linprog
except ImportError:  # pragma: no cover
    _linprog = None


def scipy_available() -> bool:
    return _linprog is not None


_STATUS_MAP = {
    0: Status.OPTIMAL,
    1: Status.ITERATION_LIMIT,
    2: Status.INFEASIBLE,
    3: Status.UNBOUNDED,
}


def solve_scipy(model: Model) -> Solution:
    if _linprog is None:  # pragma: no cover
        raise RuntimeError("scipy is not available")
    c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
    res = _linprog(
        c,
        A_ub=A_ub if A_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=A_eq if A_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS_MAP.get(res.status, Status.INFEASIBLE)
    x = np.asarray(res.x) if res.x is not None else None
    iterations = int(getattr(res, "nit", 0) or 0)
    return model.solution_from_x(x, status, iterations=iterations, backend="scipy")
