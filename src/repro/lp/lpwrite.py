"""CPLEX-LP-format export/import for :class:`repro.lp.model.Model`.

Writing a window LP to the standard text format makes scheduler decisions
auditable ("what program did the redirector actually solve at t=42.3?")
and lets external solvers be consulted when debugging.  The reader parses
the same dialect back, so the pair round-trips — property-tested in
``tests/lp/test_lpwrite.py``.

Supported dialect (the subset the schedulers emit):

    Maximize            \\ or Minimize
      obj: 2 x_1 + 3 x_2
    Subject To
      c0: x_1 + x_2 <= 4
      c1: x_1 - x_2 = 1
    Bounds
      0 <= x_1 <= 3
      x_2 free
    End
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from repro.lp.model import LinExpr, Model, ModelError, Sense

__all__ = ["write_lp", "read_lp"]


def _fmt_term(coef: float, name: str, first: bool) -> str:
    sign = "-" if coef < 0 else ("" if first else "+")
    mag = abs(coef)
    coef_s = "" if mag == 1.0 else f"{mag:.12g} "
    sep = "" if first and sign == "" else " "
    return f"{sign}{sep}{coef_s}{name}".strip()


def _fmt_expr(expr: LinExpr) -> str:
    terms = sorted(expr.coeffs.items(), key=lambda kv: kv[0].index)
    parts = []
    for var, coef in terms:
        if coef == 0.0:
            continue
        parts.append(_fmt_term(coef, var.name, first=not parts))
    return " ".join(parts) if parts else "0"


def write_lp(model: Model) -> str:
    """Serialise a model to CPLEX LP format."""
    lines = ["Maximize" if model.sense_max else "Minimize"]
    lines.append(f"  obj: {_fmt_expr(model.objective)}")
    lines.append("Subject To")
    for i, con in enumerate(model.constraints):
        op = {"<=": "<=", ">=": ">=", "==": "="}[con.sense.value]
        name = con.name or f"c{i}"
        lines.append(f"  {name}: {_fmt_expr(con.expr)} {op} {con.rhs:.12g}")
    lines.append("Bounds")
    for v in model.vars:
        if v.lb == -math.inf and v.ub == math.inf:
            lines.append(f"  {v.name} free")
        elif v.ub == math.inf:
            lines.append(f"  {v.name} >= {v.lb:.12g}")
        elif v.lb == -math.inf:
            lines.append(f"  {v.name} <= {v.ub:.12g}")
        else:
            lines.append(f"  {v.lb:.12g} <= {v.name} <= {v.ub:.12g}")
    lines.append("End")
    return "\n".join(lines) + "\n"


_TERM_RE = re.compile(r"([+-]?)\s*(\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)?\s*\*?\s*([A-Za-z_][\w.\[\]]*)")


def _parse_expr(text: str, model: Model, vars_by_name: Dict[str, object]) -> LinExpr:
    expr = LinExpr()
    pos = 0
    for m in _TERM_RE.finditer(text):
        if m.start() < pos:
            continue
        pos = m.end()
        sign = -1.0 if m.group(1) == "-" else 1.0
        coef = float(m.group(2)) if m.group(2) else 1.0
        name = m.group(3)
        var = vars_by_name.get(name)
        if var is None:
            var = model.var(name, lb=0.0)
            vars_by_name[name] = var
        expr.coeffs[var] = expr.coeffs.get(var, 0.0) + sign * coef
    return expr


def read_lp(text: str) -> Model:
    """Parse the dialect produced by :func:`write_lp` back into a Model."""
    model = Model()
    vars_by_name: Dict[str, object] = {}
    section = None
    objective_text: List[str] = []
    constraint_rows: List[Tuple[str, str, float]] = []
    bound_rows: List[str] = []
    sense_max = True

    for raw in text.splitlines():
        line = raw.split("\\")[0].strip()
        if not line:
            continue
        lower = line.lower()
        if lower in ("maximize", "maximise", "max"):
            section, sense_max = "obj", True
            continue
        if lower in ("minimize", "minimise", "min"):
            section, sense_max = "obj", False
            continue
        if lower in ("subject to", "st", "s.t."):
            section = "cons"
            continue
        if lower == "bounds":
            section = "bounds"
            continue
        if lower == "end":
            break
        if section == "obj":
            objective_text.append(line.split(":", 1)[-1])
        elif section == "cons":
            body = line.split(":", 1)[-1]
            m = re.search(r"(<=|>=|=)", body)
            if m is None:
                raise ModelError(f"constraint without relation: {line!r}")
            lhs = body[: m.start()]
            rhs = float(body[m.end():])
            constraint_rows.append((lhs, m.group(1), rhs))
        elif section == "bounds":
            bound_rows.append(line)
        else:
            raise ModelError(f"content outside any section: {line!r}")

    obj = _parse_expr(" ".join(objective_text), model, vars_by_name)
    for lhs, op, rhs in constraint_rows:
        expr = _parse_expr(lhs, model, vars_by_name)
        sense = {"<=": Sense.LE, ">=": Sense.GE, "=": Sense.EQ}[op]
        expr.const = -rhs
        from repro.lp.model import Constraint

        model.add(Constraint(expr, sense))

    for line in bound_rows:
        if line.lower().endswith(" free"):
            name = line[: -len(" free")].strip()
            v = vars_by_name.get(name) or model.var(name)
            vars_by_name[name] = v
            v.lb, v.ub = -math.inf, math.inf
            continue
        two = re.match(
            r"^\s*([+-]?[\d.eE+-]+)\s*<=\s*([\w.\[\]]+)\s*<=\s*([+-]?[\d.eE+-]+)\s*$",
            line,
        )
        if two:
            lo, name, hi = float(two.group(1)), two.group(2), float(two.group(3))
            v = vars_by_name.get(name) or model.var(name)
            vars_by_name[name] = v
            v.lb, v.ub = lo, hi
            continue
        one = re.match(r"^\s*([\w.\[\]]+)\s*(<=|>=)\s*([+-]?[\d.eE+-]+)\s*$", line)
        if one:
            name, op, val = one.group(1), one.group(2), float(one.group(3))
            v = vars_by_name.get(name) or model.var(name)
            vars_by_name[name] = v
            if op == "<=":
                v.lb, v.ub = -math.inf, val
            else:
                v.lb, v.ub = val, math.inf
            continue
        raise ModelError(f"unparseable bound line: {line!r}")

    if sense_max:
        model.maximize(obj)
    else:
        model.minimize(obj)
    return model
