import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.scheduling.provider import ProviderScheduler
from repro.scheduling.window import WindowConfig

W = WindowConfig(0.1)


def _fig10_access():
    g = AgreementGraph()
    g.add_principal("P", capacity=640.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("P", "A", 0.8, 1.0))
    g.add_agreement(Agreement("P", "B", 0.2, 1.0))
    return compute_access_levels(g)


@pytest.fixture
def fig10_sched():
    return ProviderScheduler(_fig10_access(), prices={"A": 2.0, "B": 1.0}, window=W)


class TestFig10Arithmetic:
    def test_phase1_high_payer_preferred(self, fig10_sched):
        r = fig10_sched.schedule({"A": 80.0, "B": 40.0})
        assert r.admitted("A") / W.length == pytest.approx(512.0)
        assert r.admitted("B") / W.length == pytest.approx(128.0)

    def test_phase2_b_alone(self, fig10_sched):
        r = fig10_sched.schedule({"A": 0.0, "B": 40.0})
        assert r.admitted("B") / W.length == pytest.approx(400.0)

    def test_phase3_surplus_to_b(self, fig10_sched):
        r = fig10_sched.schedule({"A": 40.0, "B": 40.0})
        assert r.admitted("A") / W.length == pytest.approx(400.0)
        assert r.admitted("B") / W.length == pytest.approx(240.0)

    def test_income_value(self, fig10_sched):
        # Phase 3: income = 2*(40-51.2<0 clamp? A below MC: 2*(40-51.2)) ...
        # income is measured relative to the mandatory levels, so serving A
        # below its MC yields negative contribution and B above MC positive.
        r = fig10_sched.schedule({"A": 40.0, "B": 40.0})
        a_term = 2.0 * (40.0 - 51.2)
        b_term = 1.0 * (24.0 - 12.8)
        assert r.income == pytest.approx(a_term + b_term)


class TestMechanics:
    def test_customers_exclude_capacity_owners(self, fig10_sched):
        assert set(fig10_sched.customers) == {"A", "B"}

    def test_mandatory_floor_respected(self, fig10_sched):
        # B's mandatory floor binds even when A pays more.
        r = fig10_sched.schedule({"A": 200.0, "B": 200.0})
        assert r.admitted("B") >= 12.8 - 1e-9

    def test_total_capacity_respected(self, fig10_sched):
        r = fig10_sched.schedule({"A": 200.0, "B": 200.0})
        assert r.total() <= 64.0 + 1e-9

    def test_zero_price_customer_still_gets_mandatory(self):
        sched = ProviderScheduler(_fig10_access(), prices={"A": 1.0}, window=W)
        r = sched.schedule({"A": 80.0, "B": 80.0})
        assert r.admitted("B") >= 12.8 - 1e-9

    def test_empty_queues(self, fig10_sched):
        r = fig10_sched.schedule({})
        assert r.total() == pytest.approx(0.0)
        assert r.income == pytest.approx(0.0)

    def test_negative_queue_rejected(self, fig10_sched):
        with pytest.raises(ValueError):
            fig10_sched.schedule({"A": -5.0})

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            ProviderScheduler(_fig10_access(), prices={"A": -1.0}, window=W)

    def test_capacity_override(self):
        # Raising the override above the agreement base is fine.
        sched = ProviderScheduler(
            _fig10_access(), prices={"A": 2.0, "B": 1.0}, capacity=800.0, window=W
        )
        r = sched.schedule({"A": 800.0, "B": 800.0})
        assert r.total() == pytest.approx(80.0)

    def test_capacity_below_commitments_raises(self):
        # The provider cannot honour mandatory floors with half the
        # capacity its agreements assume — surfaced as infeasible.
        sched = ProviderScheduler(
            _fig10_access(), prices={"A": 2.0, "B": 1.0}, capacity=320.0, window=W
        )
        with pytest.raises(RuntimeError, match="provider LP"):
            sched.schedule({"A": 80.0, "B": 80.0})

    def test_upper_bound_respected(self):
        g = AgreementGraph()
        g.add_principal("P", capacity=100.0)
        g.add_principal("A")
        g.add_agreement(Agreement("P", "A", 0.1, 0.5))  # ub 50%
        sched = ProviderScheduler(
            compute_access_levels(g), prices={"A": 1.0}, window=W
        )
        r = sched.schedule({"A": 100.0})
        assert r.admitted("A") <= 5.0 + 1e-9  # 50% of 100/s in a 0.1s window

    def test_simplex_backend_agrees(self):
        q = {"A": 80.0, "B": 40.0}
        r1 = ProviderScheduler(
            _fig10_access(), prices={"A": 2.0, "B": 1.0}, window=W, backend="simplex"
        ).schedule(q)
        r2 = ProviderScheduler(
            _fig10_access(), prices={"A": 2.0, "B": 1.0}, window=W, backend="scipy"
        ).schedule(q)
        assert r1.admitted("A") == pytest.approx(r2.admitted("A"), abs=1e-6)
        assert r1.income == pytest.approx(r2.income, abs=1e-6)
