"""WindowAllocator: the shared per-node allocation engine."""

import pytest

from repro.coordination.aggregation import VectorAggregate
from repro.coordination.protocol import GlobalView
from repro.core.access import compute_access_levels
from repro.scheduling.allocator import WindowAllocator
from repro.scheduling.window import WindowConfig

W = WindowConfig(0.1)


class FakeNode:
    """Duck-typed AggregationNode: just carries a view."""

    def __init__(self, view: GlobalView):
        self.view = view


def _view(total, local_then=None, round_id=0):
    return GlobalView(
        aggregate=VectorAggregate(values=dict(total), contributors=2),
        round_id=round_id,
        received_at=0.0,
        local_contribution=(
            VectorAggregate(values=dict(local_then), contributors=1)
            if local_then is not None
            else None
        ),
    )


class TestStandalone:
    def test_local_is_global(self, fig6_graph):
        alloc = WindowAllocator(compute_access_levels(fig6_graph), W)
        a = alloc.compute({"A": 27.0, "B": 13.5})
        assert not a.used_fallback
        assert a.quotas["B"] == pytest.approx(13.5)
        assert a.quotas["A"] == pytest.approx(18.5)

    def test_weights_point_at_server_owner(self, fig6_graph):
        alloc = WindowAllocator(compute_access_levels(fig6_graph), W)
        a = alloc.compute({"A": 27.0, "B": 13.5})
        assert set(a.weights["A"]) == {"S"}


class TestConservativeFallback:
    def test_no_view_uses_one_over_r(self, fig6_graph):
        alloc = WindowAllocator(
            compute_access_levels(fig6_graph), W, n_redirectors=2
        )
        alloc.attach(FakeNode(GlobalView()))  # attached but no broadcast yet
        a = alloc.compute({"B": 13.5})
        assert a.used_fallback
        # Half of B's mandatory 25.6/window = 12.8... capped by demand 13.5.
        assert a.quotas["B"] == pytest.approx(12.8)
        assert alloc.fallback_windows == 1

    def test_fallback_capped_by_demand(self, fig6_graph):
        alloc = WindowAllocator(
            compute_access_levels(fig6_graph), W, n_redirectors=2
        )
        alloc.attach(FakeNode(GlobalView()))
        a = alloc.compute({"B": 3.0})
        assert a.quotas["B"] == pytest.approx(3.0)


class TestSnapshotConsistency:
    def test_substitutes_own_contribution(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        alloc = WindowAllocator(acc, W, n_redirectors=2)
        # Broadcast said: global B = 20 of which 15 was ours; now we see 5.
        alloc.attach(FakeNode(_view({"B": 20.0}, local_then={"B": 15.0})))
        est, fb = alloc.global_estimate({"B": 5.0})
        assert not fb
        assert est["B"] == pytest.approx(10.0)  # 20 - 15 + 5

    def test_local_surge_visible_immediately(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        alloc = WindowAllocator(acc, W, n_redirectors=2)
        # View knows nothing about A; our local surge must still count.
        alloc.attach(FakeNode(_view({"B": 13.5}, local_then={})))
        est, _ = alloc.global_estimate({"A": 27.0})
        assert est["A"] == pytest.approx(27.0)
        assert est["B"] == pytest.approx(13.5)

    def test_contribution_never_negative(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        alloc = WindowAllocator(acc, W)
        alloc.attach(FakeNode(_view({"B": 5.0}, local_then={"B": 9.0})))
        est, _ = alloc.global_estimate({"B": 1.0})
        assert est["B"] == pytest.approx(1.0)  # max(0, 5-9) + 1


class TestLocalScaling:
    def test_quota_proportional_to_local_share(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        alloc = WindowAllocator(acc, W, n_redirectors=2)
        # Global B demand 27/window, our local share is 1/3 of it.
        alloc.attach(FakeNode(_view({"B": 27.0}, local_then={"B": 9.0})))
        a = alloc.compute({"B": 9.0})
        # Global x_B = min(27, 25.6+...) = 27 > capacity share...
        # B entitled to its full mandatory; fraction = x/27 applied to 9.
        served_fraction = a.quotas["B"] / 9.0
        assert 0.9 <= served_fraction <= 1.0


class TestSolveCache:
    def test_stable_demand_reuses_solve(self, fig6_graph):
        alloc = WindowAllocator(compute_access_levels(fig6_graph), W)
        alloc.compute({"A": 27.0, "B": 13.5})
        for _ in range(5):
            alloc.compute({"A": 27.2, "B": 13.4})   # within 5%
        assert alloc.lp_solves == 1
        assert alloc.cache_hits == 5

    def test_demand_shift_invalidates(self, fig6_graph):
        alloc = WindowAllocator(compute_access_levels(fig6_graph), W)
        alloc.compute({"A": 27.0, "B": 13.5})
        alloc.compute({"A": 40.0, "B": 13.5})       # A moved 48%
        assert alloc.lp_solves == 2

    def test_cached_plan_rescaled_by_fresh_local(self, fig6_graph):
        # Same global estimate, different local share: quotas must differ
        # even on a cache hit.
        alloc = WindowAllocator(compute_access_levels(fig6_graph), W)
        a1 = alloc.compute({"A": 27.0, "B": 13.5})
        a2 = alloc.compute({"A": 27.0, "B": 13.5})
        assert alloc.cache_hits == 1
        assert a1.quotas == pytest.approx(a2.quotas)

    def test_zero_tolerance_disables(self, fig6_graph):
        alloc = WindowAllocator(
            compute_access_levels(fig6_graph), W, cache_tolerance=0.0
        )
        alloc.compute({"A": 27.0, "B": 13.5})
        alloc.compute({"A": 27.0, "B": 13.5})
        assert alloc.lp_solves == 2
        assert alloc.cache_hits == 0

    def test_negative_tolerance_rejected(self, fig6_graph):
        with pytest.raises(ValueError):
            WindowAllocator(
                compute_access_levels(fig6_graph), W, cache_tolerance=-1.0
            )

    def test_set_access_invalidates(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        alloc = WindowAllocator(acc, W)
        alloc.compute({"A": 27.0, "B": 13.5})
        alloc.set_access(acc.scaled(1.0))
        alloc.compute({"A": 27.0, "B": 13.5})
        assert alloc.lp_solves == 2


class TestProviderMode:
    def test_provider_quotas(self):
        from repro.core.agreements import Agreement, AgreementGraph

        g = AgreementGraph()
        g.add_principal("P", capacity=640.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("P", "A", 0.8, 1.0))
        g.add_agreement(Agreement("P", "B", 0.2, 1.0))
        alloc = WindowAllocator(
            compute_access_levels(g), W, mode="provider",
            prices={"A": 2.0, "B": 1.0},
        )
        a = alloc.compute({"A": 80.0, "B": 40.0})
        assert a.quotas["A"] == pytest.approx(51.2)
        assert a.quotas["B"] == pytest.approx(12.8)

    def test_unknown_mode_rejected(self, fig6_graph):
        with pytest.raises(ValueError):
            WindowAllocator(compute_access_levels(fig6_graph), W, mode="magic")
