import pytest

from repro.scheduling.credits import CreditScheduler


class TestCreditScheduler:
    def test_accrual_rate(self):
        cs = CreditScheduler({"A": 10.0}, burst=1.0)
        # Start full (1 credit), admit, then need 0.1s to accrue the next.
        assert cs.try_admit("A", now=0.0)
        assert not cs.try_admit("A", now=0.05)
        assert cs.try_admit("A", now=0.11)

    def test_long_run_rate(self):
        cs = CreditScheduler({"A": 50.0}, burst=1.0)
        admitted = 0
        t = 0.0
        for _ in range(10_000):
            t += 0.001
            if cs.try_admit("A", now=t):
                admitted += 1
        assert admitted / t == pytest.approx(50.0, rel=0.05)

    def test_burst_cap(self):
        cs = CreditScheduler({"A": 10.0}, burst=3.0)
        # Long idle: credits capped at burst, not 10*100.
        assert cs.credits("A", now=100.0) == pytest.approx(3.0)

    def test_set_rate_retargets(self):
        cs = CreditScheduler({"A": 10.0}, burst=1.0)
        cs.try_admit("A", now=0.0)
        cs.set_rate("A", 100.0, now=0.0)
        assert cs.try_admit("A", now=0.02)  # 2 credits accrued at new rate

    def test_zero_rate_blocks(self):
        cs = CreditScheduler({"A": 0.0}, burst=1.0)
        assert cs.try_admit("A", now=0.0)   # initial burst
        assert not cs.try_admit("A", now=100.0)

    def test_time_backwards_rejected(self):
        cs = CreditScheduler({"A": 1.0})
        cs.try_admit("A", now=5.0)
        with pytest.raises(ValueError):
            cs.try_admit("A", now=1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CreditScheduler({"A": -1.0})

    def test_cost_weighted(self):
        cs = CreditScheduler({"A": 10.0}, burst=5.0)
        assert cs.try_admit("A", now=0.0, cost=5.0)
        assert not cs.try_admit("A", now=0.0, cost=1.0)

    def test_proportional_sharing(self):
        # Two principals with 3:1 rates admit ~3:1 under saturation.
        cs = CreditScheduler({"A": 30.0, "B": 10.0}, burst=1.0)
        counts = {"A": 0, "B": 0}
        t = 0.0
        for _ in range(20_000):
            t += 0.001
            for p in ("A", "B"):
                if cs.try_admit(p, now=t):
                    counts[p] += 1
        assert counts["A"] / counts["B"] == pytest.approx(3.0, rel=0.05)
