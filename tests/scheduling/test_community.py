"""Community LP scheduler: paper arithmetic plus feasibility properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.window import WindowConfig

W = WindowConfig(0.1)


@pytest.fixture
def fig6_sched(fig6_graph):
    return CommunityScheduler(compute_access_levels(fig6_graph), W)


@pytest.fixture
def fig9_sched(fig9_graph):
    return CommunityScheduler(compute_access_levels(fig9_graph), W)


class TestPaperArithmetic:
    def test_fig6_phase1(self, fig6_sched):
        s = fig6_sched.schedule({"A": 27.0, "B": 13.5})
        assert s.served("A") / W.length == pytest.approx(185.0)
        assert s.served("B") / W.length == pytest.approx(135.0)

    def test_fig6_phase2_only_a(self, fig6_sched):
        s = fig6_sched.schedule({"A": 27.0, "B": 0.0})
        assert s.served("A") / W.length == pytest.approx(270.0)

    def test_fig7_two_to_one(self, fig6_graph):
        g = AgreementGraph()
        g.add_principal("S", capacity=250.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("S", "A", 0.2, 1.0))
        g.add_agreement(Agreement("S", "B", 0.2, 1.0))
        sched = CommunityScheduler(compute_access_levels(g), W)
        s = sched.schedule({"A": 27.0, "B": 13.5})
        assert s.served("A") == pytest.approx(2 * s.served("B"))

    def test_fig9_phase1(self, fig9_sched):
        s = fig9_sched.schedule({"A": 80.0, "B": 40.0})
        assert s.served("A") / W.length == pytest.approx(480.0)
        assert s.served("B") / W.length == pytest.approx(160.0)

    def test_fig9_phase3_efficient_placement(self, fig9_sched):
        # A's 400 req/s fits: own server full + 80 from B's; B keeps 240.
        s = fig9_sched.schedule({"A": 40.0, "B": 40.0})
        assert s.served("A") / W.length == pytest.approx(400.0)
        assert s.served("B") / W.length == pytest.approx(240.0)
        # A uses its own server before spilling onto B's.
        assert s.assignments("A")["A"] == pytest.approx(32.0)

    def test_fig1_coordinated(self):
        g = AgreementGraph()
        g.add_principal("S1", capacity=50.0)
        g.add_principal("S2", capacity=50.0)
        g.add_principal("A")
        g.add_principal("B")
        for server in ("S1", "S2"):
            g.add_agreement(Agreement(server, "A", 0.2, 1.0))
            g.add_agreement(Agreement(server, "B", 0.8, 1.0))
        sched = CommunityScheduler(compute_access_levels(g), WindowConfig(1.0))
        s = sched.schedule({"A": 40.0, "B": 80.0})
        assert s.served("A") == pytest.approx(20.0)
        assert s.served("B") == pytest.approx(80.0)


class TestMechanics:
    def test_empty_queues(self, fig6_sched):
        s = fig6_sched.schedule({"A": 0.0, "B": 0.0})
        assert s.x.sum() == pytest.approx(0.0)

    def test_negative_queue_rejected(self, fig6_sched):
        with pytest.raises(ValueError):
            fig6_sched.schedule({"A": -1.0})

    def test_wrong_vector_shape_rejected(self, fig6_sched):
        with pytest.raises(ValueError):
            fig6_sched.schedule(np.array([1.0, 2.0]))

    def test_queue_mapping_vs_array(self, fig6_sched):
        names = fig6_sched.names
        q = {"S": 0.0, "A": 10.0, "B": 5.0}
        arr = np.array([q[n] for n in names])
        s1 = fig6_sched.schedule(q)
        s2 = fig6_sched.schedule(arr)
        np.testing.assert_allclose(s1.x, s2.x)

    def test_locality_caps(self, fig9_sched):
        # A demands 35 (below its mandatory 48, so its guarantee shrinks to
        # 35 and needs only ~3 on B's server); capping B's server at 22
        # then binds B's own optional service without breaking guarantees.
        uncapped = fig9_sched.schedule({"A": 35.0, "B": 40.0})
        assert uncapped.load("B") > 22.0  # the cap below is binding
        s = fig9_sched.schedule(
            {"A": 35.0, "B": 40.0}, locality_caps={"A": np.inf, "B": 22.0}
        )
        assert s.load("B") <= 22.0 + 1e-6
        assert s.served("A") == pytest.approx(35.0)  # guarantee intact

    def test_locality_cap_conflicting_with_guarantee_raises(self, fig9_sched):
        # A cap below A's mandatory entitlement on B's server makes the
        # window infeasible — surfaced, not silently violated.
        with pytest.raises(RuntimeError, match="community LP"):
            fig9_sched.schedule(
                {"A": 80.0, "B": 40.0}, locality_caps={"A": np.inf, "B": 10.0}
            )

    def test_theta_bounded_by_one(self, fig6_sched):
        s = fig6_sched.schedule({"A": 1.0, "B": 1.0})
        assert s.theta == pytest.approx(1.0)

    def test_fractions(self, fig6_sched):
        q = {"A": 27.0, "B": 13.5}
        s = fig6_sched.schedule(q)
        f = s.fractions(q)
        assert 0.0 <= f.min() and f.max() <= 1.0 + 1e-9
        ia = s.names.index("A")
        assert f[ia].sum() == pytest.approx(s.served("A") / 27.0)

    def test_pairwise_lower_bounds_mode(self, fig9_graph):
        # The paper's literal form forces usage of remote entitlements.
        sched = CommunityScheduler(
            compute_access_levels(fig9_graph), W, pairwise_lower_bounds=True
        )
        s = sched.schedule({"A": 80.0, "B": 40.0})
        # A must place its mandatory 16/window on B's server.
        assert s.assignments("A")["B"] >= 16.0 - 1e-6

    def test_disabled_lower_bounds(self, fig6_graph):
        sched = CommunityScheduler(
            compute_access_levels(fig6_graph), W, enforce_lower_bounds=False
        )
        s = sched.schedule({"A": 27.0, "B": 13.5})
        # Without guarantees, theta equalisation splits proportionally.
        assert s.served("A") / 27.0 == pytest.approx(s.served("B") / 13.5, rel=1e-6)

    def test_simplex_backend_agrees_with_scipy(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        q = {"A": 27.0, "B": 13.5}
        s1 = CommunityScheduler(acc, W, backend="simplex").schedule(q)
        s2 = CommunityScheduler(acc, W, backend="scipy").schedule(q)
        assert s1.theta == pytest.approx(s2.theta, abs=1e-7)
        assert s1.served("A") == pytest.approx(s2.served("A"), abs=1e-6)


@st.composite
def demand_vectors(draw):
    return {
        "A": draw(st.floats(min_value=0.0, max_value=100.0)),
        "B": draw(st.floats(min_value=0.0, max_value=100.0)),
    }


class TestScheduleProperties:
    @given(demand_vectors())
    @settings(max_examples=60, deadline=None)
    def test_schedule_feasible_fig6(self, q):
        g = AgreementGraph()
        g.add_principal("S", capacity=320.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("S", "A", 0.2, 1.0))
        g.add_agreement(Agreement("S", "B", 0.8, 1.0))
        acc = compute_access_levels(g)
        sched = CommunityScheduler(acc, W)
        s = sched.schedule({**q, "S": 0.0})
        w = acc.per_window(W.length)
        # server capacity respected
        assert s.x.sum(axis=0).max() <= w.V.max() + 1e-6
        # queue limits respected
        for name in ("A", "B"):
            assert s.served(name) <= q[name] + 1e-6
        # mandatory guarantee: min(demand, MC) always served
        for name in ("A", "B"):
            i = acc.index(name)
            assert s.served(name) >= min(q[name], w.MC[i]) - 1e-6

    @given(demand_vectors())
    @settings(max_examples=60, deadline=None)
    def test_work_conserving_under_overload(self, q):
        g = AgreementGraph()
        g.add_principal("S", capacity=100.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("S", "A", 0.5, 1.0))
        g.add_agreement(Agreement("S", "B", 0.5, 1.0))
        sched = CommunityScheduler(compute_access_levels(g), W)
        s = sched.schedule({**q, "S": 0.0})
        total_demand = q["A"] + q["B"]
        cap = 100.0 * W.length
        # theta-optimal schedules serve min(demand, capacity) in aggregate
        assert s.x.sum() == pytest.approx(min(total_demand, cap), abs=1e-5)
