import pytest

from repro.scheduling.locality import locality_caps_from_bias, normalize_bias


class TestNormalizeBias:
    def test_normalizes(self):
        assert normalize_bias({"S1": 3, "S2": 1}) == {
            "S1": pytest.approx(0.75),
            "S2": pytest.approx(0.25),
        }

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            normalize_bias({"S1": 0.0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_bias({"S1": -1.0, "S2": 2.0})


class TestLocalityCaps:
    def test_fig1_bias(self):
        caps = locality_caps_from_bias(40.0, {"S1": 3, "S2": 1})
        assert caps["S1"] == pytest.approx(30.0)
        assert caps["S2"] == pytest.approx(10.0)

    def test_slack_loosens(self):
        caps = locality_caps_from_bias(40.0, {"S1": 1, "S2": 1}, slack=1.5)
        assert caps["S1"] == pytest.approx(30.0)

    def test_bad_slack(self):
        with pytest.raises(ValueError):
            locality_caps_from_bias(10.0, {"S1": 1}, slack=0.5)

    def test_negative_load(self):
        with pytest.raises(ValueError):
            locality_caps_from_bias(-1.0, {"S1": 1})
