"""Multi-resource community scheduler."""

import numpy as np
import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.multiresource import compute_multiresource_access
from repro.scheduling.multiresource import MultiResourceCommunityScheduler
from repro.scheduling.window import WindowConfig

RES = ("cpu", "net")
W = WindowConfig(0.1)


def _shared_server(cpu=1000.0, net=1000.0):
    """One server S shared half/half between A and B."""
    g = AgreementGraph()
    g.add_principal("S")
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.5, 1.0))
    g.add_agreement(Agreement("S", "B", 0.5, 1.0))
    return compute_multiresource_access(g, {"S": {"cpu": cpu, "net": net}}, RES)


class TestScheduling:
    def test_symmetric_profiles_split_evenly(self):
        acc = _shared_server()
        sched = MultiResourceCommunityScheduler(
            acc, {"A": {"cpu": 1.0, "net": 1.0}, "B": {"cpu": 1.0, "net": 1.0}},
            window=W,
        )
        plan = sched.schedule({"A": 100.0, "B": 100.0})
        assert plan.served("A") == pytest.approx(50.0)
        assert plan.served("B") == pytest.approx(50.0)

    def test_complementary_profiles_pack_better(self):
        """A is CPU-bound, B is network-bound: together they exceed what
        either bottleneck alone would allow — the vector LP's win."""
        acc = _shared_server(cpu=1000.0, net=1000.0)
        sched = MultiResourceCommunityScheduler(
            acc,
            {"A": {"cpu": 2.0, "net": 0.1}, "B": {"cpu": 0.1, "net": 2.0}},
            window=W,
        )
        plan = sched.schedule({"A": 1000.0, "B": 1000.0})
        total = plan.served("A") + plan.served("B")
        # Each alone is limited to ~50 req/window by its bottleneck type
        # (100 cpu-units / 2 per request); jointly ~95 req/window fit.
        assert total > 85.0
        # per-type server load within capacity
        profiles = {"A": {"cpu": 2.0, "net": 0.1}, "B": {"cpu": 0.1, "net": 2.0}}
        assert plan.load("S", "cpu", profiles) <= 100.0 + 1e-6
        assert plan.load("S", "net", profiles) <= 100.0 + 1e-6

    def test_guarantee_uses_bottleneck(self):
        acc = _shared_server(cpu=1000.0, net=200.0)
        sched = MultiResourceCommunityScheduler(
            acc, {"A": {"cpu": 1.0, "net": 1.0}, "B": {"cpu": 1.0, "net": 1.0}},
            window=W,
        )
        # A's guarantee: min(50% of 100 cpu, 50% of 20 net) = 10 req/window.
        assert sched.guaranteed_requests("A") == pytest.approx(10.0)
        plan = sched.schedule({"A": 100.0, "B": 100.0})
        assert plan.served("A") >= 10.0 - 1e-6

    def test_guarantee_served_under_contention(self):
        acc = _shared_server()
        sched = MultiResourceCommunityScheduler(
            acc,
            # B's huge requests could starve A without the guarantee.
            {"A": {"cpu": 1.0, "net": 1.0}, "B": {"cpu": 10.0, "net": 10.0}},
            window=W,
        )
        plan = sched.schedule({"A": 200.0, "B": 200.0})
        assert plan.served("A") >= min(200.0, sched.guaranteed_requests("A")) - 1e-6

    def test_empty_queues(self):
        acc = _shared_server()
        sched = MultiResourceCommunityScheduler(acc, {}, window=W)
        plan = sched.schedule({})
        assert plan.x.sum() == pytest.approx(0.0)

    def test_negative_queue_rejected(self):
        acc = _shared_server()
        sched = MultiResourceCommunityScheduler(acc, {}, window=W)
        with pytest.raises(ValueError):
            sched.schedule({"A": -1.0})

    def test_default_profile_is_unit(self):
        acc = _shared_server()
        sched = MultiResourceCommunityScheduler(acc, {}, window=W)
        assert sched.profiles["A"] == {"cpu": 1.0, "net": 1.0}

    def test_unknown_resource_in_profile(self):
        acc = _shared_server()
        with pytest.raises(ValueError):
            MultiResourceCommunityScheduler(acc, {"A": {"gpu": 1.0}}, window=W)

    def test_negative_profile_rejected(self):
        acc = _shared_server()
        with pytest.raises(ValueError):
            MultiResourceCommunityScheduler(acc, {"A": {"cpu": -1.0}}, window=W)

    def test_schedule_always_feasible_property(self):
        """Random demands and profiles: the returned schedule never
        violates per-type server capacity, queue limits, or guarantees."""
        from hypothesis import given, settings, strategies as st
        import numpy as np

        acc = _shared_server(cpu=800.0, net=1200.0)

        @given(
            st.floats(min_value=0.0, max_value=500.0),
            st.floats(min_value=0.0, max_value=500.0),
            st.floats(min_value=0.2, max_value=4.0),
            st.floats(min_value=0.2, max_value=4.0),
        )
        @settings(max_examples=40, deadline=None)
        def check(qa, qb, ca, cb):
            profiles = {
                "A": {"cpu": ca, "net": 4.2 - ca},
                "B": {"cpu": cb, "net": 4.2 - cb},
            }
            sched = MultiResourceCommunityScheduler(acc, profiles, window=W)
            plan = sched.schedule({"A": qa, "B": qb})
            for r, cap in (("cpu", 80.0), ("net", 120.0)):
                assert plan.load("S", r, profiles) <= cap + 1e-6
            assert plan.served("A") <= qa + 1e-6
            assert plan.served("B") <= qb + 1e-6
            for p, q in (("A", qa), ("B", qb)):
                guarantee = min(q, sched.guaranteed_requests(p))
                assert plan.served(p) >= guarantee - 1e-6

        check()

    def test_backends_agree(self):
        acc = _shared_server()
        profiles = {"A": {"cpu": 2.0, "net": 0.5}, "B": {"cpu": 0.5, "net": 2.0}}
        q = {"A": 80.0, "B": 120.0}
        s1 = MultiResourceCommunityScheduler(acc, profiles, W, backend="simplex").schedule(q)
        s2 = MultiResourceCommunityScheduler(acc, profiles, W, backend="scipy").schedule(q)
        assert s1.theta == pytest.approx(s2.theta, abs=1e-6)
