import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling.endpoint import EndpointEnforcer, endpoint_allocate


class TestFig1Numbers:
    def test_server1(self):
        alloc = endpoint_allocate({"A": 20, "B": 30}, {"A": 0.2, "B": 0.8}, 50)
        assert alloc == {"A": pytest.approx(20.0), "B": pytest.approx(30.0)}

    def test_server2(self):
        alloc = endpoint_allocate({"A": 20, "B": 50}, {"A": 0.2, "B": 0.8}, 50)
        assert alloc == {"A": pytest.approx(10.0), "B": pytest.approx(40.0)}

    def test_aggregate_violates_sla(self):
        s1 = endpoint_allocate({"A": 20, "B": 30}, {"A": 0.2, "B": 0.8}, 50)
        s2 = endpoint_allocate({"A": 20, "B": 50}, {"A": 0.2, "B": 0.8}, 50)
        total_b = s1["B"] + s2["B"]
        assert total_b == pytest.approx(70.0)  # < the 80 B is entitled to


class TestMechanics:
    def test_underload_serves_all(self):
        alloc = endpoint_allocate({"A": 5, "B": 5}, {"A": 0.5, "B": 0.5}, 100)
        assert alloc == {"A": pytest.approx(5.0), "B": pytest.approx(5.0)}

    def test_guarantee_during_overload(self):
        alloc = endpoint_allocate({"A": 100, "B": 100}, {"A": 0.7, "B": 0.3}, 10)
        assert alloc["A"] == pytest.approx(7.0)
        assert alloc["B"] == pytest.approx(3.0)

    def test_leftover_water_fill(self):
        alloc = endpoint_allocate({"A": 2, "B": 100}, {"A": 0.5, "B": 0.5}, 10)
        assert alloc["A"] == pytest.approx(2.0)
        assert alloc["B"] == pytest.approx(8.0)

    def test_zero_capacity(self):
        alloc = endpoint_allocate({"A": 5}, {"A": 1.0}, 0.0)
        assert alloc["A"] == 0.0

    def test_over_promised_shares_rejected(self):
        with pytest.raises(ValueError):
            endpoint_allocate({"A": 1}, {"A": 0.7, "B": 0.7}, 10)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            endpoint_allocate({"A": -1}, {"A": 0.5}, 10)

    def test_enforcer_wrapper(self):
        e = EndpointEnforcer("S1", 50.0, {"A": 0.2, "B": 0.8})
        assert e.allocate({"A": 20, "B": 30})["A"] == pytest.approx(20.0)


class TestProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["A", "B", "C"]),
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
        ),
        st.floats(min_value=0.0, max_value=120.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_capacity_or_demand(self, demands, capacity):
        shares = {p: 1.0 / 3.0 for p in ("A", "B", "C")}
        alloc = endpoint_allocate(demands, shares, capacity)
        assert sum(alloc.values()) <= capacity + 1e-6
        for p, d in demands.items():
            assert alloc[p] <= d + 1e-9

    @given(
        st.dictionaries(
            st.sampled_from(["A", "B", "C"]),
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
        ),
        st.floats(min_value=1.0, max_value=120.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_work_conserving(self, demands, capacity):
        shares = {p: 1.0 / 3.0 for p in ("A", "B", "C")}
        alloc = endpoint_allocate(demands, shares, capacity)
        total = sum(alloc.values())
        assert total == pytest.approx(min(capacity, sum(demands.values())), abs=1e-5)

    @given(
        st.dictionaries(
            st.sampled_from(["A", "B"]),
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
        ),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_guarantee_floor(self, demands, capacity):
        shares = {"A": 0.6, "B": 0.4}
        alloc = endpoint_allocate(demands, shares, capacity)
        for p in demands:
            floor = min(demands[p], shares[p] * capacity)
            assert alloc[p] >= floor - 1e-6
