import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduling.wrr import SmoothWeightedRoundRobin


class TestSmoothWRR:
    def test_classic_sequence(self):
        wrr = SmoothWeightedRoundRobin({"a": 3, "b": 1})
        assert [wrr.next() for _ in range(4)] == ["a", "a", "b", "a"]

    def test_nginx_example(self):
        # The canonical 5/1/1 smooth sequence spreads the heavy key.
        wrr = SmoothWeightedRoundRobin({"a": 5, "b": 1, "c": 1})
        seq = [wrr.next() for _ in range(7)]
        assert collections.Counter(seq) == {"a": 5, "b": 1, "c": 1}
        # 'a' never runs more than 3 times consecutively in smooth WRR
        runs = max(
            len(list(g)) for k, g in __import__("itertools").groupby(seq) if k == "a"
        )
        assert runs <= 3

    def test_empty_weights(self):
        assert SmoothWeightedRoundRobin().next() is None
        assert SmoothWeightedRoundRobin({"a": 0.0}).next() is None

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SmoothWeightedRoundRobin({"a": -1.0})

    def test_reweighting_keeps_scores(self):
        wrr = SmoothWeightedRoundRobin({"a": 1, "b": 1})
        first = wrr.next()
        wrr.set_weights({"a": 1, "b": 1})
        second = wrr.next()
        assert {first, second} == {"a", "b"}  # no reset-induced repeat

    def test_removed_key_dropped(self):
        wrr = SmoothWeightedRoundRobin({"a": 1, "b": 1})
        wrr.set_weights({"a": 1})
        assert all(wrr.next() == "a" for _ in range(5))

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(min_value=1, max_value=9),
            min_size=1,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_proportions_per_cycle(self, weights):
        wrr = SmoothWeightedRoundRobin(weights)
        total = sum(weights.values())
        seq = [wrr.next() for _ in range(total * 3)]
        counts = collections.Counter(seq)
        for k, w in weights.items():
            assert counts[k] == 3 * w
