import pytest

from repro.scheduling.window import WindowConfig


class TestWindowConfig:
    def test_paper_default(self):
        assert WindowConfig().length == pytest.approx(0.1)

    def test_rate_conversions(self):
        w = WindowConfig(0.1)
        assert w.requests(320.0) == pytest.approx(32.0)
        assert w.rate(32.0) == pytest.approx(320.0)

    def test_roundtrip(self):
        w = WindowConfig(0.25)
        assert w.rate(w.requests(123.0)) == pytest.approx(123.0)

    def test_index(self):
        w = WindowConfig(0.1)
        assert w.index(0.05) == 0
        assert w.index(0.25) == 2

    def test_index_at_float_boundaries(self):
        """Window boundaries that are not binary-representable must land in
        the window they open, not the one they close (0.3 // 0.1 == 2.0)."""
        w = WindowConfig(0.1)
        for i in range(50):
            assert w.index(i * 0.1) == i, f"boundary {i}"
        # Accumulated timestamps (how the simulator actually reaches
        # boundaries) snap as well.
        t, step = 0.0, 0.1
        for i in range(1, 30):
            t += step
            assert w.index(t) == i

    def test_index_boundaries_other_lengths(self):
        for length in (0.05, 0.2, 0.25, 0.3, 1.0 / 3.0):
            w = WindowConfig(length)
            for i in range(25):
                assert w.index(i * length) == i, (length, i)

    def test_index_interior_points_unaffected(self):
        w = WindowConfig(0.1)
        assert w.index(0.349) == 3
        assert w.index(0.351) == 3
        assert w.index(0.0) == 0
        # A point clearly short of the boundary must not be snapped up.
        assert w.index(0.3999) == 3

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            WindowConfig(0.0)
