import pytest

from repro.scheduling.window import WindowConfig


class TestWindowConfig:
    def test_paper_default(self):
        assert WindowConfig().length == pytest.approx(0.1)

    def test_rate_conversions(self):
        w = WindowConfig(0.1)
        assert w.requests(320.0) == pytest.approx(32.0)
        assert w.rate(32.0) == pytest.approx(320.0)

    def test_roundtrip(self):
        w = WindowConfig(0.25)
        assert w.rate(w.requests(123.0)) == pytest.approx(123.0)

    def test_index(self):
        w = WindowConfig(0.1)
        assert w.index(0.05) == 0
        assert w.index(0.25) == 2

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            WindowConfig(0.0)
